//! Serial ↔ parallel equivalence layer.
//!
//! The parallel pipeline (sharded Counting-tree build + chunked β-cluster
//! scan) promises **bit-identical** output to a serial fit for every thread
//! count — not "statistically the same", the exact same `MrCCResult`. These
//! tests pin that contract on random workloads (proptest), on degenerate
//! shard geometries (fewer points than workers, single points, all-noise
//! data), and on every thread count in `{2, 3, 8}` plus an optional
//! CI-supplied count from the `MRCC_TEST_THREADS` environment variable.
//!
//! Floats are compared through [`f64::to_bits`]: equality of representation,
//! not approximate closeness, is the claim under test.

use mrcc_repro::prelude::*;

/// Thread counts every test sweeps; `MRCC_TEST_THREADS` appends one more.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![2usize, 3, 8];
    if let Ok(v) = std::env::var("MRCC_TEST_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 && !counts.contains(&n) {
                counts.push(n);
            }
        }
    }
    counts
}

/// Panics unless `a` and `b` are the same fit output bit-for-bit
/// (timings in `stats` excluded — they are the one legitimately
/// nondeterministic field).
fn assert_bit_identical(a: &MrCCResult, b: &MrCCResult, context: &str) {
    assert_eq!(
        a.clustering.labels(),
        b.clustering.labels(),
        "{context}: point labels differ"
    );
    assert_eq!(
        a.beta_clusters.len(),
        b.beta_clusters.len(),
        "{context}: β-cluster count differs"
    );
    for (k, (x, y)) in a
        .beta_clusters
        .iter()
        .zip(b.beta_clusters.iter())
        .enumerate()
    {
        assert_eq!(x.level, y.level, "{context}: β {k} level differs");
        assert_eq!(x.axes, y.axes, "{context}: β {k} axes differ");
        assert_eq!(
            x.center_coords, y.center_coords,
            "{context}: β {k} center differs"
        );
        assert_eq!(
            x.relevance_threshold.to_bits(),
            y.relevance_threshold.to_bits(),
            "{context}: β {k} relevance threshold differs"
        );
        for j in 0..x.bounds.dims() {
            assert_eq!(
                x.bounds.lower(j).to_bits(),
                y.bounds.lower(j).to_bits(),
                "{context}: β {k} lower bound {j} differs"
            );
            assert_eq!(
                x.bounds.upper(j).to_bits(),
                y.bounds.upper(j).to_bits(),
                "{context}: β {k} upper bound {j} differs"
            );
        }
        assert_eq!(
            x.axis_stats.len(),
            y.axis_stats.len(),
            "{context}: β {k} axis-stat count differs"
        );
        for (j, (s, t)) in x.axis_stats.iter().zip(y.axis_stats.iter()).enumerate() {
            assert_eq!(s.neighborhood, t.neighborhood, "{context}: β {k} stat {j}");
            assert_eq!(s.center, t.center, "{context}: β {k} stat {j}");
            assert_eq!(s.critical, t.critical, "{context}: β {k} stat {j}");
            assert_eq!(
                s.relevance.to_bits(),
                t.relevance.to_bits(),
                "{context}: β {k} stat {j} relevance differs"
            );
        }
    }
    assert_eq!(
        a.clusters.len(),
        b.clusters.len(),
        "{context}: correlation cluster count differs"
    );
    for (k, (x, y)) in a.clusters.iter().zip(b.clusters.iter()).enumerate() {
        assert_eq!(x.axes, y.axes, "{context}: γ {k} axes differ");
        assert_eq!(
            x.beta_indices, y.beta_indices,
            "{context}: γ {k} members differ"
        );
        assert_eq!(x.size, y.size, "{context}: γ {k} size differs");
        for j in 0..x.hull.dims() {
            assert_eq!(
                x.hull.lower(j).to_bits(),
                y.hull.lower(j).to_bits(),
                "{context}: γ {k} hull lower {j} differs"
            );
            assert_eq!(
                x.hull.upper(j).to_bits(),
                y.hull.upper(j).to_bits(),
                "{context}: γ {k} hull upper {j} differs"
            );
        }
    }
}

/// Fits `ds` serially and at every swept thread count, asserting each
/// parallel result is bit-identical to the serial one.
fn check_all_thread_counts(ds: &Dataset, context: &str) {
    let serial = MrCC::new(MrCCConfig::default()).fit(ds).unwrap();
    #[cfg(feature = "strict-invariants")]
    serial.check_invariants();
    for k in thread_counts() {
        let parallel = MrCC::new(MrCCConfig::default().with_threads(k))
            .fit(ds)
            .unwrap();
        assert_bit_identical(&serial, &parallel, &format!("{context} @ {k} threads"));
    }
}

mod random_workloads {
    use super::*;
    use proptest::prelude::*;

    /// Strategy: clustered synthetic workloads over the generator's seed /
    /// size / shape space — the same family the paper's evaluation draws
    /// from, scaled down for test time.
    fn spec_strategy() -> impl Strategy<Value = SyntheticSpec> {
        (2usize..=8, 200usize..=1_500, 0usize..=3, 1u64..=1_000).prop_map(
            |(dims, points, clusters, seed)| {
                SyntheticSpec::new("pe", dims, points, clusters, 0.15, seed)
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// `with_threads(k)` is a pure speed knob on random workloads.
        #[test]
        fn parallel_fit_is_bit_identical(spec in spec_strategy()) {
            let synth = generate(&spec);
            check_all_thread_counts(&synth.dataset, &spec.name);
        }
    }
}

#[test]
fn fewer_points_than_workers() {
    // 3 points, up to 8 workers: most shards are empty, some hold one point.
    let ds = Dataset::from_rows(&[[0.1, 0.2], [0.5, 0.6], [0.9, 0.1]]).unwrap();
    check_all_thread_counts(&ds, "3 points");
}

#[test]
fn single_point_dataset() {
    let ds = Dataset::from_rows(&[[0.42, 0.17, 0.93]]).unwrap();
    check_all_thread_counts(&ds, "1 point");
}

#[test]
fn all_noise_dataset() {
    // Structure-free data: the β-cluster search finds nothing; the parallel
    // scan must agree on that nothing, too.
    let spec = SyntheticSpec::new("pe-noise", 6, 4_000, 0, 0.5, 9);
    let synth = generate(&spec);
    check_all_thread_counts(&synth.dataset, "all noise");
}

#[test]
fn clustered_workload_at_many_thread_counts() {
    // One richer workload swept across a denser thread grid than the
    // proptest (including counts above the chunk count, forcing idle
    // workers in the scan's work queue).
    let synth = generate(&SyntheticSpec::new("pe-dense", 8, 6_000, 4, 0.15, 77));
    let serial = MrCC::new(MrCCConfig::default())
        .fit(&synth.dataset)
        .unwrap();
    for k in [2usize, 3, 4, 5, 7, 8, 16, 64] {
        let parallel = MrCC::new(MrCCConfig::default().with_threads(k))
            .fit(&synth.dataset)
            .unwrap();
        assert_bit_identical(&serial, &parallel, &format!("dense @ {k} threads"));
    }
}
