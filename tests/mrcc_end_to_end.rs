//! Cross-crate integration tests: datagen → MrCC → eval.
//!
//! These exercise the whole stack on paper-shaped (but laptop-sized)
//! workloads and assert the paper's qualitative claims: high Quality on
//! Gaussian subspace clusters, robustness to noise and rotation,
//! determinism, and statistical restraint on structure-free data.

use mrcc_repro::prelude::*;

fn small_spec(name: &str, dims: usize, points: usize, clusters: usize, seed: u64) -> SyntheticSpec {
    SyntheticSpec::new(name, dims, points, clusters, 0.15, seed)
}

#[test]
fn recovers_subspace_clusters_with_high_quality() {
    let synth = generate(&small_spec("it-8d", 8, 8_000, 4, 11));
    let result = MrCC::default().fit(&synth.dataset).unwrap();
    #[cfg(feature = "strict-invariants")]
    result.check_invariants();
    assert!(!result.clustering.is_empty(), "found no clusters");
    let q = quality(&result.clustering, &synth.ground_truth);
    assert!(
        q.quality > 0.80,
        "Quality {:.3} below expectation (precision {:.3}, recall {:.3})",
        q.quality,
        q.avg_precision,
        q.avg_recall
    );
}

#[test]
fn subspace_quality_identifies_relevant_axes() {
    let synth = generate(&small_spec("it-10d", 10, 10_000, 3, 23));
    let result = MrCC::default().fit(&synth.dataset).unwrap();
    let sq = subspace_quality(&result.clustering, &synth.ground_truth);
    assert!(
        sq.quality > 0.60,
        "Subspaces Quality {:.3} below expectation",
        sq.quality
    );
}

#[test]
fn deterministic_end_to_end() {
    let synth = generate(&small_spec("it-det", 8, 4_000, 3, 7));
    let run = || {
        let r = MrCC::default().fit(&synth.dataset).unwrap();
        r.clustering.labels()
    };
    assert_eq!(run(), run());
}

#[test]
fn robust_to_noise_levels() {
    // Quality should stay usable from 5% to 25% noise (Fig. 5d).
    for (i, noise) in [0.05, 0.25].into_iter().enumerate() {
        let mut spec = small_spec("it-noise", 8, 24_000, 3, 31 + i as u64);
        spec.noise_fraction = noise;
        let synth = generate(&spec);
        let result = MrCC::default().fit(&synth.dataset).unwrap();
        let q = quality(&result.clustering, &synth.ground_truth);
        assert!(
            q.quality > 0.70,
            "noise {noise}: Quality {:.3} too low",
            q.quality
        );
    }
}

#[test]
fn only_marginally_affected_by_rotation() {
    // The paper reports ≤ ~5% Quality variation under rotation (Fig. 5p).
    // Individual draws can place two clusters so that their subspace ranges
    // cross (unseparable for any grid method — see EXPERIMENTS.md), so we
    // assert the *average* drop over several seeds stays small.
    let fit = |ds: &Dataset| MrCC::default().fit(ds).unwrap().clustering;
    let mut plain_sum = 0.0;
    let mut rot_sum = 0.0;
    let seeds = [11u64, 31, 61];
    for &seed in &seeds {
        let plain = generate(&small_spec("it-rot", 8, 24_000, 3, seed));
        let rotated = generate(&small_spec("it-rot", 8, 24_000, 3, seed).rotated(4));
        plain_sum += quality(&fit(&plain.dataset), &plain.ground_truth).quality;
        rot_sum += quality(&fit(&rotated.dataset), &rotated.ground_truth).quality;
    }
    let (q_plain, q_rot) = (plain_sum / seeds.len() as f64, rot_sum / seeds.len() as f64);
    assert!(q_plain > 0.85, "baseline Quality {q_plain:.3}");
    assert!(
        q_rot > q_plain - 0.15,
        "rotation collapsed Quality: {q_rot:.3} vs {q_plain:.3}"
    );
}

#[test]
fn structure_free_data_mostly_noise() {
    // Uniform data: MrCC must not hallucinate dominant clusters.
    let spec = SyntheticSpec::new("it-uniform", 6, 5_000, 0, 0.5, 3);
    let synth = generate(&spec);
    let result = MrCC::default().fit(&synth.dataset).unwrap();
    assert!(
        result.noise_ratio() > 0.9,
        "claimed {:.1}% of uniform data as clusters",
        100.0 * (1.0 - result.noise_ratio())
    );
}

#[test]
fn beta_cluster_count_tracks_cluster_count() {
    // The paper observes βk stays close to the number of real clusters.
    let synth = generate(&small_spec("it-bk", 8, 8_000, 4, 53));
    let result = MrCC::default().fit(&synth.dataset).unwrap();
    assert!(
        result.n_beta_clusters() <= 4 * synth.ground_truth.len().max(1),
        "βk = {} explodes vs {} real clusters",
        result.n_beta_clusters(),
        synth.ground_truth.len()
    );
}

#[test]
fn handles_kdd_surrogate_shape() {
    let kdd = mrcc_repro::datagen::kdd_cup_2008_surrogate(
        mrcc_repro::datagen::View::LeftMLO,
        0.5, // 12.5k points: inside the statistical power envelope, still fast
    );
    let result = MrCC::default().fit(&kdd.synthetic.dataset).unwrap();
    let q = quality(&result.clustering, &kdd.synthetic.ground_truth);
    assert!(
        q.quality > 0.5,
        "KDD surrogate Quality {:.3} too low",
        q.quality
    );
}

#[test]
fn fit_normalizing_accepts_raw_data() {
    // Same data scaled out of the unit cube must work via fit_normalizing
    // and fail via fit.
    let synth = generate(&small_spec("it-raw", 6, 3_000, 2, 61));
    let mut raw = Dataset::new(6).unwrap();
    for p in synth.dataset.iter() {
        let scaled: Vec<f64> = p.iter().map(|v| v * 250.0 - 60.0).collect();
        raw.push(&scaled).unwrap();
    }
    assert!(MrCC::default().fit(&raw).is_err());
    let result = MrCC::default().fit_normalizing(&raw).unwrap();
    let q = quality(&result.clustering, &synth.ground_truth);
    assert!(q.quality > 0.75, "Quality {:.3}", q.quality);
}
