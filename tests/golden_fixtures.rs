//! Golden-fixture regression tests for the full MrCC pipeline.
//!
//! Two small committed CSV datasets under `tests/golden/` come with an
//! expected-output JSON capturing the complete clustering: point labels,
//! every β-cluster (level, axes, center, bit-exact bounds) and every
//! correlation cluster (axes, members, size, bit-exact hull). The fit —
//! serial *and* at 4 worker threads — must reproduce the files exactly.
//!
//! Float fields are stored as hexadecimal [`f64::to_bits`] strings, because
//! the claim under test is representation equality, and JSON numbers (f64 in
//! the vendored parser) cannot carry 64 raw bits losslessly.
//!
//! To regenerate after an intentional algorithm change, run
//!
//! ```text
//! MRCC_BLESS_GOLDEN=1 cargo test --test golden_fixtures
//! ```
//!
//! and commit the rewritten files together with the change that justifies
//! them. Blessing rewrites both the CSVs (from fixed generator specs) and
//! the expected JSON (from a fresh serial fit).

use std::path::PathBuf;

use mrcc_repro::prelude::*;
use serde_json::Value;

/// The two committed workloads: a clustered one and a noise-heavy one.
fn fixtures() -> [(&'static str, SyntheticSpec); 2] {
    [
        (
            "blobs",
            SyntheticSpec::new("golden-blobs", 5, 800, 2, 0.15, 5),
        ),
        (
            "noisy",
            SyntheticSpec::new("golden-noisy", 3, 500, 1, 0.30, 21),
        ),
    ]
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn bits_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn json_u64(v: &Value, what: &str) -> u64 {
    v.as_u64().unwrap_or_else(|| panic!("{what}: not a u64"))
}

fn json_bits(v: &Value, what: &str) -> u64 {
    let s = v.as_str().unwrap_or_else(|| panic!("{what}: not a string"));
    u64::from_str_radix(s, 16).unwrap_or_else(|_| panic!("{what}: bad bit string {s:?}"))
}

/// Serializes a fit into the golden schema.
fn result_to_json(r: &MrCCResult) -> Value {
    let labels: Vec<Value> = r
        .clustering
        .labels()
        .into_iter()
        .map(|l| Value::Number(f64::from(l)))
        .collect();
    let betas: Vec<Value> = r
        .beta_clusters
        .iter()
        .map(|b| {
            let d = b.bounds.dims();
            Value::Object(vec![
                ("level".to_string(), Value::Number(b.level as f64)),
                (
                    "axes".to_string(),
                    Value::Array(b.axes.iter().map(|j| Value::Number(j as f64)).collect()),
                ),
                (
                    "center".to_string(),
                    Value::Array(
                        b.center_coords
                            .iter()
                            .map(|&c| Value::Number(c as f64))
                            .collect(),
                    ),
                ),
                (
                    "lower_bits".to_string(),
                    Value::Array(
                        (0..d)
                            .map(|j| Value::String(bits_hex(b.bounds.lower(j))))
                            .collect(),
                    ),
                ),
                (
                    "upper_bits".to_string(),
                    Value::Array(
                        (0..d)
                            .map(|j| Value::String(bits_hex(b.bounds.upper(j))))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let clusters: Vec<Value> = r
        .clusters
        .iter()
        .map(|c| {
            let d = c.hull.dims();
            Value::Object(vec![
                (
                    "axes".to_string(),
                    Value::Array(c.axes.iter().map(|j| Value::Number(j as f64)).collect()),
                ),
                (
                    "beta_indices".to_string(),
                    Value::Array(
                        c.beta_indices
                            .iter()
                            .map(|&i| Value::Number(i as f64))
                            .collect(),
                    ),
                ),
                ("size".to_string(), Value::Number(c.size as f64)),
                (
                    "hull_lower_bits".to_string(),
                    Value::Array(
                        (0..d)
                            .map(|j| Value::String(bits_hex(c.hull.lower(j))))
                            .collect(),
                    ),
                ),
                (
                    "hull_upper_bits".to_string(),
                    Value::Array(
                        (0..d)
                            .map(|j| Value::String(bits_hex(c.hull.upper(j))))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Value::Object(vec![
        ("labels".to_string(), Value::Array(labels)),
        ("beta_clusters".to_string(), Value::Array(betas)),
        ("clusters".to_string(), Value::Array(clusters)),
    ])
}

/// Panics unless `r` matches the golden `expected` value exactly.
fn assert_matches_golden(r: &MrCCResult, expected: &Value, context: &str) {
    let labels = expected["labels"]
        .as_array()
        .unwrap_or_else(|| panic!("{context}: golden labels missing"));
    let got = r.clustering.labels();
    assert_eq!(got.len(), labels.len(), "{context}: label count");
    for (i, (g, e)) in got.iter().zip(labels.iter()).enumerate() {
        let e = e.as_f64().unwrap_or_else(|| panic!("{context}: label {i}"));
        assert_eq!(i64::from(*g), e as i64, "{context}: label of point {i}");
    }

    let betas = expected["beta_clusters"]
        .as_array()
        .unwrap_or_else(|| panic!("{context}: golden β list missing"));
    assert_eq!(r.beta_clusters.len(), betas.len(), "{context}: β count");
    for (k, (b, e)) in r.beta_clusters.iter().zip(betas.iter()).enumerate() {
        let what = format!("{context}: β {k}");
        assert_eq!(b.level as u64, json_u64(&e["level"], &what), "{what} level");
        let axes: Vec<u64> = b.axes.iter().map(|j| j as u64).collect();
        let want_axes: Vec<u64> = e["axes"]
            .as_array()
            .unwrap_or_else(|| panic!("{what} axes"))
            .iter()
            .map(|v| json_u64(v, &what))
            .collect();
        assert_eq!(axes, want_axes, "{what} axes");
        let want_center: Vec<u64> = e["center"]
            .as_array()
            .unwrap_or_else(|| panic!("{what} center"))
            .iter()
            .map(|v| json_u64(v, &what))
            .collect();
        assert_eq!(b.center_coords, want_center, "{what} center");
        for j in 0..b.bounds.dims() {
            assert_eq!(
                b.bounds.lower(j).to_bits(),
                json_bits(&e["lower_bits"][j], &what),
                "{what} lower {j}"
            );
            assert_eq!(
                b.bounds.upper(j).to_bits(),
                json_bits(&e["upper_bits"][j], &what),
                "{what} upper {j}"
            );
        }
    }

    let clusters = expected["clusters"]
        .as_array()
        .unwrap_or_else(|| panic!("{context}: golden cluster list missing"));
    assert_eq!(r.clusters.len(), clusters.len(), "{context}: γ count");
    for (k, (c, e)) in r.clusters.iter().zip(clusters.iter()).enumerate() {
        let what = format!("{context}: γ {k}");
        let axes: Vec<u64> = c.axes.iter().map(|j| j as u64).collect();
        let want_axes: Vec<u64> = e["axes"]
            .as_array()
            .unwrap_or_else(|| panic!("{what} axes"))
            .iter()
            .map(|v| json_u64(v, &what))
            .collect();
        assert_eq!(axes, want_axes, "{what} axes");
        let members: Vec<u64> = c.beta_indices.iter().map(|&i| i as u64).collect();
        let want_members: Vec<u64> = e["beta_indices"]
            .as_array()
            .unwrap_or_else(|| panic!("{what} members"))
            .iter()
            .map(|v| json_u64(v, &what))
            .collect();
        assert_eq!(members, want_members, "{what} members");
        assert_eq!(c.size as u64, json_u64(&e["size"], &what), "{what} size");
        for j in 0..c.hull.dims() {
            assert_eq!(
                c.hull.lower(j).to_bits(),
                json_bits(&e["hull_lower_bits"][j], &what),
                "{what} hull lower {j}"
            );
            assert_eq!(
                c.hull.upper(j).to_bits(),
                json_bits(&e["hull_upper_bits"][j], &what),
                "{what} hull upper {j}"
            );
        }
    }
}

fn bless_requested() -> bool {
    std::env::var("MRCC_BLESS_GOLDEN").is_ok_and(|v| v == "1")
}

#[test]
fn golden_fixtures_reproduce_exactly() {
    let dir = golden_dir();
    for (name, spec) in fixtures() {
        let csv_path = dir.join(format!("{name}.csv"));
        let json_path = dir.join(format!("{name}.expected.json"));

        if bless_requested() {
            let synth = generate(&spec);
            std::fs::create_dir_all(&dir).unwrap();
            mrcc_repro::common::csv::write_dataset_file(&csv_path, &synth.dataset, None).unwrap();
        }

        // Always fit the dataset as read back from the CSV, so the committed
        // file (post float→text→float round-trip) is the single source of
        // truth for both bless and verify runs.
        let ds = mrcc_repro::common::csv::read_dataset_file(&csv_path).unwrap_or_else(|e| {
            panic!(
                "{name}: cannot read {} ({e}); run with MRCC_BLESS_GOLDEN=1 to create fixtures",
                csv_path.display()
            )
        });
        let serial = MrCC::new(MrCCConfig::default()).fit(&ds).unwrap();

        if bless_requested() {
            let json = serde_json::to_string_pretty(&result_to_json(&serial)).unwrap();
            std::fs::write(&json_path, json).unwrap();
        }

        let text = std::fs::read_to_string(&json_path)
            .unwrap_or_else(|e| panic!("{name}: cannot read {} ({e})", json_path.display()));
        let expected: Value = serde_json::from_str(&text).unwrap();

        assert_matches_golden(&serial, &expected, &format!("{name} serial"));
        let parallel = MrCC::new(MrCCConfig::default().with_threads(4))
            .fit(&ds)
            .unwrap();
        assert_matches_golden(&parallel, &expected, &format!("{name} parallel(4)"));
    }
}
