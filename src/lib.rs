#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Facade crate for the MrCC reproduction.
//!
//! Re-exports every workspace crate under one roof so the repo-level
//! examples and integration tests (and downstream users who want a single
//! dependency) can write `use mrcc_repro::prelude::*`.

pub use mrcc as core;
pub use mrcc_baselines as baselines;
pub use mrcc_common as common;
pub use mrcc_counting_tree as counting_tree;
pub use mrcc_datagen as datagen;
pub use mrcc_eval as eval;
pub use mrcc_stats as stats;

/// The items most programs need.
pub mod prelude {
    pub use mrcc::{MrCC, MrCCConfig, MrCCResult};
    pub use mrcc_common::{AxisMask, BoundingBox, Dataset, SubspaceClustering};
    pub use mrcc_datagen::{generate, SyntheticSpec};
    pub use mrcc_eval::{quality, subspace_quality};
}
