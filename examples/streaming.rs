//! Streaming ingestion: the Counting-tree is a single-scan structure, so it
//! can absorb points one at a time (e.g. from a live feed) and be handed to
//! the β-cluster search whenever a snapshot clustering is wanted. This
//! example drip-feeds a dataset in batches and re-clusters after each batch
//! using the public phase APIs directly.
//!
//! ```text
//! cargo run --release --example streaming
//! ```

use mrcc_repro::core::{merge, search, MrCCConfig};
use mrcc_repro::counting_tree::CountingTree;
use mrcc_repro::prelude::*;

fn main() {
    let synth = generate(&SyntheticSpec::new("stream", 8, 40_000, 3, 0.15, 17));
    let ds = &synth.dataset;
    let config = MrCCConfig::default();

    let mut tree = CountingTree::empty(ds.dims(), config.resolutions).expect("empty tree");
    let batch = 8_000;
    let mut seen = 0usize;

    println!("streaming {} points in batches of {batch}:", ds.len());
    while seen < ds.len() {
        let end = (seen + batch).min(ds.len());
        for i in seen..end {
            tree.insert(ds.point(i)).expect("normalized point");
        }
        seen = end;

        // Snapshot clustering over everything ingested so far. The search
        // flips usedCell flags, so reset them for the next snapshot.
        tree.reset_used();
        let betas = search::find_beta_clusters(&mut tree, &config);
        // Labeling needs the points seen so far.
        let mut so_far = Dataset::new(ds.dims()).expect("dims");
        for i in 0..seen {
            so_far.push(ds.point(i)).expect("point");
        }
        let (clusters, clustering, _cache) =
            merge::build_correlation_clusters(&so_far, &betas, config.threads);

        // Score the snapshot against the ground truth restricted to the
        // ingested prefix.
        let truth_labels: Vec<i32> = synth.ground_truth.labels()[..seen].to_vec();
        let masks: Vec<_> = synth
            .ground_truth
            .clusters()
            .iter()
            .map(|c| c.axes)
            .collect();
        let truth = SubspaceClustering::from_labels(&truth_labels, &masks, ds.dims());
        let q = quality(&clustering, &truth);
        println!(
            "  after {seen:>6} points: {} clusters ({} β), Quality {:.3}",
            clusters.len(),
            betas.len(),
            q.quality
        );
    }
}
