//! Quickstart: generate a small multi-dimensional dataset with clusters
//! hidden in subspaces, run MrCC, and inspect what it found.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mrcc_repro::prelude::*;

fn main() {
    // 10,000 points in 10 dimensions; 4 correlation clusters, each confined
    // (Gaussian) on its own subset of axes and uniform on the rest; 15 %
    // uniform noise.
    let spec = SyntheticSpec::new("quickstart", 10, 10_000, 4, 0.15, 42);
    let synth = generate(&spec);
    println!(
        "dataset: {} points x {} axes, {} hidden clusters + {:.0}% noise",
        synth.dataset.len(),
        synth.dataset.dims(),
        synth.ground_truth.len(),
        100.0 * spec.noise_fraction
    );

    // Fit with the paper's defaults (α = 1e−10, H = 4).
    let start = std::time::Instant::now();
    let result = MrCC::new(MrCCConfig::default())
        .fit(&synth.dataset)
        .expect("unit-normalized input");
    println!(
        "\nMrCC found {} correlation clusters ({} β-clusters) in {:.0} ms:",
        result.n_clusters(),
        result.n_beta_clusters(),
        start.elapsed().as_secs_f64() * 1000.0
    );
    for (k, cluster) in result.clusters.iter().enumerate() {
        let axes: Vec<String> = cluster.axes.iter().map(|j| format!("e{}", j + 1)).collect();
        println!(
            "  cluster {k}: {:>5} points, subspace {{{}}} (δ = {})",
            cluster.size,
            axes.join(","),
            cluster.axes.count()
        );
    }
    println!(
        "  noise: {} points ({:.1} %)",
        result.clustering.noise().len(),
        100.0 * result.noise_ratio()
    );

    // Score against the generator's ground truth.
    let q = quality(&result.clustering, &synth.ground_truth);
    let sq = subspace_quality(&result.clustering, &synth.ground_truth);
    println!(
        "\nQuality          = {:.3} (precision {:.3}, recall {:.3})",
        q.quality, q.avg_precision, q.avg_recall
    );
    println!("Subspaces Quality = {:.3}", sq.quality);
}
