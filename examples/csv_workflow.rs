//! End-to-end file workflow: export a dataset to CSV, read it back as a
//! *raw* (unnormalized) feature table, cluster it with automatic
//! normalization, and write the labels next to the features — the way a
//! downstream user would wire MrCC into a data pipeline.
//!
//! ```text
//! cargo run --release --example csv_workflow
//! ```

use mrcc_repro::common::csv;
use mrcc_repro::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join("mrcc-csv-demo");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let raw_path = dir.join("sensor_readings.csv");
    let labeled_path = dir.join("sensor_readings_labeled.csv");

    // Pretend these are raw sensor readings: generate, then scale out of the
    // unit cube (volts, degrees, hPa...).
    let synth = generate(&SyntheticSpec::new("sensors", 6, 8_000, 3, 0.1, 99));
    let mut raw = Dataset::new(6).expect("dims");
    let scales = [5.0, 40.0, 1_000.0, 0.5, 12.0, 300.0];
    let offsets = [0.0, -20.0, 950.0, 0.1, 3.0, -150.0];
    for p in synth.dataset.iter() {
        let row: Vec<f64> = p
            .iter()
            .zip(scales.iter().zip(&offsets))
            .map(|(&v, (&s, &o))| v * s + o)
            .collect();
        raw.push(&row).expect("finite row");
    }
    csv::write_dataset_file(&raw_path, &raw, None).expect("write csv");
    println!("wrote {} rows to {}", raw.len(), raw_path.display());

    // A consumer reads the raw file, clusters with automatic normalization.
    let readings = csv::read_dataset_file(&raw_path).expect("read csv");
    assert_eq!(readings.len(), raw.len());
    let result = MrCC::default()
        .fit_normalizing(&readings)
        .expect("fit raw data");
    println!(
        "found {} clusters; noise ratio {:.1} %",
        result.n_clusters(),
        100.0 * result.noise_ratio()
    );

    // Write features + labels for the next pipeline stage.
    let labels = result.clustering.labels();
    csv::write_dataset_file(&labeled_path, &readings, Some(&labels)).expect("write labels");
    println!("wrote labeled data to {}", labeled_path.display());

    // Round-trip check.
    let (back, back_labels) = csv::read_labeled_dataset_file(&labeled_path).expect("read back");
    assert_eq!(back.len(), readings.len());
    assert_eq!(back_labels, labels);

    // The labels recover the generator's hidden structure.
    let q = quality(&result.clustering, &synth.ground_truth);
    println!("Quality vs hidden ground truth: {:.3}", q.quality);
}
