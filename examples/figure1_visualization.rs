//! Recreates the paper's Figure 1: a 3-dimensional dataset with two
//! correlation clusters living in different 2-d subspaces, clustered with
//! MrCC and rendered as SVG axis-pair projections.
//!
//! ```text
//! cargo run --release --example figure1_visualization
//! # → writes figure1.svg next to your cwd
//! ```

use mrcc_bench::pair_grid_svg;
use mrcc_repro::prelude::*;

fn main() {
    // Figure 1's setup: cluster C1 in the {x, z} subspace, C2 in {x, y}.
    let mut rows: Vec<[f64; 3]> = Vec::new();
    let mut state = 0xF161_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..2500 {
        // C1: tight in x and z, spread over y.
        rows.push([
            0.30 + 0.03 * (next() - 0.5),
            next() * 0.99,
            0.65 + 0.03 * (next() - 0.5),
        ]);
        // C2: tight in x and y, spread over z.
        rows.push([
            0.70 + 0.03 * (next() - 0.5),
            0.31 + 0.03 * (next() - 0.5),
            next() * 0.99,
        ]);
    }
    for _ in 0..800 {
        rows.push([next() * 0.99, next() * 0.99, next() * 0.99]);
    }
    let ds = Dataset::from_rows(&rows).expect("unit data");

    let result = MrCC::default().fit(&ds).expect("fit");
    println!("MrCC found {} correlation clusters:", result.n_clusters());
    for (k, c) in result.clusters.iter().enumerate() {
        let axes: Vec<String> = c
            .axes
            .iter()
            .map(|j| ["x", "y", "z"][j].to_string())
            .collect();
        println!(
            "  cluster {k}: {} points in subspace {{{}}}",
            c.size,
            axes.join(",")
        );
    }

    let svg = pair_grid_svg(&ds, &result.clustering, 360, 3);
    let path = std::path::Path::new("figure1.svg");
    std::fs::write(path, &svg).expect("write svg");
    println!(
        "\nwrote {} ({} bytes) — the x-y and x-z panels reproduce Figures 1a/1b",
        path.display(),
        svg.len()
    );
}
