//! Clustering mammography ROI features — the paper's real-data scenario
//! (Section IV-C/IV-G), on the synthetic KDD Cup 2008 surrogate.
//!
//! Each point is a Region of Interest from an X-ray breast image, described
//! by 25 automatically extracted features. Normal tissue forms a few large
//! correlation clusters (each tissue type correlates a different feature
//! subset); malignant ROIs form one small, tight cluster. The task: find the
//! clusters without supervision, then check how well they align with the
//! malignancy ground truth.
//!
//! ```text
//! cargo run --release --example breast_cancer_screening
//! ```

use mrcc_repro::datagen::{kdd_cup_2008_surrogate, View};
use mrcc_repro::prelude::*;

fn main() {
    // One view-dataset (left breast, MLO projection) at full scale (≈25k ROIs).
    let kdd = kdd_cup_2008_surrogate(View::LeftMLO, 1.0);
    let ds = &kdd.synthetic.dataset;
    let positives = kdd.malignant.iter().filter(|&&m| m).count();
    println!(
        "{}: {} ROIs x {} features, {} malignant ({:.2} %)",
        kdd.synthetic.name,
        ds.len(),
        ds.dims(),
        positives,
        100.0 * positives as f64 / ds.len() as f64
    );

    let start = std::time::Instant::now();
    let result = MrCC::default().fit(ds).expect("normalized features");
    println!(
        "\nMrCC: {} clusters in {:.2} s",
        result.n_clusters(),
        start.elapsed().as_secs_f64()
    );

    // Which found cluster is enriched for malignant ROIs?
    let base_rate = positives as f64 / ds.len() as f64;
    println!("\n  cluster  size   malignant  enrichment  subspace δ");
    for (k, cluster) in result.clustering.clusters().iter().enumerate() {
        let mal = cluster.points.iter().filter(|&&i| kdd.malignant[i]).count();
        let rate = mal as f64 / cluster.len() as f64;
        println!(
            "  {k:>7}  {:>5}  {mal:>9}  {:>9.1}x  {:>9}",
            cluster.len(),
            rate / base_rate,
            cluster.dimensionality()
        );
    }

    // Clustering accuracy against the generator's cluster-level truth —
    // the measurement of the paper's Figure 5t.
    let q = quality(&result.clustering, &kdd.synthetic.ground_truth);
    println!(
        "\nQuality vs ground truth = {:.3} (precision {:.3}, recall {:.3})",
        q.quality, q.avg_precision, q.avg_recall
    );

    // Screening view: treat the most enriched cluster as the "suspicious"
    // bucket and report its recall of malignant ROIs.
    if let Some((k, cluster)) =
        result
            .clustering
            .clusters()
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                let ra = a.points.iter().filter(|&&i| kdd.malignant[i]).count() as f64
                    / a.len().max(1) as f64;
                let rb = b.points.iter().filter(|&&i| kdd.malignant[i]).count() as f64
                    / b.len().max(1) as f64;
                ra.partial_cmp(&rb).expect("finite rates")
            })
    {
        let caught = cluster.points.iter().filter(|&&i| kdd.malignant[i]).count();
        println!(
            "\nmost-enriched cluster {k} flags {caught}/{positives} malignant ROIs \
             while containing only {:.1} % of all ROIs",
            100.0 * cluster.len() as f64 / ds.len() as f64
        );
    }
}
