//! Head-to-head comparison of MrCC against the five baselines of the paper
//! on one synthetic workload — a miniature of Figure 5.
//!
//! ```text
//! cargo run --release --example method_comparison
//! ```

use std::time::Duration;

use mrcc_repro::datagen::{generate, SyntheticSpec};
use mrcc_repro::eval::TrackingAllocator;

use mrcc_bench_shim::*;

/// The comparison logic lives in the bench crate; re-declare the tiny shim
/// here so the example builds from the facade crate alone.
mod mrcc_bench_shim {
    pub use mrcc_repro::baselines::SubspaceClusterer;
    use mrcc_repro::prelude::*;

    /// Builds the six methods with the paper's tuning.
    pub fn methods(k: usize, noise: f64) -> Vec<(&'static str, Box<dyn SubspaceClusterer>)> {
        use mrcc_repro::baselines as b;
        struct M(MrCC);
        impl SubspaceClusterer for M {
            fn name(&self) -> &'static str {
                "MrCC"
            }
            fn fit(&self, ds: &Dataset) -> mrcc_repro::common::Result<SubspaceClustering> {
                Ok(self.0.fit(ds)?.clustering)
            }
        }
        vec![
            ("P3C", Box::new(b::P3c::default())),
            ("LAC", Box::new(b::Lac::new(b::LacConfig::new(k)))),
            ("EPCH", Box::new(b::Epch::new(b::EpchConfig::new(k)))),
            ("CFPC", Box::new(b::Doc::new(b::DocConfig::new(k)))),
            ("HARP", Box::new(b::Harp::new(b::HarpConfig::new(k, noise)))),
            ("MrCC", Box::new(M(MrCC::default()))),
        ]
    }
}

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

fn main() {
    let spec = SyntheticSpec::new("comparison", 12, 30_000, 5, 0.15, 7);
    let synth = generate(&spec);
    println!(
        "dataset: {} points x {} axes, {} clusters + 15% noise\n",
        synth.dataset.len(),
        synth.dataset.dims(),
        synth.ground_truth.len()
    );
    println!(
        "{:<6} {:>8} {:>10} {:>10} {:>12} {:>8}",
        "method", "quality", "subspaceQ", "time", "peak mem", "clusters"
    );

    for (name, method) in methods(synth.ground_truth.len(), spec.noise_fraction) {
        let ds = synth.dataset.clone();
        let outcome = mrcc_repro::eval::run_with_timeout(Duration::from_secs(300), move || {
            mrcc_repro::eval::measure_peak(move || method.fit(&ds))
        });
        let Some(((fit, mem), elapsed)) = outcome.finished() else {
            println!("{name:<6} {:>8}", "TIMEOUT");
            continue;
        };
        let Ok(clustering) = fit else {
            println!("{name:<6} {:>8}", "ERROR");
            continue;
        };
        let q = mrcc_repro::eval::quality(&clustering, &synth.ground_truth).quality;
        let sq = if name == "LAC" {
            "-".to_string() // LAC only ranks axes (paper, Section IV)
        } else {
            format!(
                "{:.3}",
                mrcc_repro::eval::subspace_quality(&clustering, &synth.ground_truth).quality
            )
        };
        println!(
            "{name:<6} {q:>8.3} {sq:>10} {:>9.2}s {:>10.0}KB {:>8}",
            elapsed.as_secs_f64(),
            mem.peak_kb(),
            clustering.len()
        );
    }
}
