//! Soft clustering: points in genuinely overlapping correlation clusters
//! receive membership *weights* instead of a forced hard label — the
//! extension introduced by the journal version of this work (Halite_s).
//!
//! ```text
//! cargo run --release --example soft_clustering
//! ```

use mrcc_repro::prelude::*;

fn main() {
    // Two clusters in *disjoint* subspaces whose regions intersect:
    // cluster A is a rod confined on axes {0, 1} and spread along axis 2;
    // cluster B is a slab confined only on axis 2. The rod passes through
    // the slab, so the points where they cross belong to both regions.
    let mut rows: Vec<[f64; 3]> = Vec::new();
    let mut state = 0xCAFEu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..3000 {
        // Cluster A: axes {0, 1}, uniform along axis 2.
        rows.push([
            0.32 + 0.03 * (next() - 0.5),
            0.32 + 0.03 * (next() - 0.5),
            next() * 0.99,
        ]);
        // Cluster B: axis {2} only, uniform over axes 0 and 1.
        rows.push([next() * 0.99, next() * 0.99, 0.70 + 0.03 * (next() - 0.5)]);
    }
    for _ in 0..900 {
        rows.push([next() * 0.99, next() * 0.99, next() * 0.99]);
    }
    let ds = Dataset::from_rows(&rows).expect("unit data");

    let result = MrCC::default().fit(&ds).expect("fit");
    println!(
        "hard clustering: {} clusters, {} noise points",
        result.n_clusters(),
        result.clustering.noise().len()
    );

    let soft = result.soft_memberships(&ds);
    println!(
        "soft clustering: {} of {} points belong to more than one cluster",
        soft.n_shared_points(),
        soft.n_points()
    );

    // Show a few genuinely shared points.
    let mut shown = 0;
    for i in 0..soft.n_points() {
        let m = soft.memberships(i);
        if m.len() > 1 && shown < 5 {
            let parts: Vec<String> = m
                .iter()
                .map(|&(k, w)| format!("cluster {k}: {:.0}%", w * 100.0))
                .collect();
            let p = ds.point(i);
            println!(
                "  point ({:.2}, {:.2}, {:.2}) → {}",
                p[0],
                p[1],
                p[2],
                parts.join(", ")
            );
            shown += 1;
        }
    }

    // Hardened soft labels agree with the hard labeling wherever the hard
    // labeling made the same choice.
    let hard = result.clustering.labels();
    let soft_hard = soft.harden();
    let agree = hard.iter().zip(&soft_hard).filter(|(a, b)| a == b).count();
    println!(
        "hardened soft labels agree with Algorithm 3 on {:.1}% of points",
        100.0 * agree as f64 / hard.len() as f64
    );
}
