//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the exact API subset its property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]` support)
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`]
//! * [`Strategy`](strategy::Strategy) with `prop_map` / `prop_flat_map`
//! * range strategies over the numeric primitives, tuple strategies,
//!   [`collection::vec`], and [`any`]
//!
//! Semantics deliberately differ from upstream in two ways: case generation
//! is **deterministic** (case `i` of every test always sees the same values,
//! so failures reproduce without seed files), and there is **no shrinking**
//! (a failing case panics with the regular `assert!` message). Both are
//! acceptable for CI-style invariant checking, which is all this repository
//! uses property tests for.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration (`cases` is the only knob this repo uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic case-level RNG handed to strategies.
pub mod test_runner {
    use super::{SeedableRng, StdRng};

    /// RNG for one generated case. Case `i` always produces the same stream.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// RNG for the `case`-th generated input of a property.
        #[must_use]
        pub fn for_case(case: u32) -> Self {
            // Golden-ratio stride decorrelates consecutive case seeds.
            TestRng(StdRng::seed_from_u64(
                0xA076_1D64_78BD_642Fu64.wrapping_mul(u64::from(case) + 1),
            ))
        }

        /// The underlying generator.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.0
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let inner = (self.f)(self.base.generate(rng));
            inner.generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8, f64, f32);

    /// Strategy that always yields a clone of one value (`proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// Types with a canonical "any value" strategy (`proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        use rand::Rng;
        rng.rng().gen::<bool>()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                use rand::Rng;
                rng.rng().gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        use rand::Rng;
        rng.rng().gen::<u64>()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> strategy::Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over all values of `T` (`proptest::prelude::any`).
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: core::marker::PhantomData,
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Inclusive element-count range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng().gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines deterministic property tests; see the crate docs for the
/// differences from upstream `proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($argpat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategies = ($($strat,)+);
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(case);
                let ($($argpat,)+) =
                    $crate::strategy::Strategy::generate(&strategies, &mut rng);
                // Immediately-invoked closure so prop_assume! can `return`
                // to skip just this case.
                #[allow(clippy::redundant_closure_call)]
                (move || $body)();
            }
        }
    )*};
}

/// `assert!` under a proptest-compatible name (no shrinking, so a plain
/// panic is the failure report).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let strat = (0u64..1000, crate::collection::vec(0.0f64..1.0, 2..=5));
        let mut rng_a = crate::test_runner::TestRng::for_case(3);
        let mut rng_b = crate::test_runner::TestRng::for_case(3);
        assert_eq!(strat.generate(&mut rng_a), strat.generate(&mut rng_b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..=9, f in 0.25f64..0.75) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(any::<bool>(), 1..4)) {
            prop_assert!(!v.is_empty() && v.len() <= 3);
        }

        #[test]
        fn flat_map_threads_values(
            (d, v) in (1usize..=4).prop_flat_map(|d| {
                (Just(d), crate::collection::vec(0.0f64..1.0, d..=d))
            }),
        ) {
            prop_assert_eq!(v.len(), d);
        }

        #[test]
        fn assume_skips(mut n in 0u64..10) {
            prop_assume!(n != 3);
            n += 1;
            prop_assert!(n != 4);
            prop_assert_ne!(n, 4);
        }
    }
}
