//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships a minimal, dependency-free implementation of exactly
//! the `rand 0.8` API subset its crates use:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`, `fill_bytes`
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed`
//! * [`rngs::StdRng`] and [`rngs::SmallRng`]
//!
//! The generator behind both RNG types is xoshiro256++ seeded through
//! SplitMix64 — deterministic, fast and statistically solid for test and
//! benchmark workloads. Streams do **not** byte-match the real `rand`
//! crate's ChaCha-based `StdRng`; nothing in this repository depends on the
//! upstream stream, only on determinism for a fixed seed.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let take = chunk.len();
            chunk.copy_from_slice(&bytes[..take]);
        }
    }
}

/// Types that can be sampled uniformly from an RNG (`rand`'s `Standard`
/// distribution, flattened into a helper trait).
pub trait SampleStandard {
    /// Draws one uniform sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (`rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty, matching upstream `rand` behaviour.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift rejection-free mapping is fine for test
                // workloads; bias is < 2^-64 per draw.
                let hi = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let hi = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as SampleStandard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as SampleStandard>::sample_standard(rng);
                start + u * (end - start)
            }
        }
    )*};
}

impl_float_range!(f64, f32);

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform sample of type `T` (`rng.gen::<f64>()` is `[0, 1)`).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds (`rand`'s `SeedableRng`).
pub trait SeedableRng: Sized {
    /// The raw seed type (fixed to 32 bytes, like upstream `StdRng`).
    type Seed;

    /// Constructs the RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step — the canonical seed expander for xoshiro generators.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256PlusPlus { s }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256PlusPlus};

    /// Stand-in for `rand::rngs::StdRng` (xoshiro256++ core).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256PlusPlus);

    /// Stand-in for `rand::rngs::SmallRng` (same core as [`StdRng`]).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256PlusPlus);

    macro_rules! impl_rng {
        ($t:ident) => {
            impl RngCore for $t {
                fn next_u64(&mut self) -> u64 {
                    self.0.next_u64()
                }
            }

            impl SeedableRng for $t {
                type Seed = [u8; 32];

                fn from_seed(seed: Self::Seed) -> Self {
                    // Fold the 32-byte seed into a u64 and expand; collision
                    // quality is irrelevant for deterministic test streams.
                    let mut folded = 0u64;
                    for (i, chunk) in seed.chunks(8).enumerate() {
                        let mut bytes = [0u8; 8];
                        bytes[..chunk.len()].copy_from_slice(chunk);
                        folded ^= u64::from_le_bytes(bytes).rotate_left(i as u32 * 8);
                    }
                    Self::seed_from_u64(folded)
                }

                fn seed_from_u64(state: u64) -> Self {
                    $t(Xoshiro256PlusPlus::seed_from_u64(state))
                }
            }
        };
    }

    impl_rng!(StdRng);
    impl_rng!(SmallRng);
}

/// `rand::prelude` equivalent.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
