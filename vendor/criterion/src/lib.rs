//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so this workspace vendors
//! the API subset its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`bench_with_input`](BenchmarkGroup::bench_with_input),
//! [`BenchmarkId`], [`Throughput`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark runs a short warm-up
//! followed by `sample_size` timed samples and reports min / mean / max
//! wall-clock time per iteration (plus throughput when declared). There is
//! no statistical analysis, no plots and no baseline storage — good enough
//! to compare hot paths locally while keeping the crate dependency-free.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declared work-per-iteration, used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier `function_id/parameter` for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id carrying only a parameter rendering.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples after warm-up.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: one untimed call (also primes caches/allocations).
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Declares the per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs `f` as the benchmark `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id, &bencher.samples);
        self
    }

    /// Runs `f` with a borrowed input as the benchmark `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{:<28} no samples", self.name, id.id);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mut line = format!(
            "{}/{:<28} [{} {} {}]",
            self.name,
            id.id,
            format_duration(min),
            format_duration(mean),
            format_duration(max),
        );
        if let Some(tp) = self.throughput {
            let per_sec = |count: u64| count as f64 / mean.as_secs_f64().max(1e-12);
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:.0} elem/s", per_sec(n)));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  {:.0} B/s", per_sec(n)));
                }
            }
        }
        println!("{line}");
    }

    /// Ends the group (kept for API compatibility; reporting is eager).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs `f` as a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark target registered in this group.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each [`criterion_group!`] bundle.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("calls", 10), &5u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                black_box(x * 2)
            });
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
