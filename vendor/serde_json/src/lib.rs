//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! dependency-free JSON layer covering exactly what it uses: the [`Value`]
//! tree, the [`json!`] macro, a strict recursive-descent parser behind
//! [`from_str`], and [`to_string`] / [`to_string_pretty`] writers.
//!
//! Because the real `serde` derive macros are unavailable, serialization is
//! expressed through two plain traits, [`ToJson`] and [`FromJson`], which
//! the workspace implements by hand for the handful of structs it needs to
//! round-trip. Object key order is insertion order (serialize) and file
//! order (parse).

use std::fmt;

/// A parsed or constructed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integral values print without a
    /// fractional part).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// `true` iff this is [`Value::Array`].
    #[must_use]
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// `true` iff this is [`Value::Object`].
    #[must_use]
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// `true` iff this is [`Value::Null`].
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The number as `f64`, when this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, when this is a non-negative integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string slice, when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The bool, when this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up `key` in an object; `None` when absent or not an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        // Rust's shortest round-trip Display is valid JSON (no exponent).
        out.push_str(&format!("{n}"));
    } else {
        // Mirror serde_json: non-finite numbers serialize as null.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, pretty: bool, depth: usize) {
    const INDENT: &str = "  ";
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&INDENT.repeat(depth + 1));
                }
                write_value(out, item, pretty, depth + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&INDENT.repeat(depth + 1));
                }
                write_escaped(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, pretty, depth + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, false, 0);
        f.write_str(&out)
    }
}

macro_rules! impl_from_number {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Number(n as f64)
            }
        }
    )*};
}

impl_from_number!(f32, usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(opt: Option<T>) -> Value {
        opt.map_or(Value::Null, Into::into)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Human-readable description with a byte offset where applicable.
    pub message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// A new error with `message`.
    #[must_use]
    pub fn msg(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

/// Types that can render themselves as a [`Value`] (replaces
/// `serde::Serialize` + derive in this offline build).
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] (replaces
/// `serde::Deserialize` + derive in this offline build).
pub trait FromJson: Sized {
    /// Parses `self` out of `value`.
    ///
    /// # Errors
    /// [`Error`] when `value` has the wrong shape.
    fn from_json(value: &Value) -> Result<Self, Error>;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

macro_rules! impl_json_number {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        }

        impl FromJson for $t {
            fn from_json(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(Error::msg(format!(
                        "expected number, got {other}"
                    ))),
                }
            }
        }
    )*};
}

impl_json_number!(f32, usize, u64, u32, isize, i64, i32);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Number(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::msg(format!("expected number, got {value}")))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::msg(format!("expected bool, got {value}")))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg(format!("expected string, got {value}")))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        self.as_ref().map_or(Value::Null, ToJson::to_json)
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_json).collect(),
            other => Err(Error::msg(format!("expected array, got {other}"))),
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

/// Serializes `value` compactly.
///
/// # Errors
/// Infallible for this implementation; the `Result` mirrors upstream.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_string())
}

/// Serializes `value` with two-space indentation.
///
/// # Errors
/// Infallible for this implementation; the `Result` mirrors upstream.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), true, 0);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, what: &str) -> Error {
        Error::msg(format!("{what} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err(self.error("truncated \\u escape"));
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| self.error("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| self.error("invalid \\u escape"))?;
                        self.pos += 4;
                        // Surrogate pairs are not needed by this repo's data.
                        out.push(
                            char::from_u32(code).ok_or_else(|| self.error("invalid codepoint"))?,
                        );
                    }
                    _ => return Err(self.error("invalid escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the multi-byte UTF-8 sequence.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    if start + len > self.bytes.len() {
                        return Err(self.error("truncated utf-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Value::Object(entries)),
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

/// Parses `input` into any [`FromJson`] type (most often [`Value`]).
///
/// # Errors
/// [`Error`] on malformed JSON, trailing garbage, or a shape mismatch.
pub fn from_str<T: FromJson>(input: &str) -> Result<T, Error> {
    let mut parser = Parser::new(input);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    T::from_json(&value)
}

/// Builds a [`Value`] from an object/array/expression literal.
///
/// Unlike upstream, nested containers must themselves be `json!` calls or
/// expressions convertible to [`Value`]; this is how the workspace already
/// uses the macro.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::Value::from($val)),)*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::Value::from($elem)),*])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v = json!({
            "name": "q\"x",
            "n": 42usize,
            "ratio": 0.125,
            "none": Option::<f64>::None,
            "flags": vec![true, false],
        });
        let text = v.to_string();
        let back: Value = from_str(&text).expect("parses");
        assert_eq!(back, v);
        assert_eq!(back["n"].as_u64(), Some(42));
        assert_eq!(back["ratio"].as_f64(), Some(0.125));
        assert!(back["none"].is_null());
        assert!(back["flags"].is_array());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({ "a": vec![1, 2, 3], "b": json!({ "c": "d" }) });
        let text = to_string_pretty(&v).expect("serializes");
        assert!(text.contains("\n  \"a\""));
        assert_eq!(from_str::<Value>(&text).expect("parses"), v);
    }

    #[test]
    fn numbers_keep_precision() {
        for &x in &[1e-10, 0.1, 3.0, 123456789.0, -2.5e-7] {
            let text = Value::Number(x).to_string();
            let back: Value = from_str(&text).expect("parses");
            assert_eq!(back.as_f64(), Some(x), "{text}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("\"open").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }

    #[test]
    fn unicode_survives() {
        let v = json!({ "s": "héllo ∞ ☃" });
        let back: Value = from_str(&v.to_string()).expect("parses");
        assert_eq!(back["s"].as_str(), Some("héllo ∞ ☃"));
    }
}
