//! Property-based invariants of the statistics substrate.

use mrcc_stats::beta::inc_beta;
use mrcc_stats::binomial::Binomial;
use mrcc_stats::gamma::{ln_choose, ln_factorial};
use mrcc_stats::gamma_inc::{gamma_p, gamma_q};
use mrcc_stats::mdl::mdl_cut;
use mrcc_stats::normal::{norm_cdf, norm_ppf};
use mrcc_stats::poisson::Poisson;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The binomial survival function is nonincreasing in k and bounded.
    #[test]
    fn binomial_sf_monotone(n in 0u64..500, p in 0.0f64..=1.0) {
        let b = Binomial::new(n, p);
        #[cfg(feature = "strict-invariants")]
        b.check_tail_invariants();
        let mut prev = 1.0f64;
        for k in 0..=n + 1 {
            let s = b.sf(k);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s), "sf({k}) = {s}");
            prop_assert!(s <= prev + 1e-9, "sf not monotone at k={k}");
            prev = s;
        }
    }

    /// The critical value is the *smallest* count with tail ≤ α, and the
    /// rejection region it defines has size ≤ α.
    #[test]
    fn critical_value_minimal(n in 1u64..2000, alpha_exp in 1i32..30) {
        let alpha = 10f64.powi(-alpha_exp);
        let b = Binomial::new(n, 1.0 / 6.0);
        let t = b.critical_value(alpha);
        prop_assert!(b.sf(t) <= alpha);
        if t > 0 {
            prop_assert!(b.sf(t - 1) > alpha);
        }
    }

    /// pmf sums to 1 (within fp error) for moderate n.
    #[test]
    fn binomial_pmf_normalized(n in 0u64..200, p in 0.01f64..0.99) {
        let b = Binomial::new(n, p);
        let total: f64 = (0..=n).map(|k| b.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    /// Incomplete beta is within [0,1] and monotone in x.
    #[test]
    fn inc_beta_bounded_monotone(a in 0.1f64..50.0, b in 0.1f64..50.0) {
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            let v = inc_beta(a, b, x);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
            prop_assert!(v + 1e-9 >= prev);
            prev = v;
        }
    }

    /// Regularized incomplete gammas are complementary.
    #[test]
    fn gamma_pq_complement(a in 0.1f64..100.0, x in 0.0f64..200.0) {
        let s = gamma_p(a, x) + gamma_q(a, x);
        prop_assert!((s - 1.0).abs() < 1e-9, "{s}");
    }

    /// Poisson sf at k=0 is 1 and decreases with k.
    #[test]
    fn poisson_sf_monotone(lambda in 0.01f64..500.0) {
        let d = Poisson::new(lambda);
        let mut prev = 1.0;
        for k in 0..60u64 {
            let s = d.sf(k);
            prop_assert!(s <= prev + 1e-9);
            prev = s;
        }
    }

    /// Normal quantile inverts the CDF on the open interval.
    #[test]
    fn normal_roundtrip(p in 1e-12f64..1.0) {
        prop_assume!(p < 1.0 - 1e-12);
        let x = norm_ppf(p);
        prop_assert!((norm_cdf(x) - p).abs() < 1e-8, "p={p} x={x}");
    }

    /// ln C(n,k) is symmetric and log-concave in k.
    #[test]
    fn choose_symmetry(n in 0u64..500) {
        for k in 0..=n {
            let a = ln_choose(n, k);
            let b = ln_choose(n, n - k);
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// ln(n!) satisfies the recurrence ln(n!) = ln((n−1)!) + ln n.
    #[test]
    fn factorial_recurrence(n in 1u64..5000) {
        let lhs = ln_factorial(n);
        let rhs = ln_factorial(n - 1) + (n as f64).ln();
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()));
    }

    /// The MDL cut returns an index inside the slice whose value is the
    /// threshold, and its cost is minimal among all cuts.
    #[test]
    fn mdl_cut_is_optimal(mut values in proptest::collection::vec(0.0f64..100.0, 1..24)) {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let cut = mdl_cut(&values);
        prop_assert!(cut.cut < values.len());
        prop_assert_eq!(cut.threshold, values[cut.cut]);
        // Recompute every cut cost with an independent implementation.
        let cost = |vals: &[f64]| -> f64 {
            if vals.is_empty() {
                return 0.0;
            }
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            (1.0 + mean.abs()).log2()
                + vals.iter().map(|v| (1.0 + (v - mean).abs()).log2()).sum::<f64>()
        };
        for c in 0..values.len() {
            let total = cost(&values[..c]) + cost(&values[c..]);
            prop_assert!(cut.cost <= total + 1e-9, "cut {c} beats reported optimum");
        }
    }
}
