//! Poisson tails via the incomplete gamma function.
//!
//! Used by the P3C baseline: an attribute interval's support is compared
//! against the Poisson tail probability of observing that many points under a
//! uniform spread (Moise et al., "Robust projected clustering", KAIS 2008).

use crate::gamma::ln_factorial;
use crate::gamma_inc::{gamma_p, gamma_q};
use mrcc_common::num::count_to_f64;

/// A Poisson distribution with mean `λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates the distribution.
    ///
    /// # Panics
    /// Panics unless `λ > 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "lambda must be positive, got {lambda}");
        Poisson { lambda }
    }

    /// Mean `λ`.
    pub fn mean(&self) -> f64 {
        self.lambda
    }

    /// Probability mass `P(X = k)`.
    pub fn pmf(&self, k: u64) -> f64 {
        (count_to_f64(k) * self.lambda.ln() - self.lambda - ln_factorial(k)).exp()
    }

    /// Cumulative distribution `P(X ≤ k) = Q(k + 1, λ)`.
    pub fn cdf(&self, k: u64) -> f64 {
        gamma_q(count_to_f64(k + 1), self.lambda)
    }

    /// Survival function `P(X ≥ k) = P(k, λ)` (regularized lower incomplete
    /// gamma) for `k ≥ 1`; 1 for `k = 0`.
    pub fn sf(&self, k: u64) -> f64 {
        if k == 0 {
            return 1.0;
        }
        gamma_p(count_to_f64(k), self.lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_normalizes() {
        let d = Poisson::new(4.2);
        let total: f64 = (0..100).map(|k| d.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn sf_matches_direct_summation() {
        let d = Poisson::new(7.5);
        for k in 0..30u64 {
            let direct: f64 = (k..200).map(|i| d.pmf(i)).sum();
            let fast = d.sf(k);
            assert!((direct - fast).abs() < 1e-9, "k={k}: {direct} vs {fast}");
        }
    }

    #[test]
    fn cdf_sf_complement() {
        let d = Poisson::new(3.0);
        for k in 0..20u64 {
            let s = d.cdf(k) + d.sf(k + 1);
            assert!((s - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn reference_value() {
        // scipy.stats.poisson.sf(14, 5) = P(X ≥ 15) ≈ 0.000226.
        let d = Poisson::new(5.0);
        assert!((d.sf(15) - 0.000_226).abs() < 5e-6, "{}", d.sf(15));
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn rejects_nonpositive_lambda() {
        Poisson::new(0.0);
    }
}
