//! Regularized incomplete gamma functions.
//!
//! `P(a, x)` (lower) and `Q(a, x)` (upper) via the classic series /
//! continued-fraction split (Numerical Recipes §6.2). Poisson tails — used by
//! the P3C baseline's interval-support test — reduce to these.

use crate::gamma::ln_gamma;
use mrcc_common::float::exactly;
use mrcc_common::num::len_to_f64;

const MAX_ITER: usize = 500;
const EPS: f64 = 3.0e-14;
const FPMIN: f64 = 1.0e-300;

/// Series representation of `P(a, x)`, best for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    if exactly(x, 0.0) {
        return 0.0;
    }
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of `Q(a, x)`, best for `x ≥ a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -len_to_f64(i) * (len_to_f64(i) - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
///
/// # Panics
/// Panics when `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_q requires x >= 0, got {x}");
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_values() {
        assert_eq!(gamma_p(3.0, 0.0), 0.0);
        assert!((gamma_q(3.0, 0.0) - 1.0).abs() < 1e-15);
        assert!(gamma_p(1.0, 700.0) > 1.0 - 1e-12);
    }

    #[test]
    fn exponential_special_case() {
        // P(1, x) = 1 − e^{−x}.
        for &x in &[0.1f64, 1.0, 2.5, 10.0] {
            let want = 1.0 - (-x).exp();
            assert!((gamma_p(1.0, x) - want).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn p_plus_q_is_one() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 5.0), (30.0, 30.0), (100.0, 80.0)] {
            let s = gamma_p(a, x) + gamma_q(a, x);
            assert!((s - 1.0).abs() < 1e-12, "a={a} x={x}: {s}");
        }
    }

    #[test]
    fn chi_square_reference() {
        // For chi-square with k dof, CDF(x) = P(k/2, x/2).
        // scipy.stats.chi2.cdf(3.84, 1) ≈ 0.94996.
        let got = gamma_p(0.5, 3.84 / 2.0);
        assert!((got - 0.949_96).abs() < 1e-4, "{got}");
        // chi2.cdf(11.07, 5) ≈ 0.95002
        let got = gamma_p(2.5, 11.07 / 2.0);
        assert!((got - 0.950_02).abs() < 1e-4, "{got}");
    }

    #[test]
    fn monotone_in_x() {
        let mut prev = -1.0;
        for i in 0..200 {
            let x = i as f64 * 0.1;
            let v = gamma_p(4.2, x);
            assert!(v >= prev);
            prev = v;
        }
    }
}
