//! Log-gamma and log-combinatorics.
//!
//! The Lanczos approximation (g = 7, 9 coefficients) gives `ln Γ(x)` with
//! ~15 significant digits over the positive reals — plenty for the binomial
//! and Poisson tails built on top of it.

use mrcc_common::num::{count_to_f64, len_to_f64};

/// Lanczos coefficients for g = 7.
// Full published precision on purpose; the trailing digits matter at the
// 1e-15 accuracy level the tests pin down.
#[allow(clippy::excessive_precision)]
const LANCZOS_G: f64 = 7.0;
#[allow(clippy::excessive_precision)]
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

const LN_SQRT_2PI: f64 = 0.918_938_533_204_672_7;

/// Natural log of the gamma function for `x > 0`.
///
/// # Panics
/// Panics when `x <= 0` (callers in this workspace only evaluate positive
/// arguments; the reflection branch is intentionally unimplemented).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula keeps precision near zero:
        // Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + len_to_f64(i));
    }
    let t = x + LANCZOS_G + 0.5;
    LN_SQRT_2PI + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(n!)`, exact for small `n` via a table, Lanczos above.
pub fn ln_factorial(n: u64) -> f64 {
    // Cache the first values; everything the clustering stack computes with
    // small counts stays exact this way.
    const TABLE_LEN: usize = 128;
    static TABLE: std::sync::OnceLock<[f64; TABLE_LEN]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0.0f64; TABLE_LEN];
        let mut acc = 0.0f64;
        for (i, slot) in t.iter_mut().enumerate() {
            if i > 0 {
                acc += len_to_f64(i).ln();
            }
            *slot = acc;
        }
        t
    });
    match usize::try_from(n) {
        Ok(i) if i < TABLE_LEN => table[i],
        _ => ln_gamma(count_to_f64(n) + 1.0),
    }
}

/// `ln C(n, k)`; zero when `k == 0` or `k == n`.
///
/// # Panics
/// Panics when `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_choose: k={k} > n={n}");
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_matches_factorials() {
        // Γ(n+1) = n!
        let facts: [f64; 8] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in facts.iter().enumerate() {
            let got = ln_gamma(n as f64 + 1.0);
            assert!((got - f.ln()).abs() < 1e-12, "n={n}: {got} vs {}", f.ln());
        }
    }

    #[test]
    fn gamma_half() {
        // Γ(1/2) = sqrt(π)
        let got = ln_gamma(0.5);
        let want = 0.5 * std::f64::consts::PI.ln();
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn gamma_large_argument() {
        // Stirling series check at x = 1000.5:
        // lnΓ(x) ≈ (x−1/2)ln x − x + ln(2π)/2 + 1/(12x).
        let x = 1000.5f64;
        let want =
            (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x);
        let got = ln_gamma(x);
        assert!((got - want).abs() / want < 1e-10, "{got} vs {want}");
    }

    #[test]
    fn factorial_table_and_tail_agree() {
        // The table/Lanczos boundary should be seamless.
        let a = ln_factorial(127);
        let b = ln_gamma(128.0);
        assert!((a - b).abs() < 1e-9);
        let big = ln_factorial(100_000);
        assert!(big.is_finite() && big > 0.0);
    }

    #[test]
    fn choose_small_values_exact() {
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-12);
        assert!((ln_choose(10, 5) - 252f64.ln()).abs() < 1e-12);
        assert_eq!(ln_choose(7, 0), 0.0);
        assert_eq!(ln_choose(7, 7), 0.0);
    }

    #[test]
    #[should_panic(expected = "k=3 > n=2")]
    fn choose_rejects_k_above_n() {
        ln_choose(2, 3);
    }

    #[test]
    fn reflection_region() {
        // Γ(0.25) ≈ 3.6256099082...
        let got = ln_gamma(0.25);
        assert!((got - 3.625_609_908_221_908f64.ln()).abs() < 1e-10);
    }
}
