//! Minimum Description Length cut over sorted relevance values.
//!
//! Section III-B of the paper: once a β-cluster's per-axis relevances
//! `r[j] = 100·cP_j / nP_j` are computed, they are sorted ascending into
//! `o[]` and "submitted to MDL to find the best cut position p, 1 ≤ p ≤ d,
//! that maximizes the homogeneity of values in the partitions
//! `[o_1 … o_{p−1}]` and `[o_p … o_d]`. The value `cThreshold = o[p]` is used
//! to define axis e_j as relevant" iff `r[j] ≥ cThreshold`.
//!
//! The paper does not spell out the coding scheme; following the journal
//! version of this work (Halite, TKDE 2013) we code each non-empty partition
//! by its mean plus the absolute deviations of its members, with
//! `bits(x) = log2(1 + |x|)`. A partition of nearly equal values is then very
//! cheap, so the minimum-cost cut lands exactly at the jump separating the
//! low-relevance plateau from the high-relevance plateau.

/// Result of an MDL cut.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MdlCut {
    /// Index of the first element of the upper (relevant) partition.
    /// `0` means every value is in the upper partition.
    pub cut: usize,
    /// The threshold `o[cut]`: smallest value of the upper partition.
    pub threshold: f64,
    /// Total description cost in bits at the chosen cut.
    pub cost: f64,
}

use mrcc_common::num::len_to_f64;

/// Bits to encode a magnitude: `log2(1 + |x|)`.
#[inline]
fn bits(x: f64) -> f64 {
    (1.0 + x.abs()).log2()
}

/// Description cost of one partition: header (its mean) + member deviations.
fn partition_cost(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / len_to_f64(values.len());
    let dev: f64 = values.iter().map(|&v| bits(v - mean)).sum();
    bits(mean) + dev
}

/// Finds the cut position minimizing the two-partition description cost of an
/// **ascending-sorted** slice, and the resulting threshold.
///
/// The cut index `c` ranges over `0..values.len()`; the partitions are
/// `values[..c]` (may be empty) and `values[c..]` (never empty), matching the
/// paper's `1 ≤ p ≤ d`. Returns the minimizing cut; ties go to the smaller
/// cut (more axes considered relevant). Two costs within
/// [`mrcc_common::float::approx_eq`]'s tolerance — absolute *or relative* —
/// count as tied: an absolute-only epsilon degenerates once costs grow past
/// `~2^40` bits, where `1e-12` drops below one ULP and pure summation-order
/// noise would move the cut.
///
/// ```
/// use mrcc_stats::mdl_cut;
///
/// // Two plateaus: uniform axes near the null share, relevant axes high.
/// let sorted = [16.0, 17.0, 18.0, 91.0, 94.0];
/// let cut = mdl_cut(&sorted);
/// assert_eq!(cut.threshold, 91.0);
/// ```
///
/// # Panics
/// Panics on an empty slice or an unsorted slice (debug only for the latter).
pub fn mdl_cut(values: &[f64]) -> MdlCut {
    assert!(!values.is_empty(), "mdl_cut needs at least one value");
    debug_assert!(
        values.windows(2).all(|w| w[0] <= w[1]),
        "mdl_cut input must be sorted ascending"
    );
    let mut best = MdlCut {
        cut: 0,
        threshold: values[0],
        cost: partition_cost(values),
    };
    for c in 1..values.len() {
        let cost = partition_cost(&values[..c]) + partition_cost(&values[c..]);
        // Strictly-and-meaningfully smaller: near-ties (absolute or
        // relative, so large cost magnitudes behave) keep the earlier cut.
        if cost < best.cost && !mrcc_common::float::approx_eq(cost, best.cost) {
            best = MdlCut {
                cut: c,
                threshold: values[c],
                cost,
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_plateaus_cut_at_the_jump() {
        // Low plateau ≈ 16 (uniform axes), high plateau ≈ 90 (relevant axes).
        let o = [15.0, 16.0, 16.5, 17.0, 88.0, 90.0, 92.0];
        let cut = mdl_cut(&o);
        assert_eq!(cut.cut, 4);
        assert_eq!(cut.threshold, 88.0);
    }

    #[test]
    fn uniform_values_prefer_single_partition() {
        let o = [50.0, 50.0, 50.0, 50.0];
        let cut = mdl_cut(&o);
        // A second partition only adds a header; cut 0 (everything relevant).
        assert_eq!(cut.cut, 0);
    }

    #[test]
    fn single_value() {
        let cut = mdl_cut(&[42.0]);
        assert_eq!(cut.cut, 0);
        assert_eq!(cut.threshold, 42.0);
    }

    #[test]
    fn outlier_high_value_is_isolated() {
        let o = [10.0, 11.0, 12.0, 13.0, 99.0];
        let cut = mdl_cut(&o);
        assert_eq!(cut.cut, 4);
        assert_eq!(cut.threshold, 99.0);
    }

    #[test]
    fn threshold_marks_relevant_axes_like_the_paper() {
        // Simulated relevances of a 3-of-8 cluster: irrelevant axes hover at
        // the uniform expectation (100/6 ≈ 16.7), relevant ones near 100.
        let r = [16.0, 17.2, 15.9, 99.0, 16.4, 97.5, 98.2, 16.8];
        let mut o: Vec<f64> = r.to_vec();
        o.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let cut = mdl_cut(&o);
        let relevant: Vec<usize> = (0..r.len()).filter(|&j| r[j] >= cut.threshold).collect();
        assert_eq!(relevant, vec![3, 5, 6]);
    }

    #[test]
    fn gradual_slope_still_returns_valid_cut() {
        let o: Vec<f64> = (0..10).map(|i| i as f64 * 10.0).collect();
        let cut = mdl_cut(&o);
        assert!(cut.cut < o.len());
        assert_eq!(cut.threshold, o[cut.cut]);
        assert!(cut.cost.is_finite());
    }

    #[test]
    fn large_magnitude_plateau_ties_keep_the_earlier_cut() {
        // Three symmetric plateaus at −2^42, 0, +2^42: by symmetry the cuts
        // at 50 (split `−A | 0,+A`) and 80 (split `−A,0 | +A`) have
        // mathematically identical costs, but float summation order makes
        // the later one ≈6e−12 bits cheaper. That gap sits *above* the old
        // absolute `1e-12` epsilon — so the old rule hopped to cut 80 on
        // pure rounding noise — yet is ~1e−15 of the ≈3.4e3-bit total cost.
        // The relative tolerance must call it a tie and keep the earlier
        // cut (more axes considered relevant).
        let a = (2f64).powi(42);
        let mut v = vec![-a; 50];
        v.extend(std::iter::repeat_n(0.0, 30));
        v.extend(std::iter::repeat_n(a, 50));
        let cut = mdl_cut(&v);
        assert_eq!(cut.cut, 50, "noise-level cost difference moved the cut");
        // Sanity: the mirror cut really is the (noise-level) float minimum,
        // i.e. this input does exercise the tie path rather than a genuine
        // improvement.
        let at = |c: usize| partition_cost(&v[..c]) + partition_cost(&v[c..]);
        assert!(at(80) < at(50) && at(50) - at(80) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_input_panics() {
        mdl_cut(&[]);
    }
}
