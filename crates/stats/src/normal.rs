//! Standard normal distribution.
//!
//! CDF via the incomplete gamma function (`Φ(x)` reduces to `erf`), quantile
//! via Acklam's rational approximation refined with one Halley step. Used by
//! the data generators' statistical self-tests and the HARP baseline's
//! relevance thresholds.

use crate::gamma_inc::gamma_p;
use mrcc_common::float::exactly;

/// Error function `erf(x) = P(1/2, x²)·sign(x)`.
pub fn erf(x: f64) -> f64 {
    if exactly(x, 0.0) {
        return 0.0;
    }
    let v = gamma_p(0.5, x * x);
    if x > 0.0 {
        v
    } else {
        -v
    }
}

/// Standard normal CDF `Φ(x)`.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal quantile `Φ⁻¹(p)` (Acklam's algorithm + one refinement).
///
/// # Panics
/// Panics unless `0 < p < 1`.
pub fn norm_ppf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");
    // Acklam coefficients, at full published precision.
    #[allow(clippy::excessive_precision)]
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement against the accurate CDF.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_known_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-14);
        assert!((norm_cdf(1.959_963_985) - 0.975).abs() < 1e-9);
        assert!((norm_cdf(-1.959_963_985) - 0.025).abs() < 1e-9);
        assert!((norm_cdf(3.0) - 0.998_650_1).abs() < 1e-6);
    }

    #[test]
    fn ppf_inverts_cdf() {
        for &p in &[1e-8, 1e-4, 0.01, 0.3, 0.5, 0.7, 0.99, 1.0 - 1e-6] {
            let x = norm_ppf(p);
            assert!((norm_cdf(x) - p).abs() < 1e-10, "p={p}: x={x}");
        }
    }

    #[test]
    fn ppf_symmetry() {
        for &p in &[0.001, 0.1, 0.25, 0.4] {
            assert!((norm_ppf(p) + norm_ppf(1.0 - p)).abs() < 1e-9);
        }
    }

    #[test]
    fn erf_reference() {
        assert!((erf(1.0) - 0.842_700_792_949_715).abs() < 1e-12);
        assert!((erf(-1.0) + 0.842_700_792_949_715).abs() < 1e-12);
        assert_eq!(erf(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "(0,1)")]
    fn ppf_rejects_boundary() {
        norm_ppf(1.0);
    }
}
