#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Statistics substrate for the MrCC reproduction.
//!
//! Everything numerical the clustering stack needs, implemented from scratch:
//!
//! * [`gamma`] — log-gamma (Lanczos), log-factorials, log binomial
//!   coefficients.
//! * [`beta`] — the regularized incomplete beta function `I_x(a, b)` via the
//!   Lentz continued fraction, which yields *exact* binomial tails at any `n`.
//! * [`gamma_inc`] — regularized incomplete gamma `P(a, x)` / `Q(a, x)`
//!   (series + continued fraction), which yields Poisson tails (used by the
//!   P3C baseline).
//! * [`binomial`] — the binomial distribution, its survival function and the
//!   **critical value** `θ_j^α` of the paper's null-hypothesis test
//!   (`cP_j ~ Binomial(nP_j, 1/6)` under uniformity, Section III-B).
//! * [`poisson`] — Poisson tails for the P3C baseline.
//! * [`normal`] — standard normal CDF and quantile.
//! * [`mdl`] — the Minimum Description Length cut over a sorted array of axis
//!   relevances that tunes MrCC's relevant-axis threshold `cThreshold`.
//! * [`describe`] — small descriptive-statistics helpers.

pub mod beta;
pub mod binomial;
pub mod describe;
pub mod gamma;
pub mod gamma_inc;
pub mod mdl;
pub mod normal;
pub mod poisson;

pub use binomial::{binomial_critical_value, binomial_sf, Binomial};
pub use mdl::{mdl_cut, MdlCut};
