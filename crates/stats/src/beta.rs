//! Regularized incomplete beta function.
//!
//! `I_x(a, b)` evaluated with the modified Lentz continued-fraction algorithm
//! (Numerical Recipes §6.4). This is the workhorse behind exact binomial
//! tails: `P(X ≥ k) = I_p(k, n − k + 1)` for `X ~ Binomial(n, p)`.

use crate::gamma::ln_gamma;
use mrcc_common::float::exactly;
use mrcc_common::num::len_to_f64;

const MAX_ITER: usize = 300;
const EPS: f64 = 3.0e-14;
const FPMIN: f64 = 1.0e-300;

/// Continued-fraction kernel for the incomplete beta function.
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = len_to_f64(m);
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return h;
        }
    }
    // Convergence is geometric for the arguments this workspace produces;
    // reaching here means pathological inputs — return the best estimate.
    h
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0`,
/// `x ∈ [0, 1]`.
///
/// # Panics
/// Panics on out-of-domain arguments.
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(
        a > 0.0 && b > 0.0,
        "inc_beta requires a,b > 0 (a={a}, b={b})"
    );
    assert!(
        (0.0..=1.0).contains(&x),
        "inc_beta requires x in [0,1], got {x}"
    );
    if exactly(x, 0.0) {
        return 0.0;
    }
    if exactly(x, 1.0) {
        return 1.0;
    }
    let ln_bt = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let bt = ln_bt.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        bt * betacf(a, b, x) / a
    } else {
        1.0 - bt * betacf(b, a, 1.0 - x) / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints() {
        assert_eq!(inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(inc_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn uniform_case_is_identity() {
        // I_x(1, 1) = x.
        for &x in &[0.1, 0.25, 0.5, 0.9] {
            assert!((inc_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetry() {
        // I_x(a, b) = 1 − I_{1−x}(b, a).
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (10.0, 3.0, 0.7), (0.5, 0.5, 0.2)] {
            let lhs = inc_beta(a, b, x);
            let rhs = 1.0 - inc_beta(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-12, "a={a} b={b} x={x}");
        }
    }

    #[test]
    fn closed_form_small_integer_cases() {
        // I_x(1, b) = 1 − (1−x)^b.
        let x: f64 = 0.37;
        let b = 4.0;
        let want = 1.0 - (1.0f64 - x).powf(b);
        assert!((inc_beta(1.0, b, x) - want).abs() < 1e-12);
        // I_x(a, 1) = x^a.
        let a = 3.0;
        assert!((inc_beta(a, 1.0, x) - x.powf(a)).abs() < 1e-12);
    }

    #[test]
    fn reference_values() {
        // I_0.4(2,3): CDF of Beta(2,3) = 12∫₀ˣ t(1−t)² dt = 6x²−8x³+3x⁴.
        let x: f64 = 0.4;
        let want = 6.0 * x.powi(2) - 8.0 * x.powi(3) + 3.0 * x.powi(4);
        assert!((inc_beta(2.0, 3.0, x) - want).abs() < 1e-12);
        // Symmetric case pins the median exactly.
        assert!((inc_beta(5.0, 5.0, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn matches_binomial_tail_identity_at_scale() {
        // I_p(k, n−k+1) = P(X ≥ k) for X ~ Binomial(n, p); check against a
        // direct log-space pmf summation as an independent path.
        use crate::gamma::ln_choose;
        let (n, p, k) = (99u64, 0.2f64, 20u64);
        let direct: f64 = (k..=n)
            .map(|i| (ln_choose(n, i) + i as f64 * p.ln() + (n - i) as f64 * (1.0 - p).ln()).exp())
            .sum();
        let via_beta = inc_beta(k as f64, (n - k + 1) as f64, p);
        assert!((direct - via_beta).abs() < 1e-10, "{direct} vs {via_beta}");
    }

    #[test]
    fn monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 / 100.0;
            let v = inc_beta(3.0, 7.0, x);
            assert!(v >= prev, "not monotone at x={x}");
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "x in [0,1]")]
    fn rejects_bad_x() {
        inc_beta(1.0, 1.0, 1.5);
    }
}
