//! Small descriptive-statistics helpers shared by the baselines and tests.

use mrcc_common::num::len_to_f64;

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / len_to_f64(values.len())
}

/// Population variance; 0 for fewer than two values.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / len_to_f64(values.len())
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Minimum and maximum, or `None` for an empty slice.
pub fn min_max(values: &[f64]) -> Option<(f64, f64)> {
    let mut it = values.iter().copied();
    let first = it.next()?;
    let mut mn = first;
    let mut mx = first;
    for v in it {
        if v < mn {
            mn = v;
        }
        if v > mx {
            mx = v;
        }
    }
    Some((mn, mx))
}

/// Harmonic mean of two non-negative values; 0 if either is 0.
///
/// The paper's *Quality* metric is the harmonic mean of averaged precision
/// and averaged recall (Section IV-A).
pub fn harmonic_mean2(a: f64, b: f64) -> f64 {
    if a <= 0.0 || b <= 0.0 {
        return 0.0;
    }
    2.0 * a * b / (a + b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((variance(&v) - 4.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(min_max(&[]), None);
    }

    #[test]
    fn min_max_finds_extremes() {
        assert_eq!(min_max(&[3.0, -1.0, 7.0, 0.0]), Some((-1.0, 7.0)));
    }

    #[test]
    fn harmonic_mean_properties() {
        assert!((harmonic_mean2(1.0, 1.0) - 1.0).abs() < 1e-12);
        assert_eq!(harmonic_mean2(0.0, 1.0), 0.0);
        // Harmonic mean is dominated by the smaller value.
        let h = harmonic_mean2(0.2, 1.0);
        assert!(h > 0.2 && h < 0.6);
    }
}
