//! The binomial distribution and the paper's critical-value computation.
//!
//! MrCC's β-cluster confirmation (Section III-B) tests, per axis `e_j`,
//! whether the centre region's point count `cP_j` is significantly larger
//! than expected when the `nP_j` neighbourhood points are spread uniformly
//! over six consecutive equal-size regions: under the null hypothesis
//! `cP_j ~ Binomial(nP_j, 1/6)`. The one-sided critical value `θ_j^α` is the
//! smallest count whose upper tail probability does not exceed the
//! significance level `α`; the test rejects (a β-cluster is present) when
//! `cP_j ≥ θ_j^α`.

use crate::beta::inc_beta;
use crate::gamma::ln_choose;
use mrcc_common::float::exactly;
use mrcc_common::num::count_to_f64;

/// A binomial distribution `Binomial(n, p)`.
///
/// ```
/// use mrcc_stats::Binomial;
///
/// // The paper's null model: 60 points over six regions.
/// let b = Binomial::new(60, 1.0 / 6.0);
/// assert!((b.mean() - 10.0).abs() < 1e-12);
/// // Critical value at α = 1e-10: counts this high reject uniformity.
/// let theta = b.critical_value(1e-10);
/// assert!(b.sf(theta) <= 1e-10);
/// assert!(theta > 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "a Binomial is a value describing a distribution; dropping it does nothing"]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates the distribution.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn new(n: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        Binomial { n, p }
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `n·p`.
    pub fn mean(&self) -> f64 {
        count_to_f64(self.n) * self.p
    }

    /// Probability mass `P(X = k)` (log-space evaluation, no overflow).
    pub fn pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return 0.0;
        }
        if exactly(self.p, 0.0) {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if exactly(self.p, 1.0) {
            return if k == self.n { 1.0 } else { 0.0 };
        }
        let ln = ln_choose(self.n, k)
            + count_to_f64(k) * self.p.ln()
            + count_to_f64(self.n - k) * (1.0 - self.p).ln();
        ln.exp()
    }

    /// Survival function `P(X ≥ k)`, exact via the incomplete beta identity
    /// `P(X ≥ k) = I_p(k, n − k + 1)` for `1 ≤ k ≤ n`.
    pub fn sf(&self, k: u64) -> f64 {
        if k == 0 {
            return 1.0;
        }
        if k > self.n {
            return 0.0;
        }
        if exactly(self.p, 0.0) {
            return 0.0;
        }
        if exactly(self.p, 1.0) {
            return 1.0;
        }
        inc_beta(count_to_f64(k), count_to_f64(self.n - k + 1), self.p)
    }

    /// Cumulative distribution `P(X ≤ k)`.
    pub fn cdf(&self, k: u64) -> f64 {
        1.0 - self.sf(k + 1)
    }

    /// One-sided upper critical value: the smallest `t` with `P(X ≥ t) ≤ α`.
    ///
    /// The rejection region of the paper's test is `{cP_j ≥ t}`; because the
    /// distribution is discrete the attained size is the largest tail
    /// probability not exceeding `α`. Returns `n + 1` when even the full-mass
    /// tail `P(X ≥ n) = p^n` exceeds `α` (no count can be significant).
    ///
    /// # Panics
    /// Panics unless `0 < α < 1`.
    pub fn critical_value(&self, alpha: f64) -> u64 {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0,1), got {alpha}"
        );
        // sf is nonincreasing in t; binary search the boundary.
        let mut lo = 0u64; // invariant: sf(lo) > alpha
        let mut hi = self.n + 1; // invariant: sf(hi) <= alpha (sf(n+1) = 0)
        if self.sf(lo) <= alpha {
            return 0;
        }
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.sf(mid) <= alpha {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }

    /// Re-verifies the tail-probability invariants the critical-value binary
    /// search relies on: `sf(0) = 1`, `sf(n + 1) = 0`, `sf` nonincreasing in
    /// `k`, every tail probability inside `[0, 1]`, and `cdf(k) + sf(k + 1)`
    /// summing to one. `O(n)` evaluations of the incomplete beta function —
    /// keep `n` modest in property tests.
    ///
    /// Compiled only with the `strict-invariants` feature.
    ///
    /// # Panics
    /// Panics on the first violated invariant.
    #[cfg(feature = "strict-invariants")]
    pub fn check_tail_invariants(&self) {
        const TOL: f64 = 1e-9;
        let mut prev = self.sf(0);
        assert!(
            exactly(prev, 1.0),
            "invariant violated: sf(0) = {prev}, expected 1"
        );
        for k in 1..=self.n + 1 {
            let s = self.sf(k);
            assert!(
                (-TOL..=1.0 + TOL).contains(&s),
                "invariant violated: sf({k}) = {s} outside [0, 1]"
            );
            assert!(
                s <= prev + TOL,
                "invariant violated: sf not nonincreasing at k = {k} ({prev} -> {s})"
            );
            prev = s;
        }
        assert!(
            exactly(self.sf(self.n + 1), 0.0),
            "invariant violated: sf(n + 1) must be 0"
        );
        for k in 0..=self.n {
            let total = self.cdf(k) + self.sf(k + 1);
            assert!(
                (total - 1.0).abs() < TOL,
                "invariant violated: cdf({k}) + sf({}) = {total}, expected 1",
                k + 1
            );
            let mass = self.pmf(k);
            assert!(
                (-TOL..=1.0 + TOL).contains(&mass),
                "invariant violated: pmf({k}) = {mass} outside [0, 1]"
            );
        }
    }
}

/// Convenience wrapper: `P(X ≥ k)` for `X ~ Binomial(n, p)`.
pub fn binomial_sf(n: u64, p: f64, k: u64) -> f64 {
    Binomial::new(n, p).sf(k)
}

/// Convenience wrapper for [`Binomial::critical_value`].
pub fn binomial_critical_value(n: u64, p: f64, alpha: f64) -> u64 {
    Binomial::new(n, p).critical_value(alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct summation reference for small n.
    fn sf_direct(n: u64, p: f64, k: u64) -> f64 {
        (k..=n).map(|i| Binomial::new(n, p).pmf(i)).sum()
    }

    #[test]
    fn pmf_sums_to_one() {
        let b = Binomial::new(20, 1.0 / 6.0);
        let total: f64 = (0..=20).map(|k| b.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sf_matches_direct_summation() {
        for &n in &[1u64, 5, 17, 40] {
            for &p in &[0.1, 1.0 / 6.0, 0.5, 0.9] {
                for k in 0..=n {
                    let exact = sf_direct(n, p, k);
                    let fast = binomial_sf(n, p, k);
                    assert!(
                        (exact - fast).abs() < 1e-10,
                        "n={n} p={p} k={k}: {exact} vs {fast}"
                    );
                }
            }
        }
    }

    #[test]
    fn sf_edge_cases() {
        let b = Binomial::new(10, 0.3);
        assert_eq!(b.sf(0), 1.0);
        assert_eq!(b.sf(11), 0.0);
        assert_eq!(Binomial::new(10, 0.0).sf(1), 0.0);
        assert_eq!(Binomial::new(10, 1.0).sf(10), 1.0);
        assert_eq!(Binomial::new(0, 0.5).sf(0), 1.0);
        assert_eq!(Binomial::new(0, 0.5).sf(1), 0.0);
    }

    #[test]
    fn cdf_complements_sf() {
        let b = Binomial::new(30, 1.0 / 6.0);
        for k in 0..30 {
            let s = b.cdf(k) + b.sf(k + 1);
            assert!((s - 1.0).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn critical_value_definition_holds() {
        // θ is the smallest t with sf(t) ≤ α.
        for &n in &[6u64, 30, 100, 5000] {
            let b = Binomial::new(n, 1.0 / 6.0);
            for &alpha in &[1e-2, 1e-5, 1e-10] {
                let t = b.critical_value(alpha);
                assert!(b.sf(t) <= alpha, "n={n} α={alpha}: sf({t})={}", b.sf(t));
                if t > 0 {
                    assert!(b.sf(t - 1) > alpha, "n={n} α={alpha}: t not minimal ({t})");
                }
            }
        }
    }

    #[test]
    fn critical_value_large_n_behaves_like_gaussian_tail() {
        // For n = 6000, p = 1/6: mean 1000, sd ≈ 28.87. The α = 1e-10 critical
        // value should be ≈ mean + 6.4·sd ≈ 1187.
        let t = binomial_critical_value(6000, 1.0 / 6.0, 1e-10);
        assert!((1150..1230).contains(&t), "t = {t}");
    }

    #[test]
    fn critical_value_small_n_saturates() {
        // With n = 3 and α = 1e-10 no count is significant: sf(3) = (1/6)^3.
        let t = binomial_critical_value(3, 1.0 / 6.0, 1e-10);
        assert_eq!(t, 4); // n + 1 → unreachable
                          // With a generous alpha the critical value drops.
        let t = binomial_critical_value(3, 1.0 / 6.0, 0.5);
        assert!(t <= 2);
    }

    #[test]
    fn tighter_alpha_raises_threshold() {
        let b = Binomial::new(600, 1.0 / 6.0);
        let t3 = b.critical_value(1e-3);
        let t10 = b.critical_value(1e-10);
        let t20 = b.critical_value(1e-20);
        assert!(t3 < t10 && t10 < t20, "{t3} {t10} {t20}");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        binomial_critical_value(10, 0.5, 0.0);
    }
}
