//! Property-based invariants of the full MrCC pipeline.

use mrcc::{MrCC, MrCCConfig};
use mrcc_common::{Dataset, NOISE};
use mrcc_datagen::{generate, SyntheticSpec};
use proptest::prelude::*;

/// Strategy over small synthetic workloads.
fn spec_strategy() -> impl Strategy<Value = SyntheticSpec> {
    (3usize..=10, 1usize..=3, 0u64..1000, 0.0f64..0.3).prop_map(|(dims, clusters, seed, noise)| {
        SyntheticSpec::new(format!("prop-{seed}"), dims, 2_000, clusters, noise, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The output is always a valid partition: every label is a cluster id
    /// or noise; cluster sizes sum with noise to η; reported sizes match.
    #[test]
    fn output_is_a_partition(spec in spec_strategy()) {
        let synth = generate(&spec);
        let result = MrCC::default().fit(&synth.dataset).unwrap();
        #[cfg(feature = "strict-invariants")]
        result.check_invariants();
        let labels = result.clustering.labels();
        prop_assert_eq!(labels.len(), synth.dataset.len());
        let k = result.clustering.len() as i32;
        for &l in &labels {
            prop_assert!(l == NOISE || (0..k).contains(&l));
        }
        let clustered: usize = result.clustering.clusters().iter().map(mrcc_common::SubspaceCluster::len).sum();
        prop_assert_eq!(clustered + result.clustering.noise().len(), labels.len());
        for (cluster, report) in result.clustering.clusters().iter().zip(&result.clusters) {
            prop_assert_eq!(cluster.len(), report.size);
        }
    }

    /// Fitting is deterministic.
    #[test]
    fn deterministic(spec in spec_strategy()) {
        let synth = generate(&spec);
        let a = MrCC::default().fit(&synth.dataset).unwrap();
        let b = MrCC::default().fit(&synth.dataset).unwrap();
        prop_assert_eq!(a.clustering.labels(), b.clustering.labels());
    }

    /// Every β-cluster is well-formed: non-empty relevant axes, bounds
    /// inside the unit cube, per-axis stats arrays of length d, and at
    /// least one significant axis.
    #[test]
    fn beta_clusters_well_formed(spec in spec_strategy()) {
        let synth = generate(&spec);
        let d = synth.dataset.dims();
        let result = MrCC::default().fit(&synth.dataset).unwrap();
        for beta in &result.beta_clusters {
            prop_assert!(!beta.axes.is_empty());
            prop_assert_eq!(beta.axis_stats.len(), d);
            prop_assert!(beta.axis_stats.iter().any(mrcc::beta::AxisStats::significant));
            for j in 0..d {
                prop_assert!(beta.bounds.lower(j) >= 0.0);
                prop_assert!(beta.bounds.upper(j) <= 1.0);
                prop_assert!(beta.bounds.lower(j) <= beta.bounds.upper(j));
                // Irrelevant axes span everything.
                if !beta.axes.contains(j) {
                    prop_assert_eq!(beta.bounds.lower(j), 0.0);
                    prop_assert_eq!(beta.bounds.upper(j), 1.0);
                }
            }
        }
    }

    /// Correlation clusters reference valid β indices, exactly once each.
    #[test]
    fn merge_references_are_a_partition_of_betas(spec in spec_strategy()) {
        let synth = generate(&spec);
        let result = MrCC::default().fit(&synth.dataset).unwrap();
        let mut seen = vec![false; result.n_beta_clusters()];
        for cluster in &result.clusters {
            prop_assert!(!cluster.axes.is_empty());
            for &m in &cluster.beta_indices {
                prop_assert!(m < seen.len());
                prop_assert!(!seen[m], "β {m} in two correlation clusters");
                seen[m] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "orphan β-cluster");
    }

    /// Every labeled point actually lies inside one of its cluster's
    /// β-boxes (the labeling rule of Algorithm 3).
    #[test]
    fn members_are_inside_their_boxes(spec in spec_strategy()) {
        let synth = generate(&spec);
        let result = MrCC::default().fit(&synth.dataset).unwrap();
        for (cluster, report) in result.clustering.clusters().iter().zip(&result.clusters) {
            for &i in cluster.points.iter().take(50) {
                let p = synth.dataset.point(i);
                let inside = report
                    .beta_indices
                    .iter()
                    .any(|&m| result.beta_clusters[m].bounds.contains(p));
                prop_assert!(inside, "point {i} outside every member box");
            }
        }
    }

    /// Tighter α never yields more β-clusters.
    #[test]
    fn alpha_monotonicity(seed in 0u64..200) {
        let spec = SyntheticSpec::new("prop-a", 6, 3_000, 2, 0.15, seed);
        let synth = generate(&spec);
        let count = |alpha: f64| {
            MrCC::new(MrCCConfig::with_params(alpha, 4))
                .fit(&synth.dataset)
                .unwrap()
                .n_beta_clusters()
        };
        prop_assert!(count(1e-3) >= count(1e-60));
    }

    /// Pure-uniform data (η points, no clusters) almost never produces a
    /// dominant cluster at the default α.
    #[test]
    fn uniform_data_stays_noise(seed in 0u64..100) {
        let spec = SyntheticSpec::new("prop-u", 5, 2_000, 0, 0.0, seed);
        let synth = generate(&spec);
        let result = MrCC::default().fit(&synth.dataset).unwrap();
        prop_assert!(
            result.noise_ratio() > 0.8,
            "uniform data clustered: noise ratio {}",
            result.noise_ratio()
        );
    }

    /// Datasets that fit in a single grid cell do not crash and produce at
    /// most one cluster.
    #[test]
    fn degenerate_tight_blob(seed in 0u64..50) {
        let mut rows = Vec::new();
        let mut state = seed.wrapping_mul(0x9E37_79B9).wrapping_add(1);
        for _ in 0..500 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let r = (state >> 11) as f64 / (1u64 << 53) as f64;
            rows.push([0.5 + 0.001 * (r - 0.5), 0.5 + 0.001 * r]);
        }
        let ds = Dataset::from_rows(&rows).unwrap();
        let result = MrCC::default().fit(&ds).unwrap();
        prop_assert!(result.n_clusters() <= 2);
    }
}
