//! Single-scan merge engine ↔ quadratic oracle equivalence.
//!
//! The rewritten phase three (`merge::build_correlation_clusters`) promises
//! the exact same output as the superseded multi-scan path, retained as
//! `merge::build_correlation_clusters_oracle` behind the `merge-oracle`
//! feature — bit-identical, floats compared through [`f64::to_bits`]. These
//! proptests pin that contract on adversarial β-box arrangements the
//! [`mrcc_common::BoxIndex`] must not mis-prune: bounds snapped to a coarse
//! grid so boxes constantly touch at faces, nest, coincide, degenerate to
//! zero extent, span the full unit interval on every axis, or contain no
//! points at all — at every thread count in `{1, 2, 3, 8}` plus an optional
//! CI-supplied count from `MRCC_TEST_THREADS` (the `parallel-equivalence`
//! job re-runs this file at 4 threads).

use mrcc::beta::BetaCluster;
use mrcc::merge::{build_correlation_clusters, build_correlation_clusters_oracle, MergeCache};
use mrcc::CorrelationCluster;
use mrcc_common::{AxisMask, BoundingBox, Dataset, SubspaceClustering};
use proptest::prelude::*;

/// Thread counts every case sweeps; `MRCC_TEST_THREADS` appends one more.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 3, 8];
    if let Ok(v) = std::env::var("MRCC_TEST_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 && !counts.contains(&n) {
                counts.push(n);
            }
        }
    }
    counts
}

/// Grid resolution for box bounds and half the point coordinates: coarse
/// enough that distinct boxes share faces (and points sit *on* those faces)
/// with high probability.
const GRID: f64 = 8.0;

/// Decodes one raw `u32` into a coordinate in `[0, 1)`: every fourth value
/// snaps onto the face grid, the rest are fine-grained.
fn coord(raw: u32) -> f64 {
    if raw.is_multiple_of(4) {
        f64::from((raw / 4) % 8) / GRID
    } else {
        f64::from(raw % 1000) / 1000.0
    }
}

/// Decodes per-axis raw bound pairs into a β-cluster. Bounds snap to the
/// `GRID` lattice (`9` maps to the full `[0,1]` span, so whole-axis and
/// unit boxes occur often); zero-extent axes are kept. Relevant axes are
/// the confined ones, or axis 0 for the degenerate unit box.
fn beta(raw_bounds: &[(u8, u8)]) -> BetaCluster {
    let dims = raw_bounds.len();
    let mut lower = Vec::with_capacity(dims);
    let mut upper = Vec::with_capacity(dims);
    for &(a, b) in raw_bounds {
        let (a, b) = (a % 10, b % 10);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        if hi >= 9 && lo == 0 || lo >= 9 {
            lower.push(0.0);
            upper.push(1.0);
        } else {
            lower.push(f64::from(lo.min(8)) / GRID);
            upper.push(f64::from(hi.min(8)) / GRID);
        }
    }
    let bounds = BoundingBox::new(lower, upper);
    let confined = (0..dims).filter(|&j| bounds.extent(j) < 1.0);
    let mut axes = AxisMask::from_axes(dims, confined);
    if axes.is_empty() {
        axes = AxisMask::from_axes(dims, std::iter::once(0));
    }
    BetaCluster {
        bounds,
        axes,
        level: 2,
        center_coords: vec![0; dims],
        axis_stats: Vec::new(),
        relevance_threshold: 50.0,
    }
}

/// Asserts the engine output equals the oracle's, bit for bit.
fn assert_matches_oracle(
    engine: &(Vec<CorrelationCluster>, SubspaceClustering, MergeCache),
    oracle: &(Vec<CorrelationCluster>, SubspaceClustering),
    context: &str,
) {
    let (clusters, clustering, _) = engine;
    let (oc, ocl) = oracle;
    assert_eq!(
        clustering.labels(),
        ocl.labels(),
        "{context}: labels differ"
    );
    assert_eq!(clusters.len(), oc.len(), "{context}: cluster count differs");
    for (k, (x, y)) in clusters.iter().zip(oc).enumerate() {
        assert_eq!(x.axes, y.axes, "{context}: γ {k} axes differ");
        assert_eq!(
            x.beta_indices, y.beta_indices,
            "{context}: γ {k} members differ"
        );
        assert_eq!(x.size, y.size, "{context}: γ {k} size differs");
        for j in 0..x.hull.dims() {
            assert_eq!(
                x.hull.lower(j).to_bits(),
                y.hull.lower(j).to_bits(),
                "{context}: γ {k} hull lower {j} differs"
            );
            assert_eq!(
                x.hull.upper(j).to_bits(),
                y.hull.upper(j).to_bits(),
                "{context}: γ {k} hull upper {j} differs"
            );
        }
    }
}

/// Asserts the cache agrees with a brute-force containment evaluation.
fn assert_cache_exact(cache: &MergeCache, ds: &Dataset, betas: &[BetaCluster], context: &str) {
    assert_eq!(cache.n_points(), ds.len(), "{context}: cache point count");
    assert_eq!(cache.n_boxes(), betas.len(), "{context}: cache box count");
    let mut counts = vec![0usize; betas.len()];
    for (i, p) in ds.iter().enumerate() {
        let brute: Vec<u32> = betas
            .iter()
            .enumerate()
            .filter(|(_, b)| b.bounds.contains(p))
            .map(|(m, _)| u32::try_from(m).unwrap())
            .collect();
        assert_eq!(
            cache.containing(i),
            &brute[..],
            "{context}: point {i} containment"
        );
        for &m in &brute {
            counts[m as usize] += 1;
        }
    }
    for (m, &c) in counts.iter().enumerate() {
        assert_eq!(cache.box_count(m), c, "{context}: β {m} count");
    }
}

fn run_case(raw_points: &[Vec<u32>], raw_boxes: &[Vec<(u8, u8)>], dims: usize) {
    let mut ds = Dataset::new(dims).unwrap();
    for raw in raw_points {
        let p: Vec<f64> = raw.iter().map(|&r| coord(r)).collect();
        ds.push(&p).unwrap();
    }
    let betas: Vec<BetaCluster> = raw_boxes.iter().map(|rb| beta(rb)).collect();
    let oracle = build_correlation_clusters_oracle(&ds, &betas);
    for threads in thread_counts() {
        let engine = build_correlation_clusters(&ds, &betas, threads);
        let context = format!("{dims}d/{}pts/{}β @ {threads}t", ds.len(), betas.len());
        assert_matches_oracle(&engine, &oracle, &context);
        assert_cache_exact(&engine.2, &ds, &betas, &context);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random grid-snapped arrangements: face-touching, nested, duplicated,
    /// zero-extent, whole-axis and point-free boxes all occur; the engine
    /// must match the oracle bit for bit at every thread count.
    #[test]
    fn engine_matches_oracle_on_random_arrangements(
        dims in 2usize..=4,
        raw_points in proptest::collection::vec(
            proptest::collection::vec(0u32..1_000_000, 4), 0..=300),
        raw_boxes in proptest::collection::vec(
            proptest::collection::vec((0u8..=9, 0u8..=9), 4), 0..=8),
    ) {
        let points: Vec<Vec<u32>> = raw_points
            .iter()
            .map(|p| p.iter().copied().take(dims).collect())
            .collect();
        let boxes: Vec<Vec<(u8, u8)>> = raw_boxes
            .iter()
            .map(|b| b.iter().copied().take(dims).collect())
            .collect();
        run_case(&points, &boxes, dims);
    }
}

#[test]
fn nested_face_touching_and_empty_boxes() {
    // A hand-built worst case: three nested boxes, two face-touching
    // neighbours (points sit exactly on the shared face), one zero-extent
    // box on a populated coordinate, one whole-space box, and one box over
    // an empty region.
    let raw_points: Vec<Vec<u32>> = (0..200u32).map(|i| vec![i * 97, i * 193]).collect();
    let raw_boxes: Vec<Vec<(u8, u8)>> = vec![
        vec![(0, 8), (0, 8)], // whole space
        vec![(1, 7), (1, 7)], // nested
        vec![(2, 4), (2, 4)], // nested deeper
        vec![(0, 4), (0, 2)], // face-touches the next box at x = 0.5
        vec![(4, 8), (0, 2)],
        vec![(3, 3), (3, 3)], // zero extent
        vec![(7, 8), (7, 8)], // likely point-free corner
    ];
    run_case(&raw_points, &raw_boxes, 2);
}

#[test]
fn empty_dataset_and_no_boxes() {
    run_case(&[], &[], 3);
    run_case(&[], &[vec![(0, 4), (0, 4), (0, 9)]], 3);
    let pts: Vec<Vec<u32>> = (0..50u32).map(|i| vec![i * 31, i * 57, i * 11]).collect();
    run_case(&pts, &[], 3);
}
