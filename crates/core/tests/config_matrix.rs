//! Configuration-matrix integration tests: every public MrCC configuration
//! variant must produce a valid clustering on a standard workload, and the
//! knobs must move the output in the documented direction.

use mrcc::{AxisSelection, MaskKind, MrCC, MrCCConfig};
use mrcc_datagen::{generate, SyntheticSpec};
use mrcc_eval::quality;

fn workload() -> mrcc_datagen::Synthetic {
    generate(&SyntheticSpec::new("cfg", 6, 6_000, 3, 0.15, 77))
}

fn fit_quality(config: MrCCConfig, synth: &mrcc_datagen::Synthetic) -> f64 {
    let result = MrCC::new(config).fit(&synth.dataset).unwrap();
    quality(&result.clustering, &synth.ground_truth).quality
}

#[test]
fn every_mask_variant_works() {
    let synth = workload();
    for mask in [MaskKind::FaceOnly, MaskKind::Full] {
        let q = fit_quality(
            MrCCConfig {
                mask,
                ..Default::default()
            },
            &synth,
        );
        assert!(q > 0.6, "{mask:?}: quality {q}");
    }
}

#[test]
fn every_axis_selection_variant_works() {
    let synth = workload();
    for selection in [
        AxisSelection::Mdl,
        AxisSelection::Share(45.0),
        AxisSelection::Share(60.0),
    ] {
        let q = fit_quality(
            MrCCConfig {
                axis_selection: selection,
                ..Default::default()
            },
            &synth,
        );
        assert!(q > 0.6, "{selection:?}: quality {q}");
    }
}

#[test]
fn paper_pure_configuration_still_runs() {
    // MDL cut, no effect floor — the configuration closest to the paper's
    // text. It must produce a valid (if possibly weaker) clustering.
    let synth = workload();
    let config = MrCCConfig {
        axis_selection: AxisSelection::Mdl,
        relevance_floor: 0.0,
        ..Default::default()
    };
    let result = MrCC::new(config).fit(&synth.dataset).unwrap();
    let labels = result.clustering.labels();
    assert_eq!(labels.len(), synth.dataset.len());
    assert!(result.n_beta_clusters() >= result.n_clusters());
}

#[test]
fn resolution_count_does_not_change_quality_materially() {
    // Fig. 4d: Quality flat for H ≥ 4.
    let synth = workload();
    let q4 = fit_quality(MrCCConfig::with_params(1e-10, 4), &synth);
    let q8 = fit_quality(MrCCConfig::with_params(1e-10, 8), &synth);
    assert!((q4 - q8).abs() < 0.15, "H=4: {q4}, H=8: {q8}");
}

#[test]
fn phase_timings_are_recorded() {
    let synth = workload();
    let result = MrCC::default().fit(&synth.dataset).unwrap();
    let stats = &result.stats;
    assert!(stats.tree_build.as_nanos() > 0);
    assert!(stats.total_time() >= stats.beta_search);
    assert!(stats.tree_memory_bytes > 0);
}

#[test]
fn invalid_configurations_fail_before_any_work() {
    let synth = workload();
    for config in [
        MrCCConfig::with_params(0.0, 4),
        MrCCConfig::with_params(1e-10, 2),
        MrCCConfig {
            relevance_floor: 120.0,
            ..Default::default()
        },
        MrCCConfig {
            axis_selection: AxisSelection::Share(0.0),
            ..Default::default()
        },
    ] {
        assert!(MrCC::new(config).fit(&synth.dataset).is_err());
    }
}
