//! β-clusters: the candidate clusters of MrCC's second phase.
//!
//! A β-cluster follows the definition of a correlation cluster but is not yet
//! confirmed/merged. The paper describes the `βk` β-clusters with three
//! matrices: `L[k][j]`/`U[k][j]` (lower/upper bounds per axis) and `V[k][j]`
//! (axis relevance flags). One [`BetaCluster`] holds row `k` of all three,
//! plus provenance (which cell won the convolution, at which level, and the
//! per-axis statistics that confirmed it) so results are explainable.

use mrcc_common::{AxisMask, BoundingBox};

/// Per-axis statistics of the binomial significance test that confirmed a
/// β-cluster (Section III-B).
#[derive(Debug, Clone)]
pub struct AxisStats {
    /// Points in the six-region neighborhood along this axis (`nP_j`).
    pub neighborhood: u64,
    /// Points in the centre region (`cP_j`).
    pub center: u64,
    /// Critical value `θ_j^α` of the test.
    pub critical: u64,
    /// Relevance `r[j] = 100·cP_j / nP_j`.
    pub relevance: f64,
}

impl AxisStats {
    /// Whether this axis rejected the uniform null (`cP_j ≥ θ_j^α`).
    pub fn significant(&self) -> bool {
        self.center >= self.critical
    }
}

/// A confirmed β-cluster.
#[derive(Debug, Clone)]
pub struct BetaCluster {
    /// Bounds per axis: relevant axes carry the refined cell bounds, the
    /// paper's `L[k][j]`/`U[k][j]`; irrelevant axes span `[0, 1]`.
    pub bounds: BoundingBox,
    /// Relevant axes (`V[k]`).
    pub axes: AxisMask,
    /// Tree level at which the centre cell was found.
    pub level: usize,
    /// Absolute grid coordinates of the centre cell at that level.
    pub center_coords: Vec<u64>,
    /// Per-axis test statistics (diagnostics; one entry per original axis).
    pub axis_stats: Vec<AxisStats>,
    /// The MDL (or fixed) relevance threshold that cut the axes.
    pub relevance_threshold: f64,
}

impl BetaCluster {
    /// The share-space predicate between two β-clusters: interior overlap on
    /// **every** axis of the full `d`-dimensional space, plus at least one
    /// common relevant axis.
    ///
    /// Two deviations from the paper's bare `≥` box formula, both forced by
    /// behaviour at scale (see DESIGN.md): overlap is *strict* (cluster
    /// bounds are grid-aligned, so distinct adjacent clusters constantly
    /// share a zero-volume face), and the clusters must agree on at least
    /// one relevant axis — a box constrained on axes `{e1}` and a box
    /// constrained on `{e2}` *always* intersect geometrically (each spans
    /// `[0,1]` where the other is confined), which would chain-merge every
    /// cluster living in a disjoint subspace. Fragments of one (possibly
    /// rotated) cluster share their confined directions, so genuine merges
    /// keep happening.
    pub fn shares_space(&self, other: &BetaCluster) -> bool {
        self.axes.intersection_count(&other.axes) > 0 && self.bounds.overlaps_strict(&other.bounds)
    }

    /// Cluster dimensionality `δ`.
    pub fn dimensionality(&self) -> usize {
        self.axes.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beta(lo: &[f64], hi: &[f64], axes: &[usize]) -> BetaCluster {
        let d = lo.len();
        BetaCluster {
            bounds: BoundingBox::new(lo.to_vec(), hi.to_vec()),
            axes: AxisMask::from_axes(d, axes.iter().copied()),
            level: 2,
            center_coords: vec![0; d],
            axis_stats: Vec::new(),
            relevance_threshold: 50.0,
        }
    }

    #[test]
    fn share_space_uses_all_axes_and_is_strict() {
        let a = beta(&[0.0, 0.0], &[0.25, 0.25], &[0, 1]);
        let b = beta(&[0.2, 0.0], &[0.5, 0.25], &[0, 1]);
        let touch = beta(&[0.25, 0.0], &[0.5, 0.25], &[0, 1]);
        let c = beta(&[0.5, 0.5], &[0.75, 0.75], &[0, 1]);
        assert!(a.shares_space(&b)); // interior overlap on both axes
        assert!(!a.shares_space(&touch)); // face contact only → separate
        assert!(!a.shares_space(&c));
    }

    #[test]
    fn disjoint_relevant_axes_never_merge() {
        // Relevant on different axes: the boxes intersect geometrically
        // (each spans [0,1] where the other is confined) but describe
        // clusters in unrelated subspaces → no space sharing.
        let a = beta(&[0.1, 0.0], &[0.2, 1.0], &[0]);
        let b = beta(&[0.0, 0.6], &[1.0, 0.7], &[1]);
        assert!(!a.shares_space(&b));
        // With a common relevant axis and interior overlap, they do share.
        let c = beta(&[0.15, 0.0], &[0.3, 1.0], &[0]);
        assert!(a.shares_space(&c));
    }

    #[test]
    fn axis_stats_significance() {
        let s = AxisStats {
            neighborhood: 60,
            center: 30,
            critical: 25,
            relevance: 50.0,
        };
        assert!(s.significant());
        let s2 = AxisStats { center: 24, ..s };
        assert!(!s2.significant());
    }

    #[test]
    fn dimensionality_counts_relevant_axes() {
        let b = beta(&[0.0, 0.0, 0.0], &[1.0, 0.5, 1.0], &[1]);
        assert_eq!(b.dimensionality(), 1);
    }
}
