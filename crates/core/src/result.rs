//! The output of a full MrCC fit.

use std::time::Duration;

use mrcc_common::SubspaceClustering;

use crate::beta::BetaCluster;
use crate::merge::CorrelationCluster;

/// Phase timings and resource accounting of one fit.
#[derive(Debug, Clone)]
pub struct FitStats {
    /// Heap footprint of the Counting-tree right after construction.
    pub tree_memory_bytes: usize,
    /// Wall time of phase one (Algorithm 1).
    pub tree_build: Duration,
    /// Wall time of phase two (Algorithm 2).
    pub beta_search: Duration,
    /// Wall time of phase three (Algorithm 3) including point labeling.
    pub merge_phase: Duration,
}

impl FitStats {
    /// Total wall time across all three phases.
    pub fn total_time(&self) -> Duration {
        self.tree_build + self.beta_search + self.merge_phase
    }
}

/// Everything a fit produces.
#[derive(Debug, Clone)]
pub struct MrCCResult {
    /// The dataset partition: disjoint clusters + implicit noise.
    pub clustering: SubspaceClustering,
    /// The correlation clusters with their relevant axes and member
    /// β-clusters (`γk` entries).
    pub clusters: Vec<CorrelationCluster>,
    /// The raw β-clusters of phase two (`βk` entries), for diagnostics.
    pub beta_clusters: Vec<BetaCluster>,
    /// Resource accounting.
    pub stats: FitStats,
}

impl MrCCResult {
    /// Number of correlation clusters found (`γk`).
    pub fn n_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Number of β-clusters found (`βk`).
    pub fn n_beta_clusters(&self) -> usize {
        self.beta_clusters.len()
    }

    /// Fraction of points labeled as noise.
    pub fn noise_ratio(&self) -> f64 {
        if self.clustering.n_points() == 0 {
            return 0.0;
        }
        1.0 - self.clustering.n_clustered() as f64 / self.clustering.n_points() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_total_is_sum_of_phases() {
        let s = FitStats {
            tree_memory_bytes: 1024,
            tree_build: Duration::from_millis(5),
            beta_search: Duration::from_millis(7),
            merge_phase: Duration::from_millis(3),
        };
        assert_eq!(s.total_time(), Duration::from_millis(15));
    }

    #[test]
    fn noise_ratio_of_empty_result() {
        let r = MrCCResult {
            clustering: SubspaceClustering::empty(10, 3),
            clusters: Vec::new(),
            beta_clusters: Vec::new(),
            stats: FitStats {
                tree_memory_bytes: 0,
                tree_build: Duration::ZERO,
                beta_search: Duration::ZERO,
                merge_phase: Duration::ZERO,
            },
        };
        assert_eq!(r.n_clusters(), 0);
        assert_eq!(r.noise_ratio(), 1.0);
    }
}
