//! The output of a full MrCC fit.

use std::time::Duration;

use mrcc_common::SubspaceClustering;

use crate::beta::BetaCluster;
use crate::merge::{CorrelationCluster, MergeCache};

/// Phase timings and resource accounting of one fit.
#[derive(Debug, Clone)]
pub struct FitStats {
    /// Heap footprint of the Counting-tree right after construction.
    pub tree_memory_bytes: usize,
    /// Wall time of phase one (Algorithm 1).
    pub tree_build: Duration,
    /// Wall time of phase two (Algorithm 2).
    pub beta_search: Duration,
    /// Wall time of phase three (Algorithm 3) including point labeling.
    pub merge_phase: Duration,
}

impl FitStats {
    /// Total wall time across all three phases.
    pub fn total_time(&self) -> Duration {
        self.tree_build + self.beta_search + self.merge_phase
    }
}

/// Everything a fit produces.
#[derive(Debug, Clone)]
#[must_use = "an MrCCResult is the whole output of a fit; dropping it discards the clustering"]
pub struct MrCCResult {
    /// The dataset partition: disjoint clusters + implicit noise.
    pub clustering: SubspaceClustering,
    /// The correlation clusters with their relevant axes and member
    /// β-clusters (`γk` entries).
    pub clusters: Vec<CorrelationCluster>,
    /// The raw β-clusters of phase two (`βk` entries), for diagnostics.
    pub beta_clusters: Vec<BetaCluster>,
    /// Artifacts of the merge phase's single dataset pass (per-β point
    /// counts and per-point containing-box sets), reused by
    /// [`MrCCResult::soft_memberships`] so no consumer re-scans the dataset.
    pub merge_cache: MergeCache,
    /// Resource accounting.
    pub stats: FitStats,
}

impl MrCCResult {
    /// Number of correlation clusters found (`γk`).
    pub fn n_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Number of β-clusters found (`βk`).
    pub fn n_beta_clusters(&self) -> usize {
        self.beta_clusters.len()
    }

    /// Fraction of points labeled as noise.
    pub fn noise_ratio(&self) -> f64 {
        if self.clustering.n_points() == 0 {
            return 0.0;
        }
        1.0 - self.clustering.n_clustered() as f64 / self.clustering.n_points() as f64
    }

    /// Re-verifies the cross-structure invariants of a finished fit:
    ///
    /// * the point partition satisfies the [`SubspaceClustering`] invariants
    ///   (disjoint hard labels, in-range members);
    /// * every β-cluster box lies inside the unit cube with `L[j] ≤ U[j]`
    ///   per axis and carries at least one relevant axis;
    /// * every correlation cluster references valid β-cluster indices
    ///   (sorted, unique), its axis set covers the union of its members'
    ///   axes, and its hull has the embedding dimensionality;
    /// * the merge cache covers every point and every β-cluster, and each
    ///   cached containing-box list is sorted-unique with in-range ids.
    ///
    /// Compiled only with the `strict-invariants` feature; call from tests
    /// after `fit`.
    ///
    /// # Panics
    /// Panics on the first violated invariant.
    #[cfg(feature = "strict-invariants")]
    pub fn check_invariants(&self) {
        self.clustering.check_invariants();
        let d = self.clustering.dims();
        for (k, b) in self.beta_clusters.iter().enumerate() {
            assert_eq!(
                b.bounds.dims(),
                d,
                "invariant violated: β-cluster {k} box has wrong dimensionality"
            );
            assert!(
                b.axes.count() > 0,
                "invariant violated: β-cluster {k} has no relevant axis"
            );
            for j in 0..d {
                let (lo, hi) = (b.bounds.lower(j), b.bounds.upper(j));
                assert!(
                    lo <= hi,
                    "invariant violated: β-cluster {k} axis {j} has inverted bounds [{lo}, {hi}]"
                );
                assert!(
                    (0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi),
                    "invariant violated: β-cluster {k} axis {j} bounds [{lo}, {hi}] leave the unit cube"
                );
            }
        }
        for (k, c) in self.clusters.iter().enumerate() {
            assert!(
                c.beta_indices.windows(2).all(|w| w[0] < w[1]),
                "invariant violated: correlation cluster {k} member list not sorted-unique"
            );
            assert_eq!(
                c.hull.dims(),
                d,
                "invariant violated: correlation cluster {k} hull has wrong dimensionality"
            );
            for &bi in &c.beta_indices {
                assert!(
                    bi < self.beta_clusters.len(),
                    "invariant violated: correlation cluster {k} references β-cluster {bi}"
                );
                let member = &self.beta_clusters[bi];
                assert!(
                    member.axes.iter().all(|j| c.axes.contains(j)),
                    "invariant violated: correlation cluster {k} axes do not cover member {bi}"
                );
            }
        }
        assert_eq!(
            self.merge_cache.n_points(),
            self.clustering.n_points(),
            "invariant violated: merge cache covers the wrong point count"
        );
        assert_eq!(
            self.merge_cache.n_boxes(),
            self.beta_clusters.len(),
            "invariant violated: merge cache covers the wrong β-cluster count"
        );
        for i in 0..self.merge_cache.n_points() {
            let ids = self.merge_cache.containing(i);
            assert!(
                ids.windows(2).all(|w| w[0] < w[1]),
                "invariant violated: point {i} containment list not sorted-unique"
            );
            assert!(
                ids.iter().all(|&b| (b as usize) < self.beta_clusters.len()),
                "invariant violated: point {i} containment references missing β-cluster"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_total_is_sum_of_phases() {
        let s = FitStats {
            tree_memory_bytes: 1024,
            tree_build: Duration::from_millis(5),
            beta_search: Duration::from_millis(7),
            merge_phase: Duration::from_millis(3),
        };
        assert_eq!(s.total_time(), Duration::from_millis(15));
    }

    #[test]
    fn noise_ratio_of_empty_result() {
        let r = MrCCResult {
            clustering: SubspaceClustering::empty(10, 3),
            clusters: Vec::new(),
            beta_clusters: Vec::new(),
            merge_cache: MergeCache::empty(10),
            stats: FitStats {
                tree_memory_bytes: 0,
                tree_build: Duration::ZERO,
                beta_search: Duration::ZERO,
                merge_phase: Duration::ZERO,
            },
        };
        assert_eq!(r.n_clusters(), 0);
        assert_eq!(r.noise_ratio(), 1.0);
    }
}
