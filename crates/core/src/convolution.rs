//! Laplacian convolution over a Counting-tree level.
//!
//! The masks are integer approximations of the Laplacian filter — a
//! second-derivative operator that reacts to density transitions (Figure 2 of
//! the paper). MrCC uses the order-3 mask whose only non-zero entries are the
//! centre (`2d`) and the `2d` face elements (`−1`): convolving a cell is then
//! `O(d)` instead of the `O(3^d)` a full mask costs. The full mask is kept
//! behind [`MaskKind::Full`] for the ablation study.

use mrcc_counting_tree::{CellId, Direction, Level};

use crate::config::MaskKind;

/// Convolved value of the face-only order-3 Laplacian at `id`:
/// `2d·n(center) − Σ_j (n(lower face_j) + n(upper face_j))`.
///
/// Missing neighbors (space border or unrefined empty region) contribute 0 —
/// empty space has zero density.
pub fn convolve_face_only(level: &Level, id: CellId, dims: usize) -> i64 {
    let center = level.cell(id).n() as i64;
    let mut acc = 2 * dims as i64 * center;
    for j in 0..dims {
        acc -= level.neighbor_count(id, j, Direction::Lower) as i64;
        acc -= level.neighbor_count(id, j, Direction::Upper) as i64;
    }
    acc
}

/// Convolved value of the *full* order-3 Laplacian at `id`: centre weight
/// `3^d − 1`, every one of the `3^d − 1` neighbors (faces and corners) `−1`.
///
/// Cost is `O(3^d · d)`; callers must keep `d` small (the ablation bench uses
/// `d ≤ 10`, mirroring the paper's remark that a 10-dimensional cell already
/// has 59,028 corner elements).
pub fn convolve_full(level: &Level, id: CellId, dims: usize) -> i64 {
    let cell = level.cell(id);
    let center = cell.n() as i64;
    let weight = 3i64.pow(dims as u32) - 1;
    let mut acc = weight * center;

    // Enumerate all 3^d offsets in {−1, 0, +1}^d except the origin.
    let mut key: Vec<u64> = cell.coords().to_vec();
    let extent = level.grid_extent();
    let n_offsets = 3usize.pow(dims as u32);
    'offsets: for code in 0..n_offsets {
        let mut c = code;
        let mut all_zero = true;
        for j in 0..dims {
            let trit = (c % 3) as i64 - 1; // −1, 0, +1
            c /= 3;
            let base = cell.coords()[j];
            let coord = base as i64 + trit;
            if coord < 0 || coord as u64 >= extent {
                // Off the grid: restore and skip this offset.
                key[..dims].copy_from_slice(&cell.coords()[..dims]);
                continue 'offsets;
            }
            key[j] = coord as u64;
            if trit != 0 {
                all_zero = false;
            }
        }
        if !all_zero {
            if let Some(nid) = level.find(&key) {
                acc -= level.cell(nid).n() as i64;
            }
        }
        key[..dims].copy_from_slice(&cell.coords()[..dims]);
    }
    acc
}

/// Dispatches on the configured mask kind.
pub fn convolve(level: &Level, id: CellId, dims: usize, mask: MaskKind) -> i64 {
    match mask {
        MaskKind::FaceOnly => convolve_face_only(level, id, dims),
        MaskKind::Full => convolve_full(level, id, dims),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrcc_common::Dataset;
    use mrcc_counting_tree::CountingTree;

    /// Grid with a dense cell surrounded by sparse ones.
    fn bump_tree() -> CountingTree {
        let mut rows: Vec<[f64; 2]> = Vec::new();
        // 10 points in cell (1,1) of level 2 (coords in [0.25,0.5) × [0.25,0.5)).
        for i in 0..10 {
            rows.push([0.30 + 0.001 * i as f64, 0.30 + 0.001 * i as f64]);
        }
        // 2 points in the right face neighbor (2,1).
        rows.push([0.55, 0.30]);
        rows.push([0.60, 0.35]);
        // 1 point in a corner neighbor (2,2) — face-only mask ignores it.
        rows.push([0.55, 0.55]);
        CountingTree::build(&Dataset::from_rows(&rows).unwrap(), 4).unwrap()
    }

    #[test]
    fn face_only_reacts_to_density_bump() {
        let tree = bump_tree();
        let l2 = tree.level(2);
        let dense = l2.find(&[1, 1]).unwrap();
        // 2·2·10 − (2 face-neighbor points) = 38.
        assert_eq!(convolve_face_only(l2, dense, 2), 38);
        let sparse = l2.find(&[2, 1]).unwrap();
        // 2·2·2 − 10 (left face) − 1? (2,2) is a *face* neighbor of (2,1)
        // along axis 1 → 8 − 10 − 1 = −3.
        assert_eq!(convolve_face_only(l2, sparse, 2), -3);
        assert!(convolve_face_only(l2, dense, 2) > convolve_face_only(l2, sparse, 2));
    }

    #[test]
    fn full_mask_also_subtracts_corners() {
        let tree = bump_tree();
        let l2 = tree.level(2);
        let dense = l2.find(&[1, 1]).unwrap();
        // Full: (3² − 1)·10 − (faces: 2) − (corner (2,2): 1) = 80 − 3 = 77.
        assert_eq!(convolve_full(l2, dense, 2), 77);
    }

    #[test]
    fn isolated_cell_convolves_to_positive_mass() {
        let ds = Dataset::from_rows(&[[0.1, 0.1], [0.12, 0.11]]).unwrap();
        let tree = CountingTree::build(&ds, 4).unwrap();
        let l2 = tree.level(2);
        let (id, cell) = l2.iter().next().unwrap();
        assert_eq!(convolve_face_only(l2, id, 2), 2 * 2 * cell.n() as i64);
        assert_eq!(
            convolve_full(l2, id, 2),
            (3i64.pow(2) - 1) * cell.n() as i64
        );
    }

    #[test]
    fn dispatch_matches_direct_calls() {
        let tree = bump_tree();
        let l2 = tree.level(2);
        let dense = l2.find(&[1, 1]).unwrap();
        assert_eq!(
            convolve(l2, dense, 2, MaskKind::FaceOnly),
            convolve_face_only(l2, dense, 2)
        );
        assert_eq!(
            convolve(l2, dense, 2, MaskKind::Full),
            convolve_full(l2, dense, 2)
        );
    }

    #[test]
    fn border_cells_do_not_wrap() {
        // A cell at coordinate 0: its lower neighbor is off-grid, not the
        // opposite border.
        let ds = Dataset::from_rows(&[[0.01, 0.01], [0.99, 0.99]]).unwrap();
        let tree = CountingTree::build(&ds, 4).unwrap();
        let l2 = tree.level(2);
        let low = l2.find(&[0, 0]).unwrap();
        // The far cell (3,3) must not leak into (0,0)'s neighborhood.
        assert_eq!(convolve_face_only(l2, low, 2), 4);
        assert_eq!(convolve_full(l2, low, 2), 8);
    }
}
