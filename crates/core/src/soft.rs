//! Soft clustering — the extension introduced by the journal version of
//! this work (Halite, TKDE 2013).
//!
//! MrCC's hard labeling (Algorithm 3) assigns each point to at most one
//! correlation cluster. Real data often has genuinely overlapping
//! structure: a point inside the regions of two clusters is better
//! described by *membership weights* than by a forced choice. The soft
//! assignment here follows the Halite\_s idea: every cluster whose region
//! covers a point contributes a membership proportional to the cluster's
//! local density at the point — the density of the densest member β-box
//! that contains it — and weights are normalized per point.

use mrcc_common::Dataset;

use crate::result::MrCCResult;

/// Per-point soft memberships: for each point, the list of
/// `(cluster index, weight)` pairs, weights summing to 1 (empty for noise).
#[derive(Debug, Clone)]
pub struct SoftClustering {
    memberships: Vec<Vec<(usize, f64)>>,
    n_clusters: usize,
}

impl SoftClustering {
    /// Memberships of point `i`, sorted by descending weight.
    ///
    /// # Panics
    /// Panics when `i` is not a valid point index.
    pub fn memberships(&self, i: usize) -> &[(usize, f64)] {
        &self.memberships[i] // xtask-allow: indexing — documented `# Panics` contract
    }

    /// Number of points.
    pub fn n_points(&self) -> usize {
        self.memberships.len()
    }

    /// Number of clusters weights may refer to.
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// Points assigned to more than one cluster.
    pub fn n_shared_points(&self) -> usize {
        self.memberships.iter().filter(|m| m.len() > 1).count()
    }

    /// Hardens to a label vector: the strongest membership wins, noise
    /// stays [`mrcc_common::NOISE`].
    pub fn harden(&self) -> Vec<i32> {
        self.memberships
            .iter()
            .map(|m| m.first().map_or(mrcc_common::NOISE, |&(k, _)| k as i32))
            .collect()
    }
}

impl MrCCResult {
    /// Computes Halite-style soft memberships for every dataset point.
    ///
    /// A point receives one candidate weight per correlation cluster whose
    /// member β-boxes contain it: the highest *density* (points per unit of
    /// relevant-subspace volume, normalized per axis) among those boxes.
    /// Candidate weights are then normalized to sum to 1 per point. Points
    /// covered by no cluster have no memberships (noise), and hard labels
    /// from [`SoftClustering::harden`] agree with the one-cluster case of
    /// Algorithm 3.
    ///
    /// Cost: `O(η · c)` where `c` is the mean containing-box count per
    /// point — both the per-β populations and each point's containing-box
    /// set come from the fit's [`crate::MergeCache`], so this performs
    /// **zero** dataset scans (a regression test pins
    /// [`crate::dataset_scan_count`] at +0 across this call).
    ///
    /// # Panics
    /// Panics when `dataset` is not the dataset this result was fitted on
    /// (length mismatch).
    pub fn soft_memberships(&self, dataset: &Dataset) -> SoftClustering {
        assert_eq!(
            dataset.len(),
            self.clustering.n_points(),
            "soft_memberships needs the dataset the result was fitted on"
        );

        // Box densities: points inside / relevant-subspace volume. Work in
        // log space per axis to keep tiny volumes stable. Counts come from
        // the merge pass, not a re-scan.
        let box_density: Vec<f64> = self
            .beta_clusters
            .iter()
            .enumerate()
            .map(|(m, b)| {
                let mut log_volume = 0.0f64;
                for j in b.axes.iter() {
                    log_volume += b.bounds.extent(j).max(1e-12).ln();
                }
                // Normalize per relevant axis so clusters of different
                // dimensionality compare on the same footing.
                let delta = b.axes.count().max(1) as f64;
                (self.merge_cache.box_count(m).max(1) as f64).ln() - log_volume / delta
            })
            .collect();

        // Map each β-cluster to its correlation cluster for the candidate
        // grouping below (every β belongs to exactly one cluster).
        let mut cluster_of: Vec<usize> = vec![0; self.beta_clusters.len()];
        for (k, cluster) in self.clusters.iter().enumerate() {
            for &m in &cluster.beta_indices {
                cluster_of[m] = k; // xtask-allow: indexing — members index β-clusters
            }
        }

        let mut memberships: Vec<Vec<(usize, f64)>> = Vec::with_capacity(dataset.len());
        for i in 0..dataset.len() {
            // The cached containing-box list is ascending by β index, so a
            // stable sort by cluster reproduces the old path exactly: per
            // cluster, densities are folded in member (β-index) order, and
            // candidate clusters emerge in ascending cluster order.
            let mut hits: Vec<(usize, f64)> = self
                .merge_cache
                .containing(i)
                .iter()
                // xtask-allow: indexing — containment ids index β-clusters
                .map(|&m| (cluster_of[m as usize], box_density[m as usize]))
                .collect();
            hits.sort_by_key(|&(k, _)| k);
            let mut candidates: Vec<(usize, f64)> = Vec::new();
            for &(k, d) in &hits {
                match candidates.last_mut() {
                    Some((last, best)) if *last == k => {
                        // Same tie behaviour as `Iterator::max_by`: a later
                        // equal value replaces the earlier one.
                        if d.partial_cmp(best)
                            .expect("box densities are finite by construction invariant")
                            .is_ge()
                        {
                            *best = d;
                        }
                    }
                    _ => candidates.push((k, d)),
                }
            }
            if candidates.is_empty() {
                memberships.push(Vec::new());
                continue;
            }
            // Softmax over log-density scores → normalized weights.
            let max_score = candidates
                .iter()
                .map(|&(_, s)| s)
                .fold(f64::NEG_INFINITY, f64::max);
            let mut weights: Vec<(usize, f64)> = candidates
                .into_iter()
                .map(|(k, s)| (k, (s - max_score).exp()))
                .collect();
            let total: f64 = weights.iter().map(|&(_, w)| w).sum();
            for (_, w) in &mut weights {
                *w /= total;
            }
            weights.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("softmax weights are finite and nonnegative invariant")
            });
            memberships.push(weights);
        }
        SoftClustering {
            memberships,
            n_clusters: self.clusters.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MrCC;

    /// Two tight blobs plus a bridge point region between them.
    fn overlapping_blobs() -> Dataset {
        let mut state = 0x50F7u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut rows = Vec::new();
        for _ in 0..800 {
            rows.push([0.30 + 0.04 * (next() - 0.5), 0.30 + 0.04 * (next() - 0.5)]);
            rows.push([0.42 + 0.04 * (next() - 0.5), 0.42 + 0.04 * (next() - 0.5)]);
        }
        for _ in 0..200 {
            rows.push([next() * 0.99, next() * 0.99]);
        }
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn weights_normalize_and_sort() {
        let ds = overlapping_blobs();
        let result = MrCC::default().fit(&ds).unwrap();
        let soft = result.soft_memberships(&ds);
        assert_eq!(soft.n_points(), ds.len());
        for i in 0..soft.n_points() {
            let m = soft.memberships(i);
            if m.is_empty() {
                continue;
            }
            let total: f64 = m.iter().map(|&(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9, "point {i}: weights sum {total}");
            for w in m.windows(2) {
                assert!(w[0].1 >= w[1].1, "point {i}: not sorted");
            }
            for &(k, w) in m {
                assert!(k < soft.n_clusters());
                assert!(w > 0.0 && w <= 1.0);
            }
        }
    }

    #[test]
    fn hardened_labels_cover_the_hard_clustering() {
        // Every point the hard labeling assigns must also get a soft
        // membership in some cluster (the hard rule is "inside a member
        // box", which is exactly the soft candidate rule).
        let ds = overlapping_blobs();
        let result = MrCC::default().fit(&ds).unwrap();
        let soft = result.soft_memberships(&ds);
        let hard = result.clustering.labels();
        let soft_hard = soft.harden();
        for i in 0..ds.len() {
            if hard[i] >= 0 {
                assert!(soft_hard[i] >= 0, "point {i} lost by soft assignment");
            } else {
                assert_eq!(soft_hard[i], mrcc_common::NOISE);
            }
        }
    }

    #[test]
    fn noise_points_have_no_membership() {
        let ds = overlapping_blobs();
        let result = MrCC::default().fit(&ds).unwrap();
        let soft = result.soft_memberships(&ds);
        for &i in result.clustering.noise().iter().take(50) {
            assert!(
                soft.memberships(i).is_empty(),
                "noise point {i} got weights"
            );
        }
    }

    #[test]
    fn one_counting_pass_per_fit_and_none_per_soft_call() {
        // The single-scan contract, pinned end to end: the whole merge
        // phase of a fit reads the dataset exactly once, and
        // soft_memberships — which used to redo the per-β counting scans —
        // now reads it zero times.
        let ds = overlapping_blobs();
        let before = crate::merge::dataset_scan_count();
        let result = MrCC::default().fit(&ds).unwrap();
        assert_eq!(
            crate::merge::dataset_scan_count() - before,
            1,
            "fit must perform exactly one merge-phase dataset pass"
        );
        let before = crate::merge::dataset_scan_count();
        let soft = result.soft_memberships(&ds);
        let _ = result.soft_memberships(&ds);
        assert_eq!(
            crate::merge::dataset_scan_count() - before,
            0,
            "soft_memberships must reuse the merge cache, not re-scan"
        );
        assert!(soft.n_points() == ds.len());
    }

    #[test]
    #[should_panic(expected = "fitted on")]
    fn rejects_a_different_dataset() {
        let ds = overlapping_blobs();
        let result = MrCC::default().fit(&ds).unwrap();
        let other = Dataset::from_rows(&[[0.5, 0.5]]).unwrap();
        let _ = result.soft_memberships(&other);
    }
}
