#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! **MrCC — Multi-resolution Correlation Clustering** (Cordeiro, Traina,
//! Faloutsos, Traina Jr., ICDE 2010).
//!
//! MrCC finds *correlation clusters* — clusters that exist only in subspaces
//! of a multi-dimensional space — together with the axes relevant to each
//! cluster, in time and memory linear in the number of points. It never
//! computes a distance; instead it
//!
//! 1. builds a [Counting-tree](mrcc_counting_tree) over the data
//!    (Algorithm 1),
//! 2. convolves every resolution level with an integer Laplacian mask to
//!    locate density bumps, confirms each bump with a one-sided binomial
//!    test against a uniform null, and picks the bump's relevant axes with
//!    an MDL-tuned threshold — yielding **β-clusters** (Algorithm 2), and
//! 3. merges space-sharing β-clusters into final **correlation clusters**
//!    and labels every point, leaving the rest as noise (Algorithm 3).
//!
//! # Quickstart
//!
//! ```
//! use mrcc::{MrCC, MrCCConfig};
//! use mrcc_common::Dataset;
//!
//! // A toy dataset: a tight blob in axis 0 around 0.3, spread along axis 1.
//! let mut rows = Vec::new();
//! for i in 0..400 {
//!     let t = i as f64 / 400.0;
//!     rows.push([0.30 + 0.02 * (t - 0.5), t * 0.999]);
//! }
//! // Background noise.
//! for i in 0..100 {
//!     let t = i as f64 / 100.0;
//!     rows.push([(t * 7.31) % 1.0, (t * 3.17) % 1.0]);
//! }
//! let ds = Dataset::from_rows(&rows).unwrap();
//!
//! let result = MrCC::new(MrCCConfig::default()).fit(&ds).unwrap();
//! assert!(!result.clustering.is_empty());
//! // The cluster is correlated along axis e1 (index 0).
//! assert!(result.clusters[0].axes.contains(0));
//! ```

pub mod beta;
pub mod config;
pub mod convolution;
pub mod merge;
pub mod result;
pub mod search;
pub mod soft;

pub use beta::BetaCluster;
pub use config::{AxisSelection, MaskKind, MrCCConfig, MAX_THREADS};
pub use merge::{dataset_scan_count, CorrelationCluster, MergeCache};
pub use result::{FitStats, MrCCResult};
pub use soft::SoftClustering;

use mrcc_common::{Dataset, Result};
use mrcc_counting_tree::CountingTree;

/// The MrCC clustering method. Construct with a [`MrCCConfig`], then call
/// [`MrCC::fit`].
#[derive(Debug, Clone)]
pub struct MrCC {
    config: MrCCConfig,
}

impl MrCC {
    /// Creates the method with the given configuration.
    pub fn new(config: MrCCConfig) -> Self {
        MrCC { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &MrCCConfig {
        &self.config
    }

    /// Runs the full three-phase method over a unit-normalized dataset.
    ///
    /// With `config.threads > 1` all three phases run on that many worker
    /// threads (sharded tree build, parallel convolution scan, chunked
    /// merge scan); the result is bit-for-bit identical to a serial fit —
    /// the thread count is purely a speed knob (see DESIGN.md, "Parallel
    /// execution").
    ///
    /// # Errors
    /// Propagates configuration validation and Counting-tree construction
    /// errors (e.g. data outside `[0,1)` — normalize first, or use
    /// [`MrCC::fit_normalizing`]).
    pub fn fit(&self, dataset: &Dataset) -> Result<MrCCResult> {
        self.config.validate()?;
        let build_start = std::time::Instant::now();
        let mut tree =
            CountingTree::build_sharded(dataset, self.config.resolutions, self.config.threads)?;
        let tree_build = build_start.elapsed();
        let tree_memory = tree.memory_bytes();

        let search_start = std::time::Instant::now();
        let betas = search::find_beta_clusters(&mut tree, &self.config);
        let beta_search = search_start.elapsed();

        let merge_start = std::time::Instant::now();
        let (clusters, clustering, merge_cache) =
            merge::build_correlation_clusters(dataset, &betas, self.config.threads);
        let merge_phase = merge_start.elapsed();

        Ok(MrCCResult {
            clustering,
            clusters,
            beta_clusters: betas,
            merge_cache,
            stats: FitStats {
                tree_memory_bytes: tree_memory,
                tree_build,
                beta_search,
                merge_phase,
            },
        })
    }

    /// Convenience wrapper that clones the dataset, min–max normalizes it
    /// into `[0,1)^d` and fits. Cluster bounds are reported in normalized
    /// coordinates.
    pub fn fit_normalizing(&self, dataset: &Dataset) -> Result<MrCCResult> {
        if dataset.is_unit_normalized() {
            return self.fit(dataset);
        }
        let mut ds = dataset.clone();
        ds.normalize_unit()?;
        self.fit(&ds)
    }
}

impl Default for MrCC {
    fn default() -> Self {
        MrCC::new(MrCCConfig::default())
    }
}
