//! Phase three: building correlation clusters (Algorithm 3).
//!
//! β-clusters sharing space in the full `d`-dimensional data space are
//! transitively grouped into one correlation cluster; the cluster's relevant
//! axes are those relevant to *any* member β-cluster. Points are then labeled
//! after the regions covered by the correlation clusters — a point belongs to
//! cluster `k` iff it falls inside the box of some member β-cluster — and
//! everything else is noise. Because distinct correlation clusters never
//! share space, the labeling is unambiguous and the clusters partition the
//! clustered points (Definition 2's disjointness).

use mrcc_common::{AxisMask, BoundingBox, Dataset, SubspaceCluster, SubspaceClustering};

use crate::beta::BetaCluster;

/// Fraction of the smaller box's points that must sit in the shared region
/// for two β-clusters to merge (see `build_correlation_clusters`).
const JUNCTION_DENSITY: f64 = 0.20;

/// A final correlation cluster `δ_γC_k = (δ_γE_k, δ_γS_k)`.
#[derive(Debug, Clone)]
pub struct CorrelationCluster {
    /// Relevant axes: union over member β-clusters.
    pub axes: AxisMask,
    /// Indices (into the β-cluster list) of the members, ascending.
    pub beta_indices: Vec<usize>,
    /// Bounding hull of the member boxes (reporting only; membership uses
    /// the exact union of member boxes).
    pub hull: BoundingBox,
    /// Number of points labeled into this cluster.
    pub size: usize,
}

/// Minimal union–find with path halving and union by size.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    // Indexing invariant: `parent` and `size` are length-`n` arrays whose
    // entries are always indices `< n` (`new` seeds them that way and `union`
    // only stores roots returned by `find`), so element access cannot go out
    // of bounds for any `x < n`.
    fn find(&mut self, mut x: usize) -> usize {
        // xtask-allow: indexing — see invariant above
        while self.parent[x] != x {
            // xtask-allow: indexing — see invariant above
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x]; // xtask-allow: indexing — see invariant above
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // xtask-allow: indexing — see invariant above
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra; // xtask-allow: indexing — see invariant above
        self.size[ra] += self.size[rb]; // xtask-allow: indexing — see invariant above
    }
}

/// Groups β-clusters into correlation clusters and labels every dataset
/// point. Returns the clusters (ordered by smallest member β index) and the
/// resulting partition.
pub fn build_correlation_clusters(
    dataset: &Dataset,
    betas: &[BetaCluster],
) -> (Vec<CorrelationCluster>, SubspaceClustering) {
    let dims = dataset.dims();
    if betas.is_empty() {
        return (Vec::new(), SubspaceClustering::empty(dataset.len(), dims));
    }

    // Pairwise share-space → union (Algorithm 3, lines 1–5), with a
    // junction-density check: two β-boxes only describe the same cluster
    // when the region they share actually holds a meaningful slice of the
    // smaller box's points. Fragments of one (possibly rotated) cluster meet
    // where the cluster is — dense junctions — while boxes of *different*
    // clusters that happen to cross geometrically meet in mostly-empty
    // space (a coarse-level box spans `[0,1]` on its irrelevant axes, so
    // such crossings are unavoidable). See DESIGN.md.
    let box_counts: Vec<usize> = betas
        .iter()
        .map(|b| dataset.iter().filter(|p| b.bounds.contains(p)).count())
        .collect();
    let mut uf = UnionFind::new(betas.len());
    for (i, (beta_i, &count_i)) in betas.iter().zip(&box_counts).enumerate() {
        let rest = betas.iter().zip(&box_counts).enumerate().skip(i + 1);
        for (j, (beta_j, &count_j)) in rest {
            if !beta_i.shares_space(beta_j) {
                continue;
            }
            let bi = &beta_i.bounds;
            let bj = &beta_j.bounds;
            let junction = dataset
                .iter()
                .filter(|p| bi.contains(p) && bj.contains(p))
                .count();
            let needed = (count_i.min(count_j) as f64 * JUNCTION_DENSITY).ceil();
            if junction as f64 >= needed.max(1.0) {
                uf.union(i, j);
            }
        }
    }

    // Collect groups in deterministic order (by smallest member index).
    let mut root_to_group: Vec<Option<usize>> = vec![None; betas.len()];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    // `find` returns an index < betas.len() and group ids are only handed out
    // by the push below, so every lookup in this loop stays in bounds.
    for i in 0..betas.len() {
        let root = uf.find(i);
        // xtask-allow: indexing — see invariant above
        match root_to_group[root] {
            Some(g) => groups[g].push(i), // xtask-allow: indexing — see invariant above
            None => {
                // xtask-allow: indexing — see invariant above
                root_to_group[root] = Some(groups.len());
                groups.push(vec![i]);
            }
        }
    }

    // Relevant axes = union over members (lines 6–8); hull for reporting.
    // Every group is non-empty and its members are indices into `betas`.
    let mut clusters: Vec<CorrelationCluster> = groups
        .iter()
        .map(|members| {
            let mut axes = AxisMask::empty(dims);
            // xtask-allow: indexing — see invariant above
            let mut hull = betas[members[0]].bounds.clone();
            for &m in members {
                axes = axes.union(&betas[m].axes); // xtask-allow: indexing
                hull = hull.hull(&betas[m].bounds); // xtask-allow: indexing
            }
            CorrelationCluster {
                axes,
                beta_indices: members.clone(),
                hull,
                size: 0,
            }
        })
        .collect();

    // Label points after the covered regions; first match wins (regions of
    // distinct correlation clusters are disjoint up to shared boundaries).
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); clusters.len()];
    for (i, p) in dataset.iter().enumerate() {
        'point: for (cluster, bucket) in clusters.iter().zip(members.iter_mut()) {
            for &m in &cluster.beta_indices {
                // xtask-allow: indexing — `beta_indices` index `betas`
                if betas[m].bounds.contains(p) {
                    bucket.push(i);
                    break 'point;
                }
            }
        }
    }
    for (cluster, m) in clusters.iter_mut().zip(&members) {
        cluster.size = m.len();
    }

    let subspace_clusters: Vec<SubspaceCluster> = clusters
        .iter()
        .zip(members)
        .map(|(c, pts)| SubspaceCluster::new(pts, c.axes))
        .collect();
    let clustering = SubspaceClustering::new(dataset.len(), dims, subspace_clusters);
    (clusters, clustering)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beta(lo: &[f64], hi: &[f64], axes: &[usize]) -> BetaCluster {
        let d = lo.len();
        BetaCluster {
            bounds: BoundingBox::new(lo.to_vec(), hi.to_vec()),
            axes: AxisMask::from_axes(d, axes.iter().copied()),
            level: 2,
            center_coords: vec![0; d],
            axis_stats: Vec::new(),
            relevance_threshold: 50.0,
        }
    }

    fn grid_dataset() -> Dataset {
        let mut rows = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                rows.push([i as f64 / 10.0, j as f64 / 10.0]);
            }
        }
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn no_betas_all_noise() {
        let ds = grid_dataset();
        let (clusters, clustering) = build_correlation_clusters(&ds, &[]);
        assert!(clusters.is_empty());
        assert_eq!(clustering.noise().len(), ds.len());
    }

    #[test]
    fn overlapping_betas_merge() {
        let ds = grid_dataset();
        let betas = vec![
            beta(&[0.0, 0.0], &[0.3, 0.3], &[0]),
            beta(&[0.15, 0.15], &[0.5, 0.5], &[0, 1]), // overlaps + shares e1
            beta(&[0.8, 0.8], &[0.95, 0.95], &[0, 1]), // separate
        ];
        let (clusters, clustering) = build_correlation_clusters(&ds, &betas);
        assert_eq!(clusters.len(), 2);
        // Merged cluster carries the union of relevant axes.
        assert_eq!(clusters[0].beta_indices, vec![0, 1]);
        assert_eq!(clusters[0].axes.count(), 2);
        assert_eq!(clusters[1].beta_indices, vec![2]);
        assert_eq!(clustering.len(), 2);
    }

    #[test]
    fn transitive_merge_through_a_chain() {
        let ds = grid_dataset();
        // a–b overlap, b–c overlap, a–c do not: all three must merge.
        let betas = vec![
            beta(&[0.0, 0.0], &[0.2, 0.2], &[0]),
            beta(&[0.05, 0.05], &[0.45, 0.45], &[0]),
            beta(&[0.3, 0.3], &[0.6, 0.6], &[0, 1]),
        ];
        let (clusters, _) = build_correlation_clusters(&ds, &betas);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].beta_indices, vec![0, 1, 2]);
    }

    #[test]
    fn points_label_after_member_boxes() {
        let ds = grid_dataset();
        let betas = vec![beta(&[0.0, 0.0], &[0.25, 0.25], &[0, 1])];
        let (clusters, clustering) = build_correlation_clusters(&ds, &betas);
        // Points with both coordinates in {0.0, 0.1, 0.2} → 9 points.
        assert_eq!(clusters[0].size, 9);
        assert_eq!(clustering.clusters()[0].len(), 9);
        assert_eq!(clustering.noise().len(), 100 - 9);
    }

    #[test]
    fn touching_boxes_stay_separate_and_labels_stay_disjoint() {
        let ds = grid_dataset();
        // Boxes sharing only a face have zero-volume intersection → two
        // clusters; the boundary point goes to the first match and is never
        // double-assigned.
        let betas = vec![
            beta(&[0.0, 0.0], &[0.5, 0.5], &[0]),
            beta(&[0.5, 0.0], &[0.9, 0.5], &[0]),
        ];
        let (clusters, clustering) = build_correlation_clusters(&ds, &betas);
        assert_eq!(clusters.len(), 2);
        let total: usize = clustering.clusters().iter().map(SubspaceCluster::len).sum();
        assert_eq!(total + clustering.noise().len(), ds.len());
    }

    #[test]
    fn hull_covers_members() {
        let ds = grid_dataset();
        let betas = vec![
            beta(&[0.0, 0.0], &[0.2, 0.2], &[0]),
            beta(&[0.1, 0.1], &[0.5, 0.6], &[0, 1]),
        ];
        let (clusters, _) = build_correlation_clusters(&ds, &betas);
        let h = &clusters[0].hull;
        assert_eq!(h.lower(0), 0.0);
        assert_eq!(h.upper(1), 0.6);
    }
}
