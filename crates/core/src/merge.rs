//! Phase three: building correlation clusters (Algorithm 3).
//!
//! β-clusters sharing space in the full `d`-dimensional data space are
//! transitively grouped into one correlation cluster; the cluster's relevant
//! axes are those relevant to *any* member β-cluster. Points are then labeled
//! after the regions covered by the correlation clusters — a point belongs to
//! cluster `k` iff it falls inside the box of some member β-cluster — and
//! everything else is noise. Because distinct correlation clusters never
//! share space, the labeling is unambiguous and the clusters partition the
//! clustered points (Definition 2's disjointness).
//!
//! # Single-scan engine
//!
//! The paper's headline bound (Sec. IV) is time linear in the number of
//! points `η`. A naive phase three breaks it: one full-dataset containment
//! scan per β-cluster for the box populations, another per overlapping
//! β-pair for the junction-density numerators, and a third pass for
//! labeling — `O(β²·η·d)` overall. This module instead performs **exactly
//! one dataset pass**: a [`BoxIndex`] (per-axis interval stabbing over the
//! β-bounds) maps each point to its containing-box set, from which the pass
//! simultaneously accumulates per-β point counts, sparse pairwise
//! co-containment counts and the per-point containment lists. Union–find,
//! axis union, hulls and point labels are all derived from that recorded
//! pass with zero further dataset scans, and the per-β counts plus per-point
//! containment are handed to the caller as a [`MergeCache`] so downstream
//! consumers (soft memberships) never re-scan either. With `threads > 1`
//! the pass fans out over contiguous point chunks claimed from an atomic
//! work queue and the per-chunk partials are reduced in ascending chunk
//! order — all accumulators are either additive integers or per-point
//! records, so the result is bit-identical to the serial pass.
//!
//! The superseded multi-scan implementation is retained behind
//! `#[cfg(any(test, feature = "merge-oracle"))]` as
//! [`build_correlation_clusters_oracle`], the equivalence oracle the test
//! layer checks the engine against.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use mrcc_common::parallel::{chunk_ranges, effective_workers};
use mrcc_common::{AxisMask, BoundingBox, BoxIndex, Dataset, SubspaceCluster, SubspaceClustering};

use crate::beta::BetaCluster;

/// Fraction of the smaller box's points that must sit in the shared region
/// for two β-clusters to merge (see `build_correlation_clusters`).
const JUNCTION_DENSITY: f64 = 0.20;

/// Points per work unit of the parallel merge scan: large enough that the
/// queue's atomic traffic is noise next to the stabbing queries, small
/// enough to load-balance datasets whose dense regions cluster in index
/// order.
const MERGE_CHUNK: usize = 4096;

thread_local! {
    /// Debug scan counter, see [`dataset_scan_count`].
    static DATASET_SCANS: Cell<u64> = const { Cell::new(0) };
}

/// Debug instrumentation: how many full-dataset counting passes the merge /
/// soft-labeling layer has performed **on the calling thread** since it
/// started. The single-scan contract says one fit increments this by
/// exactly 1 during phase three and `soft_memberships` by 0; regression
/// tests pin both. Thread-local so concurrently running tests cannot
/// observe each other's passes.
#[must_use]
pub fn dataset_scan_count() -> u64 {
    DATASET_SCANS.with(Cell::get)
}

/// Records one full-dataset counting pass (see [`dataset_scan_count`]).
fn note_dataset_scan() {
    DATASET_SCANS.with(|c| c.set(c.get() + 1));
}

/// A final correlation cluster `δ_γC_k = (δ_γE_k, δ_γS_k)`.
#[derive(Debug, Clone)]
pub struct CorrelationCluster {
    /// Relevant axes: union over member β-clusters.
    pub axes: AxisMask,
    /// Indices (into the β-cluster list) of the members, ascending.
    pub beta_indices: Vec<usize>,
    /// Bounding hull of the member boxes (reporting only; membership uses
    /// the exact union of member boxes).
    pub hull: BoundingBox,
    /// Number of points labeled into this cluster.
    pub size: usize,
}

/// The artifacts of the merge phase's single dataset pass, cached on
/// [`crate::MrCCResult`] so later consumers (notably
/// [`crate::MrCCResult::soft_memberships`]) reuse them instead of
/// re-scanning the dataset.
///
/// Holds the per-β-cluster point counts and, in compressed sparse row
/// form, each point's containing-box set (ascending β indices per point).
#[derive(Debug, Clone)]
pub struct MergeCache {
    /// `box_counts[k]`: points inside β-cluster `k`'s box.
    box_counts: Vec<usize>,
    /// CSR offsets into `ids`: point `i`'s containment list is
    /// `ids[offsets[i]..offsets[i + 1]]`. Length `η + 1`.
    offsets: Vec<usize>,
    /// Concatenated containing-box ids, ascending within each point.
    ids: Vec<u32>,
}

impl MergeCache {
    /// An empty cache for `n_points` points and zero β-clusters (the
    /// no-β-clusters fit; every containment list is empty).
    #[must_use]
    pub fn empty(n_points: usize) -> Self {
        MergeCache {
            box_counts: Vec::new(),
            offsets: vec![0; n_points + 1],
            ids: Vec::new(),
        }
    }

    /// Number of points the cache covers.
    #[must_use]
    pub fn n_points(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of β-cluster boxes the cache covers.
    #[must_use]
    pub fn n_boxes(&self) -> usize {
        self.box_counts.len()
    }

    /// Points inside β-cluster `k`'s box (the merge pass's exact count).
    ///
    /// # Panics
    /// Panics when `k` is not a valid β-cluster index.
    #[must_use]
    pub fn box_count(&self, k: usize) -> usize {
        self.box_counts[k] // xtask-allow: indexing — documented `# Panics` contract
    }

    /// The β-clusters whose boxes contain point `i`, ascending.
    ///
    /// # Panics
    /// Panics when `i` is not a valid point index.
    #[must_use]
    pub fn containing(&self, i: usize) -> &[u32] {
        // xtask-allow: indexing — documented `# Panics` contract
        &self.ids[self.offsets[i]..self.offsets[i + 1]]
    }
}

/// Everything the single pass produces: the cacheable artifacts plus the
/// sparse junction numerators (only needed transiently by the merge).
struct ScanResult {
    cache: MergeCache,
    /// `pair_counts[(a, b)]` with `a < b`: points inside both boxes.
    pair_counts: HashMap<(u32, u32), usize>,
}

/// One chunk's partial scan: everything is either additive (counts) or a
/// per-point record (containment), so folding chunks in ascending chunk
/// order reproduces the serial pass bit for bit.
struct ChunkScan {
    chunk: usize,
    box_counts: Vec<usize>,
    /// Containment list lengths for each point of the chunk, in order.
    list_lens: Vec<u32>,
    /// Concatenated containment ids for the chunk's points.
    ids: Vec<u32>,
    pair_counts: HashMap<(u32, u32), usize>,
}

/// Accumulates one point's containment list into the chunk partial.
fn record_point(buf: &[u32], acc: &mut ChunkScan) {
    for (pos, &a) in buf.iter().enumerate() {
        // xtask-allow: indexing — ids are minted from β indices < betas.len()
        acc.box_counts[a as usize] += 1;
        for &b in &buf[pos + 1..] {
            // `buf` is ascending, so (a, b) is already ordered.
            *acc.pair_counts.entry((a, b)).or_insert(0) += 1;
        }
    }
    acc.ids.extend_from_slice(buf);
    acc.list_lens
        .push(u32::try_from(buf.len()).expect("β count fits in u32 by construction invariant"));
}

/// Scans one contiguous point range against the index.
fn scan_chunk(
    dataset: &Dataset,
    index: &BoxIndex,
    chunk: usize,
    range: std::ops::Range<usize>,
) -> ChunkScan {
    let mut acc = ChunkScan {
        chunk,
        box_counts: vec![0; index.n_boxes()],
        list_lens: Vec::with_capacity(range.len()),
        ids: Vec::new(),
        pair_counts: HashMap::new(),
    };
    let mut buf: Vec<u32> = Vec::new();
    for i in range {
        index.containing(dataset.point(i), &mut buf);
        record_point(&buf, &mut acc);
    }
    acc
}

/// The single dataset pass: builds the β-box index, then walks every point
/// exactly once (chunk-parallel when `threads > 1`, reduced in ascending
/// chunk order so the output is bit-identical to the serial walk).
fn scan_dataset(dataset: &Dataset, betas: &[BetaCluster], threads: usize) -> ScanResult {
    note_dataset_scan();
    let boxes: Vec<BoundingBox> = betas.iter().map(|b| b.bounds.clone()).collect();
    let index = BoxIndex::new(&boxes);
    let n = dataset.len();
    let chunks = chunk_ranges(n, MERGE_CHUNK);
    let workers = effective_workers(threads, chunks.len());

    let mut partials: Vec<ChunkScan> = if workers <= 1 {
        chunks
            .iter()
            .enumerate()
            .map(|(c, r)| scan_chunk(dataset, &index, c, r.clone()))
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let mut collected: Vec<ChunkScan> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<ChunkScan> = Vec::new();
                        loop {
                            let claimed = next.fetch_add(1, Ordering::Relaxed);
                            let Some(range) = chunks.get(claimed) else {
                                break;
                            };
                            local.push(scan_chunk(dataset, &index, claimed, range.clone()));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| match h.join() {
                    Ok(local) => local,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        });
        collected.sort_by_key(|p| p.chunk);
        collected
    };

    // Fold partials in ascending chunk order: counts are additive, the CSR
    // segments concatenate in point order.
    let mut cache = MergeCache {
        box_counts: vec![0; betas.len()],
        offsets: Vec::with_capacity(n + 1),
        ids: Vec::new(),
    };
    cache.offsets.push(0);
    let mut pair_counts: HashMap<(u32, u32), usize> = HashMap::new();
    for partial in &mut partials {
        for (total, part) in cache.box_counts.iter_mut().zip(&partial.box_counts) {
            *total += part;
        }
        for (&pair, &count) in &partial.pair_counts {
            *pair_counts.entry(pair).or_insert(0) += count;
        }
        cache.ids.append(&mut partial.ids);
        let mut end = *cache
            .offsets
            .last()
            .expect("offsets starts non-empty by construction invariant");
        for &len in &partial.list_lens {
            end += len as usize;
            cache.offsets.push(end);
        }
    }
    ScanResult { cache, pair_counts }
}

/// Minimal union–find with path halving and union by size.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    // Indexing invariant: `parent` and `size` are length-`n` arrays whose
    // entries are always indices `< n` (`new` seeds them that way and `union`
    // only stores roots returned by `find`), so element access cannot go out
    // of bounds for any `x < n`.
    fn find(&mut self, mut x: usize) -> usize {
        // xtask-allow: indexing — see invariant above
        while self.parent[x] != x {
            // xtask-allow: indexing — see invariant above
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x]; // xtask-allow: indexing — see invariant above
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // xtask-allow: indexing — see invariant above
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra; // xtask-allow: indexing — see invariant above
        self.size[ra] += self.size[rb]; // xtask-allow: indexing — see invariant above
    }
}

/// Collects union–find groups in deterministic order (by smallest member
/// index), returning the member lists and each β-cluster's group id.
fn collect_groups(uf: &mut UnionFind, n: usize) -> (Vec<Vec<usize>>, Vec<usize>) {
    let mut root_to_group: Vec<Option<usize>> = vec![None; n];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut group_of: Vec<usize> = Vec::with_capacity(n);
    // `find` returns an index < n and group ids are only handed out by the
    // push below, so every lookup in this loop stays in bounds.
    for i in 0..n {
        let root = uf.find(i);
        // xtask-allow: indexing — see invariant above
        let g = match root_to_group[root] {
            Some(g) => {
                groups[g].push(i); // xtask-allow: indexing — see invariant above
                g
            }
            None => {
                let g = groups.len();
                root_to_group[root] = Some(g); // xtask-allow: indexing — see invariant above
                groups.push(vec![i]);
                g
            }
        };
        group_of.push(g);
    }
    (groups, group_of)
}

/// Builds the cluster descriptions (axis unions and hulls) from the groups.
/// Every group is non-empty and its members are indices into `betas`.
fn describe_groups(
    groups: &[Vec<usize>],
    betas: &[BetaCluster],
    dims: usize,
) -> Vec<CorrelationCluster> {
    groups
        .iter()
        .map(|members| {
            let mut axes = AxisMask::empty(dims);
            // xtask-allow: indexing — see invariant above
            let mut hull = betas[members[0]].bounds.clone();
            for &m in members {
                axes = axes.union(&betas[m].axes); // xtask-allow: indexing
                hull = hull.hull(&betas[m].bounds); // xtask-allow: indexing
            }
            CorrelationCluster {
                axes,
                beta_indices: members.clone(),
                hull,
                size: 0,
            }
        })
        .collect()
}

/// Groups β-clusters into correlation clusters and labels every dataset
/// point, using **one** dataset pass (see the module docs). Returns the
/// clusters (ordered by smallest member β index), the resulting partition,
/// and the [`MergeCache`] of reusable scan artifacts.
///
/// `threads` parallelizes the dataset pass (chunked work queue); the output
/// is bit-identical for every thread count.
pub fn build_correlation_clusters(
    dataset: &Dataset,
    betas: &[BetaCluster],
    threads: usize,
) -> (Vec<CorrelationCluster>, SubspaceClustering, MergeCache) {
    let dims = dataset.dims();
    if betas.is_empty() {
        return (
            Vec::new(),
            SubspaceClustering::empty(dataset.len(), dims),
            MergeCache::empty(dataset.len()),
        );
    }

    let ScanResult { cache, pair_counts } = scan_dataset(dataset, betas, threads);

    // Pairwise share-space → union (Algorithm 3, lines 1–5), with a
    // junction-density check: two β-boxes only describe the same cluster
    // when the region they share actually holds a meaningful slice of the
    // smaller box's points. Fragments of one (possibly rotated) cluster meet
    // where the cluster is — dense junctions — while boxes of *different*
    // clusters that happen to cross geometrically meet in mostly-empty
    // space (a coarse-level box spans `[0,1]` on its irrelevant axes, so
    // such crossings are unavoidable). See DESIGN.md. The junction counts
    // come from the recorded pass; no β-pair ever re-reads the dataset.
    let mut uf = UnionFind::new(betas.len());
    for (i, beta_i) in betas.iter().enumerate() {
        for (j, beta_j) in betas.iter().enumerate().skip(i + 1) {
            if !beta_i.shares_space(beta_j) {
                continue;
            }
            let key = (
                u32::try_from(i).expect("β count fits in u32 by construction invariant"),
                u32::try_from(j).expect("β count fits in u32 by construction invariant"),
            );
            let junction = pair_counts.get(&key).copied().unwrap_or(0);
            let needed =
                (cache.box_count(i).min(cache.box_count(j)) as f64 * JUNCTION_DENSITY).ceil();
            if junction as f64 >= needed.max(1.0) {
                uf.union(i, j);
            }
        }
    }

    let (groups, group_of) = collect_groups(&mut uf, betas.len());
    let mut clusters = describe_groups(&groups, betas, dims);

    // Label points after the covered regions; the first matching cluster
    // wins (regions of distinct correlation clusters are disjoint up to
    // shared boundaries). "First cluster whose member box contains the
    // point" is exactly the smallest group id over the point's recorded
    // containing-box set — no containment is re-evaluated.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); clusters.len()];
    for i in 0..dataset.len() {
        // xtask-allow: indexing — containment ids index `betas`, groups index `members`
        if let Some(&g) = cache
            .containing(i)
            .iter()
            .map(|&b| &group_of[b as usize])
            .min()
        {
            members[g].push(i); // xtask-allow: indexing — see above
        }
    }
    for (cluster, m) in clusters.iter_mut().zip(&members) {
        cluster.size = m.len();
    }

    let subspace_clusters: Vec<SubspaceCluster> = clusters
        .iter()
        .zip(members)
        .map(|(c, pts)| SubspaceCluster::new(pts, c.axes))
        .collect();
    let clustering = SubspaceClustering::new(dataset.len(), dims, subspace_clusters);
    (clusters, clustering, cache)
}

/// The superseded `O(β²·η·d)` merge/labeling path, kept verbatim as the
/// equivalence oracle for the single-scan engine: one dataset scan per
/// β-cluster, one per overlapping pair, and a final labeling pass (every
/// pass ticks [`dataset_scan_count`]). Compiled only for tests and under
/// the `merge-oracle` feature (the `merge` bench binary asserts
/// bit-identity against it on every timed workload).
#[cfg(any(test, feature = "merge-oracle"))]
pub fn build_correlation_clusters_oracle(
    dataset: &Dataset,
    betas: &[BetaCluster],
) -> (Vec<CorrelationCluster>, SubspaceClustering) {
    let dims = dataset.dims();
    if betas.is_empty() {
        return (Vec::new(), SubspaceClustering::empty(dataset.len(), dims));
    }

    note_dataset_scan();
    let box_counts: Vec<usize> = betas
        .iter()
        .map(|b| dataset.iter().filter(|p| b.bounds.contains(p)).count())
        .collect();
    let mut uf = UnionFind::new(betas.len());
    for (i, (beta_i, &count_i)) in betas.iter().zip(&box_counts).enumerate() {
        let rest = betas.iter().zip(&box_counts).enumerate().skip(i + 1);
        for (j, (beta_j, &count_j)) in rest {
            if !beta_i.shares_space(beta_j) {
                continue;
            }
            note_dataset_scan();
            let bi = &beta_i.bounds;
            let bj = &beta_j.bounds;
            let junction = dataset
                .iter()
                .filter(|p| bi.contains(p) && bj.contains(p))
                .count();
            let needed = (count_i.min(count_j) as f64 * JUNCTION_DENSITY).ceil();
            if junction as f64 >= needed.max(1.0) {
                uf.union(i, j);
            }
        }
    }

    let (groups, _) = collect_groups(&mut uf, betas.len());
    let mut clusters = describe_groups(&groups, betas, dims);

    note_dataset_scan();
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); clusters.len()];
    for (i, p) in dataset.iter().enumerate() {
        'point: for (cluster, bucket) in clusters.iter().zip(members.iter_mut()) {
            for &m in &cluster.beta_indices {
                // xtask-allow: indexing — `beta_indices` index `betas`
                if betas[m].bounds.contains(p) {
                    bucket.push(i);
                    break 'point;
                }
            }
        }
    }
    for (cluster, m) in clusters.iter_mut().zip(&members) {
        cluster.size = m.len();
    }

    let subspace_clusters: Vec<SubspaceCluster> = clusters
        .iter()
        .zip(members)
        .map(|(c, pts)| SubspaceCluster::new(pts, c.axes))
        .collect();
    let clustering = SubspaceClustering::new(dataset.len(), dims, subspace_clusters);
    (clusters, clustering)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beta(lo: &[f64], hi: &[f64], axes: &[usize]) -> BetaCluster {
        let d = lo.len();
        BetaCluster {
            bounds: BoundingBox::new(lo.to_vec(), hi.to_vec()),
            axes: AxisMask::from_axes(d, axes.iter().copied()),
            level: 2,
            center_coords: vec![0; d],
            axis_stats: Vec::new(),
            relevance_threshold: 50.0,
        }
    }

    fn grid_dataset() -> Dataset {
        let mut rows = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                rows.push([i as f64 / 10.0, j as f64 / 10.0]);
            }
        }
        Dataset::from_rows(&rows).unwrap()
    }

    /// Asserts the single-scan engine and the quadratic oracle agree
    /// exactly on `ds`/`betas`, at 1 and 4 threads, and returns the
    /// engine's output.
    fn build_checked(
        ds: &Dataset,
        betas: &[BetaCluster],
    ) -> (Vec<CorrelationCluster>, SubspaceClustering, MergeCache) {
        let (oc, ocl) = build_correlation_clusters_oracle(ds, betas);
        for threads in [1usize, 4] {
            let (c, cl, cache) = build_correlation_clusters(ds, betas, threads);
            assert_eq!(cl.labels(), ocl.labels(), "labels diverge @ {threads}t");
            assert_eq!(c.len(), oc.len(), "cluster count diverges @ {threads}t");
            for (k, (a, b)) in c.iter().zip(&oc).enumerate() {
                assert_eq!(a.axes, b.axes, "γ {k} axes @ {threads}t");
                assert_eq!(a.beta_indices, b.beta_indices, "γ {k} members @ {threads}t");
                assert_eq!(a.size, b.size, "γ {k} size @ {threads}t");
                for j in 0..a.hull.dims() {
                    assert_eq!(a.hull.lower(j).to_bits(), b.hull.lower(j).to_bits());
                    assert_eq!(a.hull.upper(j).to_bits(), b.hull.upper(j).to_bits());
                }
            }
            assert_eq!(cache.n_points(), ds.len());
            assert_eq!(cache.n_boxes(), betas.len());
        }
        build_correlation_clusters(ds, betas, 1)
    }

    #[test]
    fn no_betas_all_noise() {
        let ds = grid_dataset();
        let (clusters, clustering, cache) = build_checked(&ds, &[]);
        assert!(clusters.is_empty());
        assert_eq!(clustering.noise().len(), ds.len());
        assert_eq!(cache.n_points(), ds.len());
        assert!(cache.containing(0).is_empty());
    }

    #[test]
    fn overlapping_betas_merge() {
        let ds = grid_dataset();
        let betas = vec![
            beta(&[0.0, 0.0], &[0.3, 0.3], &[0]),
            beta(&[0.15, 0.15], &[0.5, 0.5], &[0, 1]), // overlaps + shares e1
            beta(&[0.8, 0.8], &[0.95, 0.95], &[0, 1]), // separate
        ];
        let (clusters, clustering, _) = build_checked(&ds, &betas);
        assert_eq!(clusters.len(), 2);
        // Merged cluster carries the union of relevant axes.
        assert_eq!(clusters[0].beta_indices, vec![0, 1]);
        assert_eq!(clusters[0].axes.count(), 2);
        assert_eq!(clusters[1].beta_indices, vec![2]);
        assert_eq!(clustering.len(), 2);
    }

    #[test]
    fn transitive_merge_through_a_chain() {
        let ds = grid_dataset();
        // a–b overlap, b–c overlap, a–c do not: all three must merge.
        let betas = vec![
            beta(&[0.0, 0.0], &[0.2, 0.2], &[0]),
            beta(&[0.05, 0.05], &[0.45, 0.45], &[0]),
            beta(&[0.3, 0.3], &[0.6, 0.6], &[0, 1]),
        ];
        let (clusters, _, _) = build_checked(&ds, &betas);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].beta_indices, vec![0, 1, 2]);
    }

    #[test]
    fn points_label_after_member_boxes() {
        let ds = grid_dataset();
        let betas = vec![beta(&[0.0, 0.0], &[0.25, 0.25], &[0, 1])];
        let (clusters, clustering, cache) = build_checked(&ds, &betas);
        // Points with both coordinates in {0.0, 0.1, 0.2} → 9 points.
        assert_eq!(clusters[0].size, 9);
        assert_eq!(clustering.clusters()[0].len(), 9);
        assert_eq!(clustering.noise().len(), 100 - 9);
        assert_eq!(cache.box_count(0), 9);
    }

    #[test]
    fn touching_boxes_stay_separate_and_labels_stay_disjoint() {
        let ds = grid_dataset();
        // Boxes sharing only a face have zero-volume intersection → two
        // clusters; the boundary point goes to the first match and is never
        // double-assigned.
        let betas = vec![
            beta(&[0.0, 0.0], &[0.5, 0.5], &[0]),
            beta(&[0.5, 0.0], &[0.9, 0.5], &[0]),
        ];
        let (clusters, clustering, _) = build_checked(&ds, &betas);
        assert_eq!(clusters.len(), 2);
        let total: usize = clustering.clusters().iter().map(SubspaceCluster::len).sum();
        assert_eq!(total + clustering.noise().len(), ds.len());
    }

    #[test]
    fn hull_covers_members() {
        let ds = grid_dataset();
        let betas = vec![
            beta(&[0.0, 0.0], &[0.2, 0.2], &[0]),
            beta(&[0.1, 0.1], &[0.5, 0.6], &[0, 1]),
        ];
        let (clusters, _, _) = build_checked(&ds, &betas);
        let h = &clusters[0].hull;
        assert_eq!(h.lower(0), 0.0);
        assert_eq!(h.upper(1), 0.6);
    }

    #[test]
    fn cache_containment_matches_brute_force() {
        let ds = grid_dataset();
        let betas = vec![
            beta(&[0.0, 0.0], &[0.3, 0.3], &[0]),
            beta(&[0.2, 0.2], &[0.7, 0.7], &[0, 1]),
            beta(&[0.0, 0.0], &[1.0, 1.0], &[0]), // everything
        ];
        let (_, _, cache) = build_checked(&ds, &betas);
        for (i, p) in ds.iter().enumerate() {
            let brute: Vec<u32> = betas
                .iter()
                .enumerate()
                .filter(|(_, b)| b.bounds.contains(p))
                .map(|(k, _)| u32::try_from(k).unwrap())
                .collect();
            assert_eq!(cache.containing(i), &brute[..], "point {i}");
        }
        assert_eq!(cache.box_count(2), 100);
    }

    #[test]
    fn merge_phase_performs_exactly_one_dataset_pass() {
        let ds = grid_dataset();
        let betas = vec![
            beta(&[0.0, 0.0], &[0.3, 0.3], &[0]),
            beta(&[0.2, 0.2], &[0.5, 0.5], &[0, 1]),
        ];
        let before = dataset_scan_count();
        let _ = build_correlation_clusters(&ds, &betas, 1);
        assert_eq!(
            dataset_scan_count() - before,
            1,
            "serial engine must scan once"
        );
        let before = dataset_scan_count();
        let _ = build_correlation_clusters(&ds, &betas, 4);
        assert_eq!(
            dataset_scan_count() - before,
            1,
            "parallel engine must scan once"
        );
        // The oracle, by contrast, scans at least thrice on overlapping βs.
        let before = dataset_scan_count();
        let _ = build_correlation_clusters_oracle(&ds, &betas);
        assert!(dataset_scan_count() - before >= 3);
    }
}
