//! MrCC configuration.
//!
//! The method has exactly two input parameters (Section IV-D): the
//! statistical significance level `α` of the β-cluster test and the number of
//! Counting-tree resolutions `H`. The paper fixes `α = 1e−10`, `H = 4` for
//! every experiment; those are the defaults here. Two additional knobs expose
//! design-choice ablations studied in our EXPERIMENTS.md: the convolution
//! mask variant and the axis-relevance selection rule.

use mrcc_common::{Error, Result};
use mrcc_counting_tree::{MAX_RESOLUTIONS, MIN_RESOLUTIONS};
use serde_json::{FromJson, ToJson, Value};

/// Which Laplacian mask the β-cluster search convolves with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskKind {
    /// Order-3 mask with non-zero entries only at the centre (`2d`) and the
    /// `2d` face elements (`−1`) — the paper's choice, `O(d)` per cell.
    FaceOnly,
    /// Order-3 mask with non-zero entries everywhere: centre `3^d − 1`, all
    /// `3^d − 1` neighbors `−1`. `O(3^d)` per cell; the paper reports it
    /// "improves a little" but costs too much. Kept for the ablation bench;
    /// only valid for small `d`.
    Full,
}

/// How the per-axis relevances are cut into relevant / irrelevant sets.
///
/// The relevance `r[j] = 100·cP_j / nP_j` is the share of the six-region
/// neighborhood's mass that sits in the centre region; the uniform null puts
/// ≈16.7 % there, so the statistic has an *absolute* scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AxisSelection {
    /// MDL-tuned threshold over the sorted relevances — the paper's method
    /// (floored by [`MrCCConfig::relevance_floor`]). The two-partition MDL
    /// cut isolates the *tightest* high plateau; on tri-modal relevance
    /// patterns (clean axes ≈95, straddled/rotated-but-concentrated axes
    /// 50–70, uniform axes ≈17–40) it drops the middle group, leaving boxes
    /// constrained on one or two axes that swallow foreign clusters — the
    /// `axis-selection` ablation quantifies this.
    Mdl,
    /// Absolute share threshold in `(0, 100]`: axis `e_j` is relevant iff
    /// the centre region holds at least this percentage of the neighborhood
    /// mass. The default `Share(45.0)` demands ≈2.7× the null share, which
    /// captures clean relevant axes (≈90+), grid-straddled ones (≈50) and
    /// axes diluted to ≈47–49 by a *second* cluster sitting in the
    /// neighborhood, while rejecting uniform axes (≤ ≈40). Erring toward
    /// inclusion is the safe side: a wrongly kept axis merely tightens the
    /// cluster box, a wrongly dropped one opens it to `[0,1]`.
    Share(f64),
}

/// Full configuration for [`crate::MrCC`].
#[derive(Debug, Clone, PartialEq)]
pub struct MrCCConfig {
    /// Significance level `α` of the one-sided binomial test: the probability
    /// of wrongly rejecting the uniform null per axis. Paper default `1e−10`.
    pub alpha: f64,
    /// Number of distinct resolutions `H` of the Counting-tree (`H ≥ 3`).
    /// Paper default 4.
    pub resolutions: usize,
    /// Convolution mask variant (ablation knob; default [`MaskKind::FaceOnly`]).
    pub mask: MaskKind,
    /// Axis-relevance selection rule (ablation knob; default
    /// [`AxisSelection::Mdl`]).
    pub axis_selection: AxisSelection,
    /// Effect-size floor for axis relevance, in `[0, 100)`: an axis only
    /// counts as relevant (and a β-cluster is only accepted) when its centre
    /// region holds at least this percentage of the neighborhood's points.
    ///
    /// Under the uniform null the centre region holds ≈16.7 %; at large `η`
    /// the binomial test rejects for tiny effects (a 20 % share of a
    /// 10,000-point neighborhood is wildly "significant" yet describes no
    /// usable cluster), producing diffuse β-clusters that chain-merge real
    /// ones. The default 45 demands the centre sixth carry ≈2.7× its null share
    /// of the neighborhood mass. Set 0 to disable
    /// (paper-pure significance-only behaviour; ablation `mdl-vs-fixed`
    /// exercises this knob too).
    pub relevance_floor: f64,
    /// Worker threads for the parallel execution mode: the Counting-tree is
    /// built over contiguous point shards
    /// ([`CountingTree::build_sharded`](mrcc_counting_tree::CountingTree::build_sharded))
    /// and the per-level convolution scan fans out over cell-range chunks.
    /// Both phases are engineered to be **bit-for-bit identical** to the
    /// serial pipeline for every thread count, so this is purely a speed
    /// knob. Default 1 = the exact historical serial code path.
    pub threads: usize,
}

/// Largest accepted [`MrCCConfig::threads`] value — far above any plausible
/// core count; a sanity bound so a typo'd thread count fails validation
/// instead of spawning thousands of workers.
pub const MAX_THREADS: usize = 1024;

impl Default for MrCCConfig {
    fn default() -> Self {
        MrCCConfig {
            alpha: 1e-10,
            resolutions: 4,
            mask: MaskKind::FaceOnly,
            axis_selection: AxisSelection::Share(45.0),
            relevance_floor: 45.0,
            threads: 1,
        }
    }
}

impl MrCCConfig {
    /// Convenience constructor for the two paper parameters.
    #[must_use]
    pub fn with_params(alpha: f64, resolutions: usize) -> Self {
        MrCCConfig {
            alpha,
            resolutions,
            ..Default::default()
        }
    }

    /// Returns the configuration with the convolution mask replaced
    /// (builder style; chain off [`Default::default`] or `with_params`).
    #[must_use]
    pub fn with_mask(mut self, mask: MaskKind) -> Self {
        self.mask = mask;
        self
    }

    /// Returns the configuration with the axis-relevance selection rule
    /// replaced.
    #[must_use]
    pub fn with_axis_selection(mut self, axis_selection: AxisSelection) -> Self {
        self.axis_selection = axis_selection;
        self
    }

    /// Returns the configuration with the effect-size floor replaced.
    #[must_use]
    pub fn with_relevance_floor(mut self, relevance_floor: f64) -> Self {
        self.relevance_floor = relevance_floor;
        self
    }

    /// Returns the configuration with the worker-thread count replaced.
    /// `1` (the default) runs the exact serial pipeline; any larger count
    /// produces bit-identical results on multiple threads.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Validates every field.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] describing the first violation found.
    pub fn validate(&self) -> Result<()> {
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(Error::InvalidParameter {
                name: "alpha",
                message: format!("must be in (0,1), got {}", self.alpha),
            });
        }
        if !(MIN_RESOLUTIONS..=MAX_RESOLUTIONS).contains(&self.resolutions) {
            return Err(Error::InvalidParameter {
                name: "resolutions",
                message: format!(
                    "must be in [{MIN_RESOLUTIONS}, {MAX_RESOLUTIONS}], got {}",
                    self.resolutions
                ),
            });
        }
        if !(0.0..100.0).contains(&self.relevance_floor) {
            return Err(Error::InvalidParameter {
                name: "relevance_floor",
                message: format!("must be in [0,100), got {}", self.relevance_floor),
            });
        }
        if let AxisSelection::Share(t) = self.axis_selection {
            if !(t > 0.0 && t <= 100.0) {
                return Err(Error::InvalidParameter {
                    name: "axis_selection",
                    message: format!("share threshold must be in (0,100], got {t}"),
                });
            }
        }
        if !(1..=MAX_THREADS).contains(&self.threads) {
            return Err(Error::InvalidParameter {
                name: "threads",
                message: format!("must be in [1, {MAX_THREADS}], got {}", self.threads),
            });
        }
        Ok(())
    }
}

// Hand-written JSON round-trip impls: the offline serde_json stand-in has no
// derive macros (see vendor/serde_json). Shapes mirror what serde's derive
// would emit: unit variants as strings, newtype variants as 1-key objects.

impl ToJson for MaskKind {
    fn to_json(&self) -> Value {
        match self {
            MaskKind::FaceOnly => Value::String("FaceOnly".to_string()),
            MaskKind::Full => Value::String("Full".to_string()),
        }
    }
}

impl FromJson for MaskKind {
    fn from_json(value: &Value) -> std::result::Result<Self, serde_json::Error> {
        match value.as_str() {
            Some("FaceOnly") => Ok(MaskKind::FaceOnly),
            Some("Full") => Ok(MaskKind::Full),
            _ => Err(serde_json::Error::msg(format!(
                "expected \"FaceOnly\" or \"Full\", got {value}"
            ))),
        }
    }
}

impl ToJson for AxisSelection {
    fn to_json(&self) -> Value {
        match self {
            AxisSelection::Mdl => Value::String("Mdl".to_string()),
            AxisSelection::Share(t) => {
                Value::Object(vec![("Share".to_string(), Value::Number(*t))])
            }
        }
    }
}

impl FromJson for AxisSelection {
    fn from_json(value: &Value) -> std::result::Result<Self, serde_json::Error> {
        if value.as_str() == Some("Mdl") {
            return Ok(AxisSelection::Mdl);
        }
        if let Some(share) = value.get("Share").and_then(Value::as_f64) {
            return Ok(AxisSelection::Share(share));
        }
        Err(serde_json::Error::msg(format!(
            "expected \"Mdl\" or {{\"Share\": t}}, got {value}"
        )))
    }
}

impl ToJson for MrCCConfig {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("alpha".to_string(), self.alpha.to_json()),
            ("resolutions".to_string(), self.resolutions.to_json()),
            ("mask".to_string(), self.mask.to_json()),
            ("axis_selection".to_string(), self.axis_selection.to_json()),
            (
                "relevance_floor".to_string(),
                self.relevance_floor.to_json(),
            ),
            ("threads".to_string(), self.threads.to_json()),
        ])
    }
}

impl FromJson for MrCCConfig {
    fn from_json(value: &Value) -> std::result::Result<Self, serde_json::Error> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| serde_json::Error::msg(format!("missing field `{name}`")))
        };
        Ok(MrCCConfig {
            alpha: f64::from_json(field("alpha")?)?,
            resolutions: usize::from_json(field("resolutions")?)?,
            mask: MaskKind::from_json(field("mask")?)?,
            axis_selection: AxisSelection::from_json(field("axis_selection")?)?,
            relevance_floor: f64::from_json(field("relevance_floor")?)?,
            // Absent in configs serialized before the parallel mode existed;
            // default to the serial pipeline.
            threads: match value.get("threads") {
                Some(v) => usize::from_json(v)?,
                None => 1,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = MrCCConfig::default();
        assert_eq!(c.alpha, 1e-10);
        assert_eq!(c.resolutions, 4);
        assert_eq!(c.mask, MaskKind::FaceOnly);
        assert_eq!(c.axis_selection, AxisSelection::Share(45.0));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_bad_alpha() {
        assert!(MrCCConfig::with_params(0.0, 4).validate().is_err());
        assert!(MrCCConfig::with_params(1.0, 4).validate().is_err());
        assert!(MrCCConfig::with_params(-0.5, 4).validate().is_err());
    }

    #[test]
    fn rejects_bad_resolutions() {
        assert!(MrCCConfig::with_params(1e-10, 2).validate().is_err());
        assert!(MrCCConfig::with_params(1e-10, 65).validate().is_err());
        assert!(MrCCConfig::with_params(1e-10, 3).validate().is_ok());
    }

    #[test]
    fn rejects_bad_relevance_floor() {
        let mut c = MrCCConfig {
            relevance_floor: 100.0,
            ..MrCCConfig::default()
        };
        assert!(c.validate().is_err());
        c.relevance_floor = -1.0;
        assert!(c.validate().is_err());
        c.relevance_floor = 0.0;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_bad_share_threshold() {
        let mut c = MrCCConfig {
            axis_selection: AxisSelection::Share(0.0),
            ..MrCCConfig::default()
        };
        assert!(c.validate().is_err());
        c.axis_selection = AxisSelection::Share(101.0);
        assert!(c.validate().is_err());
        c.axis_selection = AxisSelection::Share(50.0);
        assert!(c.validate().is_ok());
        c.axis_selection = AxisSelection::Mdl;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders_replace_one_field_each() {
        let c = MrCCConfig::default()
            .with_mask(MaskKind::Full)
            .with_axis_selection(AxisSelection::Mdl)
            .with_relevance_floor(0.0);
        assert_eq!(c.mask, MaskKind::Full);
        assert_eq!(c.axis_selection, AxisSelection::Mdl);
        assert_eq!(c.relevance_floor, 0.0);
        // Untouched fields keep their defaults.
        assert_eq!(c.alpha, 1e-10);
        assert_eq!(c.resolutions, 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn serde_round_trip() {
        let c = MrCCConfig::default().with_threads(4);
        let json = serde_json::to_string(&c).unwrap();
        let back: MrCCConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn legacy_json_without_threads_defaults_to_serial() {
        let json = serde_json::to_string(&MrCCConfig::default()).unwrap();
        let stripped = json.replace(",\"threads\":1", "");
        assert!(!stripped.contains("threads"), "{stripped}");
        let back: MrCCConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.threads, 1);
    }

    #[test]
    fn rejects_bad_threads() {
        let c = MrCCConfig::default().with_threads(0);
        assert!(c.validate().is_err());
        let c = MrCCConfig::default().with_threads(MAX_THREADS + 1);
        assert!(c.validate().is_err());
        let c = MrCCConfig::default().with_threads(8);
        assert!(c.validate().is_ok());
    }
}
