//! Phase two: finding β-clusters (Algorithm 2).
//!
//! Starting at the coarsest useful resolution (level 2) and refining, the
//! search convolves the Laplacian mask over every not-yet-used cell that does
//! not share space with a previously found β-cluster, takes the cell with the
//! largest convolved value — the densest region at this resolution outside
//! known clusters — and checks whether it *stands out in a statistical
//! sense*: per axis, the points of the centre cell's parent neighborhood are
//! split into six consecutive equal-size regions, and the centre region's
//! count `cP_j` is tested one-sided against `Binomial(nP_j, 1/6)`. A cell
//! significant on at least one axis seeds a new β-cluster; its relevant axes
//! come from an MDL cut over the per-axis relevances and its bounds from the
//! centre cell refined by its face neighbors. After every find the search
//! restarts from level 2; it stops after a full sweep finds nothing.

use std::sync::atomic::{AtomicUsize, Ordering};

use mrcc_common::num::bounded_to_u32;
use mrcc_common::parallel::{chunk_ranges, effective_workers};
use mrcc_common::{AxisMask, BoundingBox};
use mrcc_counting_tree::{Cell, CellId, CountingTree, Direction, Level};
use mrcc_stats::{binomial_critical_value, mdl_cut};

use crate::beta::{AxisStats, BetaCluster};
use crate::config::{AxisSelection, MrCCConfig};
use crate::convolution::convolve;

/// Number of consecutive equal-size regions the parent neighborhood is split
/// into along each axis (Section III-B): the parent's two halves plus the two
/// halves of each face neighbor.
pub const NEIGHBORHOOD_REGIONS: u64 = 6;

/// The uniform null hypothesis gives each of the six regions an equal share
/// of the neighborhood mass: `cP_j ~ Binomial(nP_j, 1/6)`.
pub const NULL_REGION_SHARE: f64 = 1.0 / 6.0;

/// Runs the full β-cluster search over a freshly built Counting-tree.
///
/// With `config.threads > 1` the per-level convolution scan runs on scoped
/// worker threads; the winner selection uses a strict total order, so the
/// returned β-clusters are bit-identical to a serial run (see
/// [`best_cell_at_level`]).
pub fn find_beta_clusters(tree: &mut CountingTree, config: &MrCCConfig) -> Vec<BetaCluster> {
    let mut betas: Vec<BetaCluster> = Vec::new();
    let h_max = tree.deepest_level();
    'search: loop {
        // One sweep from the coarsest convolvable level down.
        for h in 2..=h_max {
            let Some(winner) = best_cell_at_level(tree.level(h), tree.dims(), &betas, config)
            else {
                continue;
            };
            tree.level_mut(h).set_used(winner, true);
            if let Some(beta) = confirm_beta_cluster(tree, h, winner, config) {
                betas.push(beta);
                continue 'search; // restart at level 2 (Algorithm 2, line 2)
            }
        }
        break; // full sweep, no new β-cluster (line 31)
    }
    betas
}

/// Cells per work unit of the parallel convolution scan: small enough to
/// load-balance skewed levels across workers, large enough that the queue's
/// atomic traffic is noise next to the convolution itself.
const SCAN_CHUNK: usize = 1024;

/// Keeps the better of two scan candidates under the **strict total order**
/// "higher convolved value wins, ties go to the lower cell id". Because the
/// order is total, reducing any set of candidates with it is associative and
/// commutative — the parallel scan's reduction is deterministic no matter
/// which worker finished which chunk first — and it reproduces the serial
/// scan exactly (ascending iteration with "first maximum wins" *is*
/// lowest-id-on-ties).
fn better(a: (CellId, i64), b: (CellId, i64)) -> (CellId, i64) {
    if b.1 > a.1 || (b.1 == a.1 && b.0 < a.0) {
        b
    } else {
        a
    }
}

/// Serial scan of one contiguous arena-id range, returning the local winner.
fn scan_range(
    level: &Level,
    range: std::ops::Range<usize>,
    dims: usize,
    betas: &[BetaCluster],
    config: &MrCCConfig,
) -> Option<(CellId, i64)> {
    let side = level.side();
    let mut best: Option<(CellId, i64)> = None;
    for i in range {
        let id = bounded_to_u32(i);
        let cell = level.cell(id);
        if cell.used() || shares_space_with_any(cell, side, dims, betas) {
            continue;
        }
        let candidate = (id, convolve(level, id, dims, config.mask));
        best = Some(match best {
            Some(current) => better(current, candidate),
            None => candidate,
        });
    }
    best
}

/// The convolution winner at one level: the unused, non-overlapping cell with
/// the largest convolved value, or `None` when no candidate remains.
///
/// With `config.threads > 1` the scan fans out over a work queue of
/// contiguous cell-id chunks on scoped threads; the chunk results are
/// reduced with [`better`], whose strict total order makes the outcome
/// bit-identical to the serial scan regardless of scheduling.
fn best_cell_at_level(
    level: &Level,
    dims: usize,
    betas: &[BetaCluster],
    config: &MrCCConfig,
) -> Option<CellId> {
    let n = level.n_cells();
    let workers = effective_workers(config.threads, n.div_ceil(SCAN_CHUNK));
    if workers <= 1 {
        return scan_range(level, 0..n, dims, betas, config).map(|(id, _)| id);
    }
    let chunks = chunk_ranges(n, SCAN_CHUNK);
    let next = AtomicUsize::new(0);
    let locals: Vec<Option<(CellId, i64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut best: Option<(CellId, i64)> = None;
                    loop {
                        let claimed = next.fetch_add(1, Ordering::Relaxed);
                        let Some(range) = chunks.get(claimed) else {
                            break;
                        };
                        if let Some(candidate) =
                            scan_range(level, range.clone(), dims, betas, config)
                        {
                            best = Some(match best {
                                Some(current) => better(current, candidate),
                                None => candidate,
                            });
                        }
                    }
                    best
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(local) => local,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });
    locals
        .into_iter()
        .flatten()
        .reduce(better)
        .map(|(id, _)| id)
}

/// The cell-vs-β-cluster share-space predicate (strict interior overlap; a
/// cell that merely touches a β-box face is outside it and stays eligible —
/// grid-aligned bounds make touching ubiquitous, see
/// [`BoundingBox::overlaps_strict`]).
fn shares_space_with_any(cell: &Cell, side: f64, dims: usize, betas: &[BetaCluster]) -> bool {
    betas.iter().any(|beta| {
        (0..dims).all(|j| {
            cell.upper_bound(j, side) > beta.bounds.lower(j)
                && cell.lower_bound(j, side) < beta.bounds.upper(j)
        })
    })
}

/// Statistics of the six-region neighborhood of `winner` along every axis.
fn neighborhood_stats(tree: &CountingTree, h: usize, winner: CellId, alpha: f64) -> Vec<AxisStats> {
    let dims = tree.dims();
    let level = tree.level(h);
    let cell = level.cell(winner);
    let parent_level = tree.level(h - 1);
    let parent_coords = cell.parent_coords();
    let parent_id = parent_level
        .find(&parent_coords)
        .expect("tree structure invariant: the parent of a non-empty cell is non-empty");
    let parent = parent_level.cell(parent_id);

    (0..dims)
        .map(|j| {
            // Predecessor + its two face neighbors along e_j (the paper's
            // internal and external neighbors N I / N E of a_{h−1}): three
            // consecutive level-(h−1) cells, i.e. six half-cell regions.
            let neighborhood = parent.n()
                + parent_level.neighbor_count(parent_id, j, Direction::Lower)
                + parent_level.neighbor_count(parent_id, j, Direction::Upper);
            // Centre region: the half of the parent that contains the winner.
            // Half-space count P[j] is the parent's lower half, so take it
            // directly when the winner's loc bit is 0, its complement when 1.
            let center = if cell.loc_bit(j) {
                parent.n() - parent.half_count(j)
            } else {
                parent.half_count(j)
            };
            let critical = binomial_critical_value(neighborhood, NULL_REGION_SHARE, alpha);
            let relevance = if neighborhood > 0 {
                100.0 * center as f64 / neighborhood as f64
            } else {
                0.0
            };
            AxisStats {
                neighborhood,
                center,
                critical,
                relevance,
            }
        })
        .collect()
}

/// Applies the significance test at `winner`; on success builds the full
/// β-cluster description (relevant axes + refined bounds).
fn confirm_beta_cluster(
    tree: &CountingTree,
    h: usize,
    winner: CellId,
    config: &MrCCConfig,
) -> Option<BetaCluster> {
    let stats = neighborhood_stats(tree, h, winner, config.alpha);
    if !stats.iter().any(AxisStats::significant) {
        return None;
    }
    let dims = tree.dims();

    // Relevant-axis threshold: an absolute majority-share cut (default) or
    // the paper's MDL cut floored by the effect-size guard (see
    // AxisSelection and MrCCConfig::relevance_floor).
    let cut = match config.axis_selection {
        AxisSelection::Mdl => {
            let mut ordered: Vec<f64> = stats.iter().map(|s| s.relevance).collect();
            ordered.sort_by(|a, b| {
                a.partial_cmp(b)
                    .expect("relevance ratios are finite by construction invariant")
            });
            mdl_cut(&ordered).threshold.max(config.relevance_floor)
        }
        AxisSelection::Share(t) => t,
    };
    let axes = AxisMask::from_bools(&stats.iter().map(|s| s.relevance >= cut).collect::<Vec<_>>());
    if axes.is_empty() {
        // Statistically significant but with no usable effect on any axis —
        // a diffuse bump, not a cluster.
        return None;
    }

    // Bounds: irrelevant axes span [0,1]; relevant axes take the winner
    // cell's bounds, stretched by one cell side toward face neighbors that
    // hold a meaningful share of the cluster's mass (Algorithm 2, lines
    // 23–28, says "containing at least one point"; at realistic scales
    // background noise puts at least one point in *every* coarse neighbor,
    // which would balloon every box to three cells per axis — we require the
    // neighbor to carry at least a few percent of the centre cell's count,
    // which degenerates to the paper's ≥1 rule exactly when the centre is
    // small; see DESIGN.md).
    let level = tree.level(h);
    let cell = level.cell(winner);
    let side = level.side();
    let spill_threshold = (cell.n() / 20).max(1);
    let mut bounds = BoundingBox::unit(dims);
    for j in axes.iter() {
        let mut lo = cell.lower_bound(j, side);
        let mut hi = cell.upper_bound(j, side);
        if level.neighbor_count(winner, j, Direction::Lower) >= spill_threshold {
            lo = (lo - side).max(0.0);
        }
        if level.neighbor_count(winner, j, Direction::Upper) >= spill_threshold {
            hi = (hi + side).min(1.0);
        }
        bounds.set_lower(j, lo);
        bounds.set_upper(j, hi);
    }

    Some(BetaCluster {
        bounds,
        axes,
        level: h,
        center_coords: cell.coords().to_vec(),
        axis_stats: stats,
        relevance_threshold: cut,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrcc_common::Dataset;

    /// ~1400 points: a tight 2-d Gaussian-ish blob plus a uniform grid of
    /// noise. The blob should produce exactly one β-cluster relevant on both
    /// axes.
    fn blob_and_noise() -> Dataset {
        let mut rows: Vec<[f64; 2]> = Vec::new();
        // Deterministic pseudo-random blob centred at (0.3, 0.7), σ ≈ 0.02.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..1000 {
            // Irwin–Hall(4) − 2 ≈ Gaussian(0, 0.577).
            let g1: f64 = (0..4).map(|_| next()).sum::<f64>() - 2.0;
            let g2: f64 = (0..4).map(|_| next()).sum::<f64>() - 2.0;
            rows.push([
                (0.3 + 0.03 * g1).clamp(0.0, 0.999),
                (0.7 + 0.03 * g2).clamp(0.0, 0.999),
            ]);
        }
        for _ in 0..400 {
            rows.push([next() * 0.999, next() * 0.999]);
        }
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn finds_the_blob_as_a_beta_cluster() {
        let ds = blob_and_noise();
        let mut tree = CountingTree::build(&ds, 4).unwrap();
        let betas = find_beta_clusters(&mut tree, &MrCCConfig::default());
        assert!(!betas.is_empty(), "no β-cluster found");
        // The first (densest) β-cluster covers the blob centre.
        let b = &betas[0];
        assert!(
            b.bounds.contains(&[0.3, 0.7]),
            "bounds {:?} miss the blob centre",
            b.bounds
        );
        assert!(b.axes.contains(0) && b.axes.contains(1));
    }

    #[test]
    fn uniform_data_yields_no_beta_cluster() {
        // A uniform grid has no density bump that can reject the null at
        // α = 1e−10.
        let mut rows = Vec::new();
        for i in 0..32 {
            for j in 0..32 {
                rows.push([i as f64 / 32.0, j as f64 / 32.0]);
            }
        }
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut tree = CountingTree::build(&ds, 4).unwrap();
        let betas = find_beta_clusters(&mut tree, &MrCCConfig::default());
        assert!(
            betas.is_empty(),
            "found {} spurious β-clusters",
            betas.len()
        );
    }

    #[test]
    fn search_is_deterministic() {
        let ds = blob_and_noise();
        let run = || {
            let mut tree = CountingTree::build(&ds, 4).unwrap();
            find_beta_clusters(&mut tree, &MrCCConfig::default())
                .iter()
                .map(|b| (b.level, b.center_coords.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn parallel_search_equals_serial() {
        let ds = blob_and_noise();
        let describe = |betas: &[BetaCluster]| {
            betas
                .iter()
                .map(|b| {
                    (
                        b.level,
                        b.center_coords.clone(),
                        b.axes.iter().collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>()
        };
        let mut tree = CountingTree::build(&ds, 4).unwrap();
        let serial = find_beta_clusters(&mut tree, &MrCCConfig::default());
        for threads in [2usize, 3, 8] {
            let mut tree = CountingTree::build_sharded(&ds, 4, threads).unwrap();
            let config = MrCCConfig::default().with_threads(threads);
            let parallel = find_beta_clusters(&mut tree, &config);
            assert_eq!(
                describe(&parallel),
                describe(&serial),
                "threads={threads} diverged"
            );
        }
    }

    #[test]
    fn chunk_reduction_total_order() {
        // better() prefers the higher value, breaking ties toward the lower
        // id, from either argument position.
        assert_eq!(better((3, 10), (7, 9)), (3, 10));
        assert_eq!(better((7, 9), (3, 10)), (3, 10));
        assert_eq!(better((5, 10), (2, 10)), (2, 10));
        assert_eq!(better((2, 10), (5, 10)), (2, 10));
    }

    #[test]
    fn beta_clusters_do_not_share_space_pairwise_centers() {
        // Found β-clusters carve space: no later centre cell may fall inside
        // an earlier β-cluster's box.
        let ds = blob_and_noise();
        let mut tree = CountingTree::build(&ds, 4).unwrap();
        let betas = find_beta_clusters(&mut tree, &MrCCConfig::default());
        for (i, b) in betas.iter().enumerate() {
            let side = (0.5f64).powi(b.level as i32);
            for earlier in &betas[..i] {
                let disjoint = (0..2).any(|j| {
                    let lo = b.center_coords[j] as f64 * side;
                    let hi = lo + side;
                    hi < earlier.bounds.lower(j) || lo > earlier.bounds.upper(j)
                });
                assert!(disjoint, "β-cluster {i} centre inside an earlier box");
            }
        }
    }

    #[test]
    fn loose_alpha_finds_more_clusters_than_tight_alpha() {
        let ds = blob_and_noise();
        let count = |alpha: f64| {
            let mut tree = CountingTree::build(&ds, 4).unwrap();
            find_beta_clusters(&mut tree, &MrCCConfig::with_params(alpha, 4)).len()
        };
        assert!(count(1e-2) >= count(1e-40));
    }
}
