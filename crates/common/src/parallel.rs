//! Deterministic work partitioning for the parallel execution mode.
//!
//! Every parallel phase in the workspace (sharded Counting-tree
//! construction, the per-level convolution scan) follows the same recipe:
//! split the work into **contiguous, index-ordered ranges**, process the
//! ranges on worker threads, and reduce the partial results **in range
//! order** (or with an order-insensitive total-order reduction). The helpers
//! here compute those ranges; keeping the partitioning in one place is what
//! makes "parallel output ≡ serial output" an auditable property instead of
//! a hope.

use std::ops::Range;

/// Splits `0..n_items` into `n_shards` contiguous ranges whose lengths
/// differ by at most one (the first `n_items % n_shards` ranges are one
/// longer). With `n_items < n_shards` the tail ranges are empty — callers
/// must tolerate empty shards.
///
/// `n_shards == 0` is treated as 1 so the result is never empty.
///
/// ```
/// use mrcc_common::parallel::shard_ranges;
/// assert_eq!(shard_ranges(10, 3), vec![0..4, 4..7, 7..10]);
/// assert_eq!(shard_ranges(2, 4), vec![0..1, 1..2, 2..2, 2..2]);
/// ```
#[must_use]
pub fn shard_ranges(n_items: usize, n_shards: usize) -> Vec<Range<usize>> {
    let n_shards = n_shards.max(1);
    let base = n_items / n_shards;
    let extra = n_items % n_shards;
    let mut ranges = Vec::with_capacity(n_shards);
    let mut start = 0usize;
    for i in 0..n_shards {
        let len = base + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Splits `0..n_items` into ranges of at most `chunk` items, in index order.
/// The final range may be shorter. `chunk == 0` is treated as 1.
///
/// ```
/// use mrcc_common::parallel::chunk_ranges;
/// assert_eq!(chunk_ranges(5, 2), vec![0..2, 2..4, 4..5]);
/// assert_eq!(chunk_ranges(0, 8), Vec::<std::ops::Range<usize>>::new());
/// ```
#[must_use]
pub fn chunk_ranges(n_items: usize, chunk: usize) -> Vec<Range<usize>> {
    let chunk = chunk.max(1);
    let mut ranges = Vec::with_capacity(n_items.div_ceil(chunk));
    let mut start = 0usize;
    while start < n_items {
        let end = (start + chunk).min(n_items);
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Caps a requested worker count to something useful for `n_items` units of
/// work: at least 1, at most `n_items` (an idle worker is pure overhead) and
/// never more than the requested count.
#[must_use]
pub fn effective_workers(requested: usize, n_items: usize) -> usize {
    requested.max(1).min(n_items.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_cover_everything_in_order() {
        for n in [0usize, 1, 2, 7, 100, 101] {
            for k in [1usize, 2, 3, 8, 200] {
                let ranges = shard_ranges(n, k);
                assert_eq!(ranges.len(), k);
                let mut expect = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, expect, "n={n} k={k}");
                    assert!(r.end >= r.start);
                    expect = r.end;
                }
                assert_eq!(expect, n);
                let (min, max) = ranges.iter().fold((usize::MAX, 0usize), |(mn, mx), r| {
                    (mn.min(r.len()), mx.max(r.len()))
                });
                assert!(max - min <= 1, "unbalanced shards for n={n} k={k}");
            }
        }
    }

    #[test]
    fn zero_shards_degrades_to_one() {
        assert_eq!(shard_ranges(5, 0), vec![0..5]);
    }

    #[test]
    fn chunks_cover_everything_in_order() {
        for n in [0usize, 1, 5, 64, 65] {
            for c in [0usize, 1, 2, 64, 1000] {
                let ranges = chunk_ranges(n, c);
                let mut expect = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    assert!(r.len() <= c.max(1));
                    expect = r.end;
                }
                assert_eq!(expect, n);
            }
        }
    }

    #[test]
    fn effective_workers_bounds() {
        assert_eq!(effective_workers(0, 10), 1);
        assert_eq!(effective_workers(8, 3), 3);
        assert_eq!(effective_workers(4, 100), 4);
        assert_eq!(effective_workers(2, 0), 1);
    }
}
