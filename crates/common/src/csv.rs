//! Minimal CSV import/export for datasets and label vectors.
//!
//! Deliberately small: comma-separated `f64` columns, optional trailing
//! integer label column, `#`-prefixed comment lines. This is all the examples
//! and the experiment harness need to round-trip data to disk; no external
//! CSV crate is pulled in.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::dataset::Dataset;
use crate::error::{Error, Result};

/// Reads a dataset (no label column) from a reader.
pub fn read_dataset<R: Read>(reader: R) -> Result<Dataset> {
    let (ds, _labels) = read_rows(reader, false)?;
    Ok(ds)
}

/// Reads a dataset whose **last** column is an integer cluster label
/// (`-1` = noise). Returns the feature dataset and the label vector.
pub fn read_labeled_dataset<R: Read>(reader: R) -> Result<(Dataset, Vec<i32>)> {
    let (ds, labels) = read_rows(reader, true)?;
    Ok((
        ds,
        labels.expect("read_rows(labeled=true) returns labels invariant"),
    ))
}

fn read_rows<R: Read>(reader: R, labeled: bool) -> Result<(Dataset, Option<Vec<i32>>)> {
    let reader = BufReader::new(reader);
    let mut data: Vec<f64> = Vec::new();
    let mut labels: Vec<i32> = Vec::new();
    let mut dims: Option<usize> = None;
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        let n_features = if labeled {
            fields.len().checked_sub(1).ok_or(Error::Csv {
                line: line_no + 1,
                message: "labeled row needs at least 2 columns".into(),
            })?
        } else {
            fields.len()
        };
        match dims {
            None => dims = Some(n_features),
            Some(d) if d != n_features => {
                return Err(Error::Csv {
                    line: line_no + 1,
                    message: format!("expected {d} feature columns, got {n_features}"),
                })
            }
            _ => {}
        }
        for field in &fields[..n_features] {
            let v: f64 = field.parse().map_err(|_| Error::Csv {
                line: line_no + 1,
                message: format!("bad float `{field}`"),
            })?;
            data.push(v);
        }
        if labeled {
            let l: i32 = fields[n_features].parse().map_err(|_| Error::Csv {
                line: line_no + 1,
                message: format!("bad label `{}`", fields[n_features]),
            })?;
            labels.push(l);
        }
    }
    let dims = dims.ok_or(Error::EmptyDataset)?;
    let ds = Dataset::from_flat(dims, data)?;
    Ok((ds, labeled.then_some(labels)))
}

/// Writes a dataset, optionally with a trailing label column.
pub fn write_dataset<W: Write>(writer: W, ds: &Dataset, labels: Option<&[i32]>) -> Result<()> {
    if let Some(l) = labels {
        assert_eq!(l.len(), ds.len(), "labels length mismatch");
    }
    let mut w = BufWriter::new(writer);
    for (i, p) in ds.iter().enumerate() {
        for (j, v) in p.iter().enumerate() {
            if j > 0 {
                write!(w, ",")?;
            }
            write!(w, "{v}")?;
        }
        if let Some(l) = labels {
            write!(w, ",{}", l[i])?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Convenience: read a dataset from a file path.
pub fn read_dataset_file<P: AsRef<Path>>(path: P) -> Result<Dataset> {
    read_dataset(std::fs::File::open(path)?)
}

/// Convenience: read a labeled dataset from a file path.
pub fn read_labeled_dataset_file<P: AsRef<Path>>(path: P) -> Result<(Dataset, Vec<i32>)> {
    read_labeled_dataset(std::fs::File::open(path)?)
}

/// Convenience: write a dataset (and optional labels) to a file path.
pub fn write_dataset_file<P: AsRef<Path>>(
    path: P,
    ds: &Dataset,
    labels: Option<&[i32]>,
) -> Result<()> {
    write_dataset(std::fs::File::create(path)?, ds, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_unlabeled() {
        let ds = Dataset::from_rows(&[[0.25, 0.5], [0.75, 0.125]]).unwrap();
        let mut buf = Vec::new();
        write_dataset(&mut buf, &ds, None).unwrap();
        let back = read_dataset(&buf[..]).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn roundtrip_labeled() {
        let ds = Dataset::from_rows(&[[0.1, 0.2], [0.3, 0.4], [0.5, 0.6]]).unwrap();
        let labels = vec![0, -1, 1];
        let mut buf = Vec::new();
        write_dataset(&mut buf, &ds, Some(&labels)).unwrap();
        let (back, back_labels) = read_labeled_dataset(&buf[..]).unwrap();
        assert_eq!(back, ds);
        assert_eq!(back_labels, labels);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\n0.1,0.2\n  # another\n0.3,0.4\n";
        let ds = read_dataset(text.as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn ragged_rows_rejected() {
        let text = "0.1,0.2\n0.3\n";
        let err = read_dataset(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn bad_float_reported_with_line() {
        let text = "0.1,oops\n";
        let err = read_dataset(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("oops"));
    }

    #[test]
    fn empty_input_is_empty_dataset_error() {
        assert!(matches!(
            read_dataset("".as_bytes()),
            Err(Error::EmptyDataset)
        ));
    }
}
