#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Common dataset substrate for the MrCC reproduction.
//!
//! This crate hosts everything that the clustering method, the baselines, the
//! generators and the evaluation harness all agree on:
//!
//! * [`Dataset`] — a dense, row-major store of `d`-dimensional points,
//!   together with normalization into the unit hyper-cube `[0,1)^d` that the
//!   paper assumes (Definition 1).
//! * [`AxisMask`] — a compact set of axes (`δ_γE_k` in the paper), used both
//!   for a cluster's *relevant axes* and for subspace bookkeeping.
//! * [`BoundingBox`] — an axis-aligned hyper-rectangle, the geometric
//!   description of a β-cluster / correlation cluster (matrices `L`/`U`).
//! * [`BoxIndex`] — point-stabbing index over a set of boxes (per-axis
//!   interval stabbing), powering the single-scan merge/labeling phase.
//! * [`SubspaceCluster`] / [`SubspaceClustering`] — the output type shared by
//!   MrCC and every baseline: disjoint point sets plus per-cluster relevant
//!   axes, with everything unassigned being noise.
//! * CSV import/export so examples can round-trip data.
//! * [`parallel`] — deterministic work-partitioning helpers shared by every
//!   multi-threaded phase (sharded tree build, parallel convolution scan).

pub mod bbox;
pub mod boxindex;
pub mod clustering;
pub mod csv;
pub mod dataset;
pub mod error;
pub mod float;
pub mod mask;
pub mod num;
pub mod parallel;

pub use bbox::BoundingBox;
pub use boxindex::BoxIndex;
pub use clustering::{SubspaceCluster, SubspaceClustering, NOISE};
pub use dataset::{Dataset, NormalizeInfo};
pub use error::{Error, Result};
pub use mask::AxisMask;
