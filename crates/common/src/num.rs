//! Documented numeric conversions.
//!
//! The counting-tree and stats crates forbid bare `as` casts (see the
//! `as-cast` lint in `crates/xtask`): a silent `as` hides whether a
//! conversion truncates, saturates, wraps or is exact. Every helper here
//! names its semantics, asserts its preconditions in debug builds, and is
//! the approved spelling for that conversion.

/// Largest integer count that converts to `f64` exactly (`2^53`).
pub const F64_EXACT_MAX: u64 = 1 << 53;

/// Count → `f64`, exact for counts up to [`F64_EXACT_MAX`].
///
/// Point/cell counts are bounded by the dataset size, far below `2^53`; the
/// debug assertion catches misuse with genuinely huge values.
#[inline]
#[must_use]
pub fn count_to_f64(n: u64) -> f64 {
    debug_assert!(n <= F64_EXACT_MAX, "count {n} loses precision as f64");
    n as f64
}

/// Length/index → `f64`, exact for values up to [`F64_EXACT_MAX`].
#[inline]
#[must_use]
pub fn len_to_f64(n: usize) -> f64 {
    count_to_f64(usize_to_u64(n))
}

/// Grid coordinate → `f64`, rounding to nearest for coordinates beyond
/// `2^53` (deep levels of the counting tree exceed `f64` integer precision
/// by construction; the resulting cell bounds are correct to 1 ulp).
#[inline]
#[must_use]
pub fn grid_to_f64(c: u64) -> f64 {
    c as f64
}

/// `f64` → `u64` by truncation toward zero, saturating at the type bounds
/// (Rust's float-to-int cast semantics, spelled out). NaN maps to 0.
#[inline]
#[must_use]
pub fn trunc_to_u64(x: f64) -> u64 {
    x as u64
}

/// `f64` → `usize` by truncation toward zero, saturating at the type
/// bounds. NaN maps to 0.
#[inline]
#[must_use]
pub fn trunc_to_usize(x: f64) -> usize {
    x as usize
}

/// `usize` → `u64`, lossless on every platform this workspace supports
/// (pointer width ≤ 64 bits).
#[inline]
#[must_use]
pub fn usize_to_u64(n: usize) -> u64 {
    n as u64
}

/// `u32` → `usize`, lossless (pointer width ≥ 32 bits).
#[inline]
#[must_use]
pub fn u32_to_usize(n: u32) -> usize {
    n as usize
}

/// `usize` → `u32` for values the caller has bounded below `2^32`
/// (arena indices, resolution counts).
///
/// # Panics
/// Panics when the value does not fit — that is a broken caller bound, not
/// a recoverable condition.
#[inline]
#[must_use]
pub fn bounded_to_u32(n: usize) -> u32 {
    u32::try_from(n).expect("value bounded below 2^32 by caller invariant")
}

/// Small non-negative exponent → `i32` for `powi`.
///
/// # Panics
/// Panics when the exponent exceeds `i32::MAX` — resolution numbers are
/// bounded far below that.
#[inline]
#[must_use]
pub fn powi_exp(h: usize) -> i32 {
    i32::try_from(h).expect("exponent bounded by MAX_RESOLUTIONS invariant")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_conversions() {
        assert_eq!(count_to_f64(0), 0.0);
        assert_eq!(count_to_f64(12_345), 12_345.0);
        assert_eq!(len_to_f64(7), 7.0);
        assert_eq!(usize_to_u64(usize::MAX), usize::MAX as u64);
        assert_eq!(u32_to_usize(u32::MAX), 4_294_967_295);
    }

    #[test]
    fn truncation_saturates() {
        assert_eq!(trunc_to_u64(3.9), 3);
        assert_eq!(trunc_to_u64(-1.0), 0);
        assert_eq!(trunc_to_u64(f64::NAN), 0);
        assert_eq!(trunc_to_u64(1e300), u64::MAX);
        assert_eq!(trunc_to_usize(255.999), 255);
    }

    #[test]
    fn bounded_and_exponent_helpers() {
        assert_eq!(bounded_to_u32(42), 42);
        assert_eq!(powi_exp(63), 63);
    }

    #[test]
    #[should_panic(expected = "invariant")]
    fn bounded_to_u32_panics_past_the_bound() {
        let _ = bounded_to_u32(usize::try_from(u64::from(u32::MAX) + 1).unwrap());
    }
}
