//! Compact axis sets.
//!
//! A cluster's *relevant axes* (`δ_γE_k` in Definition 2) are a subset of the
//! `d` original axes. With `d ≤ 64` the set packs into a single `u64`.

use crate::dataset::MAX_DIMS;

/// A set of axes out of a `d`-dimensional space, packed into a `u64`.
///
/// ```
/// use mrcc_common::AxisMask;
///
/// let a = AxisMask::from_axes(8, [0, 3, 5]);
/// let b = AxisMask::from_axes(8, [3, 7]);
/// assert_eq!(a.count(), 3);
/// assert!(a.contains(3) && !a.contains(1));
/// assert_eq!(a.intersection_count(&b), 1);
/// assert_eq!(a.union(&b).count(), 4);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct AxisMask {
    bits: u64,
    dims: u8,
}

impl AxisMask {
    /// The empty axis set in a `d`-dimensional space.
    ///
    /// # Panics
    /// Panics if `dims` is 0 or exceeds [`MAX_DIMS`]; dimensionality is
    /// validated once at [`crate::Dataset`] construction, so a violation here
    /// is a programming error.
    pub fn empty(dims: usize) -> Self {
        assert!(dims > 0 && dims <= MAX_DIMS, "dims out of range: {dims}");
        AxisMask {
            bits: 0,
            dims: dims as u8,
        }
    }

    /// The full axis set `{e_1, …, e_d}`.
    pub fn full(dims: usize) -> Self {
        let mut m = AxisMask::empty(dims);
        m.bits = if dims == 64 {
            u64::MAX
        } else {
            (1u64 << dims) - 1
        };
        m
    }

    /// Builds a mask from an iterator of axis indices.
    pub fn from_axes(dims: usize, axes: impl IntoIterator<Item = usize>) -> Self {
        let mut m = AxisMask::empty(dims);
        for a in axes {
            m.insert(a);
        }
        m
    }

    /// Builds a mask from a boolean per-axis slice (`V[k]` in the paper).
    pub fn from_bools(flags: &[bool]) -> Self {
        let mut m = AxisMask::empty(flags.len());
        for (j, &f) in flags.iter().enumerate() {
            if f {
                m.insert(j);
            }
        }
        m
    }

    /// Dimensionality of the embedding space (not the set cardinality).
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims as usize
    }

    /// Adds axis `j` to the set.
    ///
    /// # Panics
    /// Panics if `j >= dims`.
    #[inline]
    pub fn insert(&mut self, j: usize) {
        assert!(j < self.dims(), "axis {j} out of range");
        self.bits |= 1u64 << j;
    }

    /// Removes axis `j` from the set.
    #[inline]
    pub fn remove(&mut self, j: usize) {
        assert!(j < self.dims(), "axis {j} out of range");
        self.bits &= !(1u64 << j);
    }

    /// True when axis `j` is in the set.
    #[inline]
    pub fn contains(&self, j: usize) -> bool {
        j < self.dims() && (self.bits >> j) & 1 == 1
    }

    /// Cardinality `δ` — the dimensionality of the cluster.
    #[inline]
    pub fn count(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// True when no axis is in the set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Set union (used when merging β-clusters into correlation clusters:
    /// relevant axes are those relevant to *any* member β-cluster).
    #[inline]
    pub fn union(&self, other: &AxisMask) -> AxisMask {
        debug_assert_eq!(self.dims, other.dims);
        AxisMask {
            bits: self.bits | other.bits,
            dims: self.dims,
        }
    }

    /// Set intersection.
    #[inline]
    pub fn intersection(&self, other: &AxisMask) -> AxisMask {
        debug_assert_eq!(self.dims, other.dims);
        AxisMask {
            bits: self.bits & other.bits,
            dims: self.dims,
        }
    }

    /// Number of axes in both sets (used by the Subspaces Quality metric).
    #[inline]
    pub fn intersection_count(&self, other: &AxisMask) -> usize {
        (self.bits & other.bits).count_ones() as usize
    }

    /// Iterator over the member axis indices, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let bits = self.bits;
        (0..self.dims()).filter(move |&j| (bits >> j) & 1 == 1)
    }

    /// Per-axis boolean representation.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.dims()).map(|j| self.contains(j)).collect()
    }
}

impl std::fmt::Debug for AxisMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AxisMask{{")?;
        let mut first = true;
        for j in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "e{}", j + 1)?;
            first = false;
        }
        write!(f, "}}/{}", self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_ops() {
        let mut m = AxisMask::empty(10);
        assert!(m.is_empty());
        m.insert(0);
        m.insert(9);
        assert!(m.contains(0) && m.contains(9) && !m.contains(5));
        assert_eq!(m.count(), 2);
        m.remove(0);
        assert_eq!(m.count(), 1);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn full_and_64_dims() {
        let f = AxisMask::full(64);
        assert_eq!(f.count(), 64);
        let f5 = AxisMask::full(5);
        assert_eq!(f5.count(), 5);
        assert!(!f5.contains(5));
    }

    #[test]
    fn union_intersection() {
        let a = AxisMask::from_axes(8, [0, 1, 2]);
        let b = AxisMask::from_axes(8, [2, 3]);
        assert_eq!(a.union(&b).count(), 4);
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!(a.intersection_count(&b), 1);
    }

    #[test]
    fn bools_roundtrip() {
        let flags = vec![true, false, true, true];
        let m = AxisMask::from_bools(&flags);
        assert_eq!(m.to_bools(), flags);
    }

    #[test]
    #[should_panic(expected = "axis 8 out of range")]
    fn insert_out_of_range_panics() {
        AxisMask::empty(8).insert(8);
    }

    #[test]
    fn debug_format_names_axes_one_based() {
        let m = AxisMask::from_axes(4, [0, 2]);
        assert_eq!(format!("{m:?}"), "AxisMask{e1,e3}/4");
    }
}
