//! β-box spatial index: per-axis interval stabbing over box bounds.
//!
//! Phase three of MrCC needs, for every dataset point, the set of β-cluster
//! boxes that contain it. Testing every box against every point is
//! `O(β·η·d)` per pass and the old merge phase performed several such
//! passes — `O(β²·η·d)` overall, breaking the paper's linear-time bound
//! (Sec. IV). The [`BoxIndex`] here restores `O(η·(a + c·d))` per scan,
//! where `a` is the number of axes carrying boxes and `c` the number of
//! *candidate* boxes per point: every box is registered once, on its most
//! selective axis, into a uniform 1-d bin grid over `[0,1]`; a stabbing
//! query inspects one bin per registered axis and verifies each candidate
//! with the exact [`BoundingBox::contains`] predicate.
//!
//! Why one axis suffices: a β-cluster box spans the full `[0,1]` range on
//! its irrelevant axes and is confined to a grid-aligned interval (side
//! `2^-level`, possibly stretched by one cell) on every relevant axis —
//! the `center_coords`/`level` provenance each β-cluster carries. The most
//! selective axis therefore covers `O(1)` bins at any bin resolution at or
//! below the cluster's grid level, so registration is cheap and candidate
//! lists stay short. A box with no confined axis (the degenerate unit box)
//! falls back to the `everywhere` list and is tested against every point.

use crate::bbox::BoundingBox;

/// Bins per axis grid: fine enough that a β-box confined at level ≥ 2
/// covers a handful of bins, coarse enough that building the grid is
/// negligible next to one dataset scan.
const MAX_BINS: usize = 4096;

/// One axis' stabbing structure: boxes registered on this axis, bucketed by
/// the uniform bins their interval overlaps.
#[derive(Debug, Clone)]
struct AxisGrid {
    /// The axis this grid stabs along.
    axis: usize,
    /// `bins[b]` lists the ids (ascending) of boxes whose interval on
    /// `axis` overlaps bin `b`.
    bins: Vec<Vec<u32>>,
}

impl AxisGrid {
    fn new(axis: usize, n_bins: usize) -> Self {
        AxisGrid {
            axis,
            bins: vec![Vec::new(); n_bins],
        }
    }

    /// Maps a coordinate into a bin id, clamping anything outside `[0,1)`.
    fn bin(&self, v: f64) -> usize {
        // Saturating float→int cast: negatives clamp to 0; the `.min` below
        // clamps `v ≥ 1.0`.
        ((v * self.bins.len() as f64) as usize).min(self.bins.len() - 1)
    }
}

/// Point-stabbing index over a fixed set of axis-aligned boxes.
///
/// Build once per merge phase with [`BoxIndex::new`], then call
/// [`BoxIndex::containing`] for every point of the single dataset scan.
/// Results are exact (candidates are verified with
/// [`BoundingBox::contains`]) and returned in ascending box-id order, so a
/// scan driven by this index visits boxes in the same order a nested
/// boxes-inner loop would — determinism is preserved by construction.
#[derive(Debug, Clone)]
pub struct BoxIndex {
    boxes: Vec<BoundingBox>,
    grids: Vec<AxisGrid>,
    /// Boxes with no confined axis (interval `[0,1]` everywhere): no axis
    /// can prune them, so they are candidates for every point.
    everywhere: Vec<u32>,
}

impl BoxIndex {
    /// Builds the index over `boxes` (cloned; the index is self-contained).
    ///
    /// Each box is registered on its most selective axis — smallest extent,
    /// ties toward the lower axis index — or into the unprunable
    /// `everywhere` list when every axis spans the full unit interval.
    ///
    /// # Panics
    /// Panics when the boxes disagree on dimensionality, or when a box id
    /// would not fit in `u32` (far beyond any realistic β-cluster count).
    #[must_use]
    pub fn new(boxes: &[BoundingBox]) -> Self {
        let dims = boxes.first().map_or(0, BoundingBox::dims);
        let n_bins = (boxes.len() * 4).clamp(16, MAX_BINS);
        let mut grids: Vec<Option<AxisGrid>> = (0..dims).map(|_| None).collect();
        let mut everywhere: Vec<u32> = Vec::new();
        for (k, b) in boxes.iter().enumerate() {
            assert_eq!(b.dims(), dims, "box {k}: dimensionality mismatch");
            let id = u32::try_from(k).expect("box count fits in u32 by construction invariant");
            let best = (0..dims).min_by(|&i, &j| {
                b.extent(i)
                    .partial_cmp(&b.extent(j))
                    .expect("box extents are finite by BoundingBox invariant")
            });
            match best {
                Some(j) if b.extent(j) < 1.0 => {
                    let grid = grids
                        .get_mut(j)
                        .expect("axis index < dims by loop invariant")
                        .get_or_insert_with(|| AxisGrid::new(j, n_bins));
                    let lo = grid.bin(b.lower(j));
                    let hi = grid.bin(b.upper(j));
                    // xtask-allow: indexing — bin() clamps, and lower ≤ upper
                    for bin in &mut grid.bins[lo..=hi] {
                        bin.push(id);
                    }
                }
                _ => everywhere.push(id),
            }
        }
        BoxIndex {
            boxes: boxes.to_vec(),
            grids: grids.into_iter().flatten().collect(),
            everywhere,
        }
    }

    /// Number of indexed boxes.
    #[must_use]
    pub fn n_boxes(&self) -> usize {
        self.boxes.len()
    }

    /// Collects into `out` the ids of every box containing `point`, in
    /// ascending id order. `out` is cleared first; reuse one buffer across a
    /// scan to stay allocation-free.
    ///
    /// # Panics
    /// Panics when `point` has fewer coordinates than the indexed boxes
    /// (via [`BoundingBox::contains`]).
    pub fn containing(&self, point: &[f64], out: &mut Vec<u32>) {
        out.clear();
        for grid in &self.grids {
            let v = *point
                .get(grid.axis)
                .expect("point dims match box dims by contains() invariant");
            let bin = &grid.bins[grid.bin(v)]; // xtask-allow: indexing — bin() clamps into range
            for &id in bin {
                if self.boxes[id as usize].contains(point) {
                    // xtask-allow: indexing — ids were minted from boxes' indices
                    out.push(id);
                }
            }
        }
        for &id in &self.everywhere {
            if self.boxes[id as usize].contains(point) {
                // xtask-allow: indexing — ids were minted from boxes' indices
                out.push(id);
            }
        }
        // Each box is registered in exactly one structure, so `out` holds no
        // duplicates; sorting restores the global ascending-id order across
        // per-axis lists.
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxes_2d() -> Vec<BoundingBox> {
        vec![
            BoundingBox::new(vec![0.0, 0.0], vec![0.25, 0.25]),
            BoundingBox::new(vec![0.2, 0.2], vec![0.5, 0.5]),
            BoundingBox::new(vec![0.0, 0.0], vec![1.0, 1.0]), // unit box
            BoundingBox::new(vec![0.5, 0.0], vec![0.9, 1.0]), // slab on axis 0
        ]
    }

    fn brute(boxes: &[BoundingBox], p: &[f64]) -> Vec<u32> {
        boxes
            .iter()
            .enumerate()
            .filter(|(_, b)| b.contains(p))
            .map(|(k, _)| u32::try_from(k).unwrap())
            .collect()
    }

    #[test]
    fn matches_brute_force_on_grid_points() {
        let boxes = boxes_2d();
        let index = BoxIndex::new(&boxes);
        assert_eq!(index.n_boxes(), 4);
        let mut out = Vec::new();
        for i in 0..=20 {
            for j in 0..=20 {
                let p = [f64::from(i) / 20.0, f64::from(j) / 20.0];
                index.containing(&p, &mut out);
                assert_eq!(out, brute(&boxes, &p), "point {p:?}");
            }
        }
    }

    #[test]
    fn unit_boxes_are_unprunable_but_still_reported() {
        let boxes = vec![BoundingBox::unit(3), BoundingBox::unit(3)];
        let index = BoxIndex::new(&boxes);
        let mut out = Vec::new();
        index.containing(&[0.3, 0.9, 0.0], &mut out);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn empty_box_set() {
        let index = BoxIndex::new(&[]);
        let mut out = vec![7u32];
        index.containing(&[0.5], &mut out);
        assert!(out.is_empty());
        assert_eq!(index.n_boxes(), 0);
    }

    #[test]
    fn closed_bounds_include_faces() {
        // Face-touching boxes: the shared coordinate belongs to both.
        let boxes = vec![
            BoundingBox::new(vec![0.0], vec![0.5]),
            BoundingBox::new(vec![0.5], vec![1.0]),
        ];
        let index = BoxIndex::new(&boxes);
        let mut out = Vec::new();
        index.containing(&[0.5], &mut out);
        assert_eq!(out, vec![0, 1]);
        index.containing(&[0.49], &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn degenerate_zero_extent_box() {
        let boxes = vec![BoundingBox::new(vec![0.3, 0.7], vec![0.3, 0.7])];
        let index = BoxIndex::new(&boxes);
        let mut out = Vec::new();
        index.containing(&[0.3, 0.7], &mut out);
        assert_eq!(out, vec![0]);
        index.containing(&[0.3, 0.6999], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn nested_boxes_all_reported() {
        let boxes = vec![
            BoundingBox::new(vec![0.1, 0.1], vec![0.9, 0.9]),
            BoundingBox::new(vec![0.3, 0.3], vec![0.7, 0.7]),
            BoundingBox::new(vec![0.45, 0.45], vec![0.55, 0.55]),
        ];
        let index = BoxIndex::new(&boxes);
        let mut out = Vec::new();
        index.containing(&[0.5, 0.5], &mut out);
        assert_eq!(out, vec![0, 1, 2]);
        index.containing(&[0.35, 0.35], &mut out);
        assert_eq!(out, vec![0, 1]);
    }
}
