//! Axis-aligned hyper-rectangles.
//!
//! MrCC describes every β-cluster by per-axis lower/upper bounds (the matrices
//! `L` and `U` of Section III-B); irrelevant axes span the whole `[0,1]`
//! range. Overlap between boxes drives both the "shares data space" check of
//! Algorithm 2 and the β-cluster merge of Algorithm 3.

/// A closed axis-aligned box `[lower_j, upper_j]` for every axis `e_j`.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundingBox {
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl BoundingBox {
    /// The unit box `[0,1]^d` (the paper's default bounds for irrelevant axes).
    pub fn unit(dims: usize) -> Self {
        BoundingBox {
            lower: vec![0.0; dims],
            upper: vec![1.0; dims],
        }
    }

    /// Builds a box from per-axis bounds.
    ///
    /// # Panics
    /// Panics when lengths differ or any `lower_j > upper_j` — the clustering
    /// code only ever produces well-formed boxes, so this is a bug guard.
    pub fn new(lower: Vec<f64>, upper: Vec<f64>) -> Self {
        assert_eq!(lower.len(), upper.len(), "bounds length mismatch");
        for j in 0..lower.len() {
            assert!(
                lower[j] <= upper[j],
                "axis {j}: lower {} > upper {}",
                lower[j],
                upper[j]
            );
        }
        BoundingBox { lower, upper }
    }

    /// Dimensionality of the box.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lower.len()
    }

    /// Lower bound on axis `j` (`L[k][j]`).
    #[inline]
    pub fn lower(&self, j: usize) -> f64 {
        self.lower[j]
    }

    /// Upper bound on axis `j` (`U[k][j]`).
    #[inline]
    pub fn upper(&self, j: usize) -> f64 {
        self.upper[j]
    }

    /// Mutable lower bound (used while refining β-cluster bounds).
    #[inline]
    pub fn set_lower(&mut self, j: usize, v: f64) {
        self.lower[j] = v;
    }

    /// Mutable upper bound.
    #[inline]
    pub fn set_upper(&mut self, j: usize, v: f64) {
        self.upper[j] = v;
    }

    /// The paper's share-space predicate: true iff
    /// `U[k'][j] ≥ L[k''][j] ∧ L[k'][j] ≤ U[k''][j]` for every axis `e_j`.
    ///
    /// # Panics
    /// Panics when the boxes have different dimensionality — in release
    /// builds too; a zip over mismatched bounds would silently truncate to
    /// the shorter box and report geometric nonsense.
    pub fn overlaps(&self, other: &BoundingBox) -> bool {
        assert_eq!(
            self.dims(),
            other.dims(),
            "overlaps: box dimensionality mismatch"
        );
        self.lower
            .iter()
            .zip(&self.upper)
            .zip(other.lower.iter().zip(&other.upper))
            .all(|((&l1, &u1), (&l2, &u2))| u1 >= l2 && l1 <= u2)
    }

    /// Strict variant of [`BoundingBox::overlaps`]: requires an interior
    /// (positive-measure) intersection on every axis — boxes that merely
    /// touch at a face do not count.
    ///
    /// MrCC produces bounds aligned to grid-cell boundaries, so *distinct*
    /// adjacent clusters constantly share a face by construction; the
    /// paper's `≥` formulation would chain-merge them even though their
    /// intersection has zero volume. Share-space checks therefore use this
    /// strict predicate (see DESIGN.md).
    ///
    /// # Panics
    /// Panics when the boxes have different dimensionality (release builds
    /// too, see [`BoundingBox::overlaps`]).
    pub fn overlaps_strict(&self, other: &BoundingBox) -> bool {
        assert_eq!(
            self.dims(),
            other.dims(),
            "overlaps_strict: box dimensionality mismatch"
        );
        self.lower
            .iter()
            .zip(&self.upper)
            .zip(other.lower.iter().zip(&other.upper))
            .all(|((&l1, &u1), (&l2, &u2))| u1 > l2 && l1 < u2)
    }

    /// True when `point` lies inside the box (closed on both sides).
    ///
    /// # Panics
    /// Panics when `point` has a different dimensionality than the box — in
    /// release builds too. The former `debug_assert` let a short point
    /// slice zip-truncate in release, so a 2-d point "fit" a 10-d box
    /// whenever its two coordinates landed inside the first two intervals.
    pub fn contains(&self, point: &[f64]) -> bool {
        assert_eq!(
            self.dims(),
            point.len(),
            "contains: point/box dimensionality mismatch"
        );
        point
            .iter()
            .enumerate()
            .all(|(j, &v)| v >= self.lower[j] && v <= self.upper[j])
    }

    /// Smallest box containing both inputs (the "space of a correlation
    /// cluster is the union of the spaces of its β-clusters" — we expose the
    /// hull for reporting; membership tests still use the exact union).
    ///
    /// # Panics
    /// Panics when the boxes have different dimensionality (release builds
    /// too, see [`BoundingBox::overlaps`]).
    pub fn hull(&self, other: &BoundingBox) -> BoundingBox {
        assert_eq!(
            self.dims(),
            other.dims(),
            "hull: box dimensionality mismatch"
        );
        BoundingBox {
            lower: self
                .lower
                .iter()
                .zip(&other.lower)
                .map(|(&a, &b)| a.min(b))
                .collect(),
            upper: self
                .upper
                .iter()
                .zip(&other.upper)
                .map(|(&a, &b)| a.max(b))
                .collect(),
        }
    }

    /// Side length on axis `j`.
    #[inline]
    pub fn extent(&self, j: usize) -> f64 {
        self.upper[j] - self.lower[j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_box_contains_unit_points() {
        let b = BoundingBox::unit(3);
        assert!(b.contains(&[0.0, 0.5, 0.999]));
        assert!(b.contains(&[1.0, 1.0, 1.0]));
        assert!(!b.contains(&[1.0001, 0.0, 0.0]));
    }

    #[test]
    fn overlap_is_symmetric_and_touching_counts() {
        let a = BoundingBox::new(vec![0.0, 0.0], vec![0.5, 0.5]);
        let b = BoundingBox::new(vec![0.5, 0.0], vec![1.0, 0.5]);
        let c = BoundingBox::new(vec![0.6, 0.6], vec![1.0, 1.0]);
        assert!(a.overlaps(&b) && b.overlaps(&a)); // shared face counts
        assert!(!a.overlaps(&c) && !c.overlaps(&a));
    }

    #[test]
    fn strict_overlap_excludes_touching() {
        let a = BoundingBox::new(vec![0.0, 0.0], vec![0.5, 0.5]);
        let b = BoundingBox::new(vec![0.5, 0.0], vec![1.0, 0.5]);
        let c = BoundingBox::new(vec![0.4, 0.1], vec![0.6, 0.3]);
        assert!(!a.overlaps_strict(&b) && !b.overlaps_strict(&a));
        assert!(a.overlaps_strict(&c) && c.overlaps_strict(&a));
        // Strict implies non-strict.
        assert!(a.overlaps(&c));
    }

    #[test]
    fn overlap_requires_every_axis() {
        // Overlap on axis 0 but disjoint on axis 1 → no overlap.
        let a = BoundingBox::new(vec![0.0, 0.0], vec![1.0, 0.2]);
        let b = BoundingBox::new(vec![0.0, 0.5], vec![1.0, 1.0]);
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn hull_covers_both() {
        let a = BoundingBox::new(vec![0.0, 0.4], vec![0.2, 0.6]);
        let b = BoundingBox::new(vec![0.1, 0.0], vec![0.5, 0.5]);
        let h = a.hull(&b);
        assert_eq!(h.lower(0), 0.0);
        assert_eq!(h.upper(0), 0.5);
        assert_eq!(h.lower(1), 0.0);
        assert_eq!(h.upper(1), 0.6);
        assert!(h.contains(&[0.0, 0.6]) && h.contains(&[0.5, 0.0]));
    }

    #[test]
    #[should_panic(expected = "lower")]
    fn inverted_bounds_panic() {
        BoundingBox::new(vec![0.7], vec![0.3]);
    }

    #[test]
    fn extent_matches_bounds() {
        let b = BoundingBox::new(vec![0.25], vec![0.75]);
        assert!((b.extent(0) - 0.5).abs() < 1e-12);
    }

    // The four guards below must hold in *release* builds too (they were
    // `debug_assert`s once, letting a short point zip-truncate): these tests
    // run under `cargo test --release` / the CI release profile unchanged.

    #[test]
    #[should_panic(expected = "contains: point/box dimensionality mismatch")]
    fn contains_rejects_short_point_in_every_profile() {
        // Pre-fix release behaviour: this 2-d point "fit" the 10-d box.
        let b = BoundingBox::unit(10);
        let _ = b.contains(&[0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "overlaps: box dimensionality mismatch")]
    fn overlaps_rejects_dim_mismatch_in_every_profile() {
        let _ = BoundingBox::unit(3).overlaps(&BoundingBox::unit(2));
    }

    #[test]
    #[should_panic(expected = "overlaps_strict: box dimensionality mismatch")]
    fn overlaps_strict_rejects_dim_mismatch_in_every_profile() {
        let _ = BoundingBox::unit(3).overlaps_strict(&BoundingBox::unit(2));
    }

    #[test]
    #[should_panic(expected = "hull: box dimensionality mismatch")]
    fn hull_rejects_dim_mismatch_in_every_profile() {
        let _ = BoundingBox::unit(2).hull(&BoundingBox::unit(4));
    }
}
