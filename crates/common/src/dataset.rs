//! Dense, row-major dataset store.
//!
//! Definition 1 of the paper: a multi-dimensional dataset `ᵈS` is a set of `η`
//! points in a `d`-dimensional space, with every value in `[0, 1)` so that the
//! whole dataset is embedded in the unit hyper-cube `[0,1)^d`. Real inputs are
//! rarely pre-normalized, so [`Dataset::normalize_unit`] performs the min–max
//! rescale and remembers how to undo it.

use crate::error::{Error, Result};

/// Largest dimensionality the workspace supports.
///
/// The paper targets 5–30 axes; [`crate::AxisMask`] packs axis sets into a
/// `u64`, which comfortably covers that range with headroom.
pub const MAX_DIMS: usize = 64;

/// A dense, row-major collection of `d`-dimensional points.
///
/// ```
/// use mrcc_common::Dataset;
///
/// let mut ds = Dataset::from_rows(&[[1.0, 200.0], [3.0, 150.0]]).unwrap();
/// assert_eq!((ds.len(), ds.dims()), (2, 2));
/// assert!(!ds.is_unit_normalized());
/// let info = ds.normalize_unit().unwrap();
/// assert!(ds.is_unit_normalized());
/// // The transform is invertible.
/// let back = info.denormalize(ds.point(0));
/// assert!((back[0] - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    data: Vec<f64>,
    dims: usize,
}

/// The affine transform applied by [`Dataset::normalize_unit`], kept so points
/// can be mapped back to their original coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizeInfo {
    /// Per-axis minimum of the original data.
    pub min: Vec<f64>,
    /// Per-axis scale: original range stretched so the maximum maps *just
    /// below* 1.0 (the paper's half-open cube `[0,1)`).
    pub scale: Vec<f64>,
}

impl NormalizeInfo {
    /// Maps a normalized point back into original coordinates.
    pub fn denormalize(&self, point: &[f64]) -> Vec<f64> {
        point
            .iter()
            .zip(self.min.iter().zip(&self.scale))
            .map(|(&v, (&mn, &sc))| mn + v * sc)
            .collect()
    }
}

/// Factor keeping normalized maxima strictly below 1.0 (`[0,1)` half-open).
const UNIT_SHRINK: f64 = 1.0 - 1e-9;

impl Dataset {
    /// Creates an empty dataset of the given dimensionality.
    ///
    /// # Errors
    /// [`Error::UnsupportedDimensionality`] if `dims` is 0 or above
    /// [`MAX_DIMS`].
    pub fn new(dims: usize) -> Result<Self> {
        if dims == 0 || dims > MAX_DIMS {
            return Err(Error::UnsupportedDimensionality {
                dims,
                max: MAX_DIMS,
            });
        }
        Ok(Dataset {
            data: Vec::new(),
            dims,
        })
    }

    /// Creates a dataset from a flat row-major buffer.
    ///
    /// # Errors
    /// Fails if the buffer length is not a multiple of `dims`, if `dims` is out
    /// of range, or if any value is not finite.
    pub fn from_flat(dims: usize, data: Vec<f64>) -> Result<Self> {
        if dims == 0 || dims > MAX_DIMS {
            return Err(Error::UnsupportedDimensionality {
                dims,
                max: MAX_DIMS,
            });
        }
        if !data.len().is_multiple_of(dims) {
            return Err(Error::DimensionMismatch {
                expected: dims,
                got: data.len() % dims,
            });
        }
        for (i, v) in data.iter().enumerate() {
            if !v.is_finite() {
                return Err(Error::NonFiniteValue {
                    row: i / dims,
                    col: i % dims,
                });
            }
        }
        Ok(Dataset { data, dims })
    }

    /// Creates a dataset from rows.
    ///
    /// # Errors
    /// Fails on ragged rows, out-of-range dimensionality or non-finite values.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Result<Self> {
        let dims = rows
            .first()
            .map(|r| r.as_ref().len())
            .ok_or(Error::EmptyDataset)?;
        let mut ds = Dataset::new(dims)?;
        ds.data.reserve(dims * rows.len());
        for row in rows {
            ds.push(row.as_ref())?;
        }
        Ok(ds)
    }

    /// Appends one point.
    ///
    /// # Errors
    /// Fails if the point has the wrong dimensionality or non-finite values.
    pub fn push(&mut self, point: &[f64]) -> Result<()> {
        if point.len() != self.dims {
            return Err(Error::DimensionMismatch {
                expected: self.dims,
                got: point.len(),
            });
        }
        if let Some(col) = point.iter().position(|v| !v.is_finite()) {
            return Err(Error::NonFiniteValue {
                row: self.len(),
                col,
            });
        }
        self.data.extend_from_slice(point);
        Ok(())
    }

    /// Number of points `η`.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dims
    }

    /// True when the dataset holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality `d` of the embedding space.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Borrow point `i` as a slice of `d` coordinates.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.data[i * self.dims..(i + 1) * self.dims]
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Iterator over all points.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.dims)
    }

    /// Per-axis minima and maxima, or `None` for an empty dataset.
    pub fn bounds(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        if self.is_empty() {
            return None;
        }
        let mut min = self.point(0).to_vec();
        let mut max = min.clone();
        for p in self.iter().skip(1) {
            for j in 0..self.dims {
                if p[j] < min[j] {
                    min[j] = p[j];
                }
                if p[j] > max[j] {
                    max[j] = p[j];
                }
            }
        }
        Some((min, max))
    }

    /// True when every value already lies in `[0, 1)`.
    pub fn is_unit_normalized(&self) -> bool {
        self.data.iter().all(|&v| (0.0..1.0).contains(&v))
    }

    /// Min–max normalizes every axis into `[0, 1)` in place, returning the
    /// applied transform. Constant axes map to `0.0`.
    ///
    /// # Errors
    /// [`Error::EmptyDataset`] when there are no points.
    pub fn normalize_unit(&mut self) -> Result<NormalizeInfo> {
        let (min, max) = self.bounds().ok_or(Error::EmptyDataset)?;
        let scale: Vec<f64> = min
            .iter()
            .zip(&max)
            .map(|(&mn, &mx)| {
                let range = mx - mn;
                if range > 0.0 {
                    range / UNIT_SHRINK
                } else {
                    1.0
                }
            })
            .collect();
        let dims = self.dims;
        for p in self.data.chunks_exact_mut(dims) {
            for j in 0..dims {
                p[j] = (p[j] - min[j]) / scale[j];
                // Guard against floating rounding pushing a maximum to 1.0.
                if p[j] >= 1.0 {
                    p[j] = UNIT_SHRINK;
                }
                if p[j] < 0.0 {
                    p[j] = 0.0;
                }
            }
        }
        Ok(NormalizeInfo { min, scale })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_rows(&[[0.0, 10.0], [5.0, 20.0], [10.0, 40.0]]).unwrap()
    }

    #[test]
    fn from_rows_roundtrip() {
        let ds = sample();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dims(), 2);
        assert_eq!(ds.point(1), &[5.0, 20.0]);
        assert_eq!(ds.iter().count(), 3);
    }

    #[test]
    fn rejects_ragged_rows() {
        let mut ds = Dataset::new(2).unwrap();
        ds.push(&[1.0, 2.0]).unwrap();
        assert!(matches!(
            ds.push(&[1.0]),
            Err(Error::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn rejects_nan() {
        let mut ds = Dataset::new(2).unwrap();
        assert!(matches!(
            ds.push(&[f64::NAN, 0.0]),
            Err(Error::NonFiniteValue { row: 0, col: 0 })
        ));
        assert!(Dataset::from_flat(1, vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn rejects_zero_and_huge_dims() {
        assert!(Dataset::new(0).is_err());
        assert!(Dataset::new(MAX_DIMS + 1).is_err());
        assert!(Dataset::new(MAX_DIMS).is_ok());
    }

    #[test]
    fn from_flat_checks_multiple() {
        assert!(Dataset::from_flat(3, vec![0.0; 7]).is_err());
        assert!(Dataset::from_flat(3, vec![0.0; 9]).is_ok());
    }

    #[test]
    fn bounds_are_tight() {
        let ds = sample();
        let (min, max) = ds.bounds().unwrap();
        assert_eq!(min, vec![0.0, 10.0]);
        assert_eq!(max, vec![10.0, 40.0]);
    }

    #[test]
    fn normalize_maps_into_half_open_unit_cube() {
        let mut ds = sample();
        let info = ds.normalize_unit().unwrap();
        assert!(ds.is_unit_normalized());
        // Minimum maps to 0, maximum strictly below 1.
        assert_eq!(ds.point(0)[0], 0.0);
        assert!(ds.point(2)[0] < 1.0 && ds.point(2)[0] > 0.999);
        // Round trip through the recorded transform.
        let back = info.denormalize(ds.point(1));
        assert!((back[0] - 5.0).abs() < 1e-9);
        assert!((back[1] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn normalize_constant_axis_goes_to_zero() {
        let mut ds = Dataset::from_rows(&[[3.0, 1.0], [3.0, 2.0]]).unwrap();
        ds.normalize_unit().unwrap();
        assert_eq!(ds.point(0)[0], 0.0);
        assert_eq!(ds.point(1)[0], 0.0);
    }

    #[test]
    fn normalize_empty_fails() {
        let mut ds = Dataset::new(2).unwrap();
        assert!(matches!(ds.normalize_unit(), Err(Error::EmptyDataset)));
    }
}
