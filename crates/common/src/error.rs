//! Error type shared across the workspace.

use std::fmt;

/// Result alias using the workspace [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while building datasets or running the clustering stack.
#[derive(Debug)]
pub enum Error {
    /// A point had a different dimensionality than the dataset.
    DimensionMismatch {
        /// Dimensionality the dataset expects.
        expected: usize,
        /// Dimensionality that was supplied.
        got: usize,
    },
    /// The dataset is empty but the operation needs at least one point.
    EmptyDataset,
    /// Dimensionality outside the supported range.
    UnsupportedDimensionality {
        /// The offending dimensionality.
        dims: usize,
        /// Maximum supported dimensionality.
        max: usize,
    },
    /// An input parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// A value was not finite (NaN or infinite) where a finite value is required.
    NonFiniteValue {
        /// Row index of the offending value.
        row: usize,
        /// Column (axis) index of the offending value.
        col: usize,
    },
    /// Failure while parsing CSV input.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Description of the parse failure.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            Error::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            Error::UnsupportedDimensionality { dims, max } => {
                write!(f, "dimensionality {dims} unsupported (max {max})")
            }
            Error::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            Error::NonFiniteValue { row, col } => {
                write!(f, "non-finite value at row {row}, column {col}")
            }
            Error::Csv { line, message } => write!(f, "csv parse error at line {line}: {message}"),
            Error::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::DimensionMismatch {
            expected: 3,
            got: 5,
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 3, got 5");
        let e = Error::Csv {
            line: 7,
            message: "bad float".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error as _;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(e.source().is_some());
    }
}
