//! Approved floating-point comparison helpers.
//!
//! The repository forbids raw `==`/`!=` on floats outside this module (see
//! the `float-eq` lint in `crates/xtask`). These helpers spell out which
//! notion of equality a call site means: exact bit-for-bit equality against
//! a sentinel value, or closeness within a tolerance.

/// Default absolute tolerance for [`approx_eq`]: loose enough to absorb a
/// few ulps of drift through log-space accumulations, tight enough that
/// distinct grid coordinates (multiples of `2^-H`, `H <= 40`) never alias.
pub const DEFAULT_EPS: f64 = 1e-12;

/// `true` when `a` and `b` are within `eps` absolutely, or within `eps`
/// relative to the larger magnitude (covers both tiny and huge operands).
#[must_use]
pub fn approx_eq_eps(a: f64, b: f64, eps: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= eps {
        return true;
    }
    diff <= eps * a.abs().max(b.abs())
}

/// [`approx_eq_eps`] with [`DEFAULT_EPS`].
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_eps(a, b, DEFAULT_EPS)
}

/// `true` when `x` is within [`DEFAULT_EPS`] of zero.
#[must_use]
pub fn near_zero(x: f64) -> bool {
    x.abs() <= DEFAULT_EPS
}

/// Exact equality against a sentinel/boundary value (`0.0`, `1.0`, …).
///
/// Probability parameters and normalized coordinates use exact boundary
/// values deliberately (e.g. `Binomial::new(n, 0.0)`); this helper exists so
/// such comparisons are named rather than written as raw `==`.
#[must_use]
pub fn exactly(x: f64, sentinel: f64) -> bool {
    x == sentinel
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(1.0, 1.0 + 1e-13));
        assert!(!approx_eq(1.0, 1.0 + 1e-9));
        // Relative branch: 1e9 vs 1e9*(1+1e-13).
        assert!(approx_eq(1.0e9, 1.0e9 * (1.0 + 1e-13)));
        assert!(!approx_eq(1.0e9, 1.0e9 + 1.0));
    }

    #[test]
    fn near_zero_and_exactly() {
        assert!(near_zero(0.0));
        assert!(near_zero(-1e-13));
        assert!(!near_zero(1e-6));
        assert!(exactly(0.0, 0.0));
        assert!(exactly(-0.0, 0.0));
        assert!(!exactly(f64::NAN, f64::NAN));
    }
}
