//! The shared clustering result type.
//!
//! Every method in the workspace — MrCC and all baselines — emits a
//! [`SubspaceClustering`]: a list of disjoint clusters, each pairing a point
//! set `δ_γS_k` with its relevant axes `δ_γE_k` (Definition 2), plus an
//! implicit noise set (every point assigned to no cluster). This is exactly
//! the structure the evaluation metrics of Section IV-A consume.

use crate::mask::AxisMask;

/// Label used for noise points in [`SubspaceClustering::labels`].
pub const NOISE: i32 = -1;

/// One correlation/projected cluster: members + relevant axes.
#[derive(Debug, Clone)]
pub struct SubspaceCluster {
    /// Indices of member points, ascending and unique.
    pub points: Vec<usize>,
    /// Axes relevant to the cluster.
    pub axes: AxisMask,
}

impl SubspaceCluster {
    /// Creates a cluster, normalizing the member list to sorted-unique order.
    pub fn new(mut points: Vec<usize>, axes: AxisMask) -> Self {
        points.sort_unstable();
        points.dedup();
        SubspaceCluster { points, axes }
    }

    /// Number of member points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the cluster has no members.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Cluster dimensionality `δ` (cardinality of the relevant axis set).
    pub fn dimensionality(&self) -> usize {
        self.axes.count()
    }
}

/// A full clustering of a dataset of `n_points` points in `dims` axes.
#[derive(Debug, Clone)]
#[must_use = "a SubspaceClustering is the result of a fit; dropping it discards the labels"]
pub struct SubspaceClustering {
    n_points: usize,
    dims: usize,
    clusters: Vec<SubspaceCluster>,
}

impl SubspaceClustering {
    /// Creates an empty (all-noise) clustering.
    pub fn empty(n_points: usize, dims: usize) -> Self {
        SubspaceClustering {
            n_points,
            dims,
            clusters: Vec::new(),
        }
    }

    /// Creates a clustering from clusters.
    ///
    /// # Panics
    /// Panics if any member index is out of range, any cluster's mask has the
    /// wrong dimensionality, or two clusters share a point — Definition 2
    /// requires disjoint point sets.
    pub fn new(n_points: usize, dims: usize, clusters: Vec<SubspaceCluster>) -> Self {
        let mut seen = vec![false; n_points];
        for (k, c) in clusters.iter().enumerate() {
            assert_eq!(c.axes.dims(), dims, "cluster {k}: axis mask dims mismatch");
            for &p in &c.points {
                assert!(p < n_points, "cluster {k}: point {p} out of range");
                assert!(!seen[p], "point {p} assigned to two clusters");
                seen[p] = true;
            }
        }
        SubspaceClustering {
            n_points,
            dims,
            clusters,
        }
    }

    /// Builds a clustering from a per-point label vector (`NOISE` = noise) and
    /// per-label axis masks. Labels must be `0..masks.len()` or `NOISE`.
    pub fn from_labels(labels: &[i32], masks: &[AxisMask], dims: usize) -> Self {
        let mut points: Vec<Vec<usize>> = vec![Vec::new(); masks.len()];
        for (i, &l) in labels.iter().enumerate() {
            if l != NOISE {
                points[l as usize].push(i);
            }
        }
        let clusters = points
            .into_iter()
            .zip(masks.iter().copied())
            .map(|(pts, axes)| SubspaceCluster::new(pts, axes))
            .filter(|c| !c.is_empty())
            .collect();
        SubspaceClustering::new(labels.len(), dims, clusters)
    }

    /// Number of points in the underlying dataset.
    pub fn n_points(&self) -> usize {
        self.n_points
    }

    /// Dimensionality of the embedding space.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The clusters.
    pub fn clusters(&self) -> &[SubspaceCluster] {
        &self.clusters
    }

    /// Number of clusters (`γk` for a found clustering, `rk` for ground truth).
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// True when no cluster was found (everything is noise).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Per-point labels: cluster index, or [`NOISE`].
    pub fn labels(&self) -> Vec<i32> {
        let mut labels = vec![NOISE; self.n_points];
        for (k, c) in self.clusters.iter().enumerate() {
            for &p in &c.points {
                labels[p] = k as i32;
            }
        }
        labels
    }

    /// Indices of noise points (assigned to no cluster).
    pub fn noise(&self) -> Vec<usize> {
        let labels = self.labels();
        (0..self.n_points).filter(|&i| labels[i] == NOISE).collect()
    }

    /// Total points assigned to some cluster.
    pub fn n_clustered(&self) -> usize {
        self.clusters.iter().map(SubspaceCluster::len).sum()
    }

    /// Re-verifies the structural invariants of Definition 2 on the stored
    /// state: member indices in range, member lists sorted and duplicate-free,
    /// axis masks of the embedding width, and pairwise-disjoint point sets.
    ///
    /// [`SubspaceClustering::new`] establishes these properties at
    /// construction; this method re-checks them after the fact so property
    /// tests can catch any code path that mutates a clustering into an
    /// inconsistent state. Compiled only with the `strict-invariants` feature.
    ///
    /// # Panics
    /// Panics on the first violated invariant.
    #[cfg(feature = "strict-invariants")]
    pub fn check_invariants(&self) {
        let mut seen = vec![false; self.n_points];
        for (k, c) in self.clusters.iter().enumerate() {
            assert_eq!(
                c.axes.dims(),
                self.dims,
                "invariant violated: cluster {k} axis mask has wrong dimensionality"
            );
            assert!(
                c.points.windows(2).all(|w| w[0] < w[1]),
                "invariant violated: cluster {k} member list not sorted-unique"
            );
            for &p in &c.points {
                assert!(
                    p < self.n_points,
                    "invariant violated: cluster {k} member {p} out of range"
                );
                assert!(
                    !seen[p],
                    "invariant violated: point {p} assigned to two clusters"
                );
                seen[p] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask(dims: usize, axes: &[usize]) -> AxisMask {
        AxisMask::from_axes(dims, axes.iter().copied())
    }

    #[test]
    fn labels_roundtrip() {
        let c = SubspaceClustering::new(
            6,
            3,
            vec![
                SubspaceCluster::new(vec![0, 1], mask(3, &[0, 1])),
                SubspaceCluster::new(vec![4, 3], mask(3, &[2])),
            ],
        );
        assert_eq!(c.labels(), vec![0, 0, NOISE, 1, 1, NOISE]);
        assert_eq!(c.noise(), vec![2, 5]);
        assert_eq!(c.n_clustered(), 4);

        let rebuilt =
            SubspaceClustering::from_labels(&c.labels(), &[mask(3, &[0, 1]), mask(3, &[2])], 3);
        assert_eq!(rebuilt.labels(), c.labels());
    }

    #[test]
    fn members_are_normalized() {
        let c = SubspaceCluster::new(vec![3, 1, 3, 2], mask(2, &[0]));
        assert_eq!(c.points, vec![1, 2, 3]);
        assert_eq!(c.dimensionality(), 1);
    }

    #[test]
    #[should_panic(expected = "two clusters")]
    fn overlapping_clusters_panic() {
        let _ = SubspaceClustering::new(
            3,
            2,
            vec![
                SubspaceCluster::new(vec![0, 1], mask(2, &[0])),
                SubspaceCluster::new(vec![1, 2], mask(2, &[1])),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_point_panics() {
        let _ = SubspaceClustering::new(2, 2, vec![SubspaceCluster::new(vec![5], mask(2, &[0]))]);
    }

    #[test]
    fn from_labels_drops_empty_clusters() {
        let labels = vec![NOISE, 1, 1];
        let masks = [mask(2, &[0]), mask(2, &[1])];
        let c = SubspaceClustering::from_labels(&labels, &masks, 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.clusters()[0].points, vec![1, 2]);
    }

    #[test]
    fn empty_clustering_is_all_noise() {
        let c = SubspaceClustering::empty(4, 3);
        assert!(c.is_empty());
        assert_eq!(c.noise().len(), 4);
    }
}
