//! Property-based invariants of the dataset substrate.

use mrcc_common::{csv, AxisMask, BoundingBox, Dataset};
use proptest::prelude::*;

fn rows_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..=6).prop_flat_map(|d| {
        proptest::collection::vec(proptest::collection::vec(-1e6f64..1e6, d..=d), 1..60)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Normalization always lands in [0,1) and round-trips through the
    /// recorded transform.
    #[test]
    fn normalize_roundtrip(rows in rows_strategy()) {
        let mut ds = Dataset::from_rows(&rows).unwrap();
        let original = ds.clone();
        let info = ds.normalize_unit().unwrap();
        prop_assert!(ds.is_unit_normalized());
        // Constant axes collapse to 0 and cannot round-trip; skip those.
        let (mins, maxs) = original.bounds().unwrap();
        for i in 0..ds.len() {
            let back = info.denormalize(ds.point(i));
            for j in 0..ds.dims() {
                if maxs[j] > mins[j] {
                    let (a, b) = (back[j], original.point(i)[j]);
                    prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()), "{a} vs {b}");
                }
            }
        }
    }

    /// CSV round-trips datasets and labels bit-exactly enough (1e-12).
    #[test]
    fn csv_roundtrip(rows in rows_strategy()) {
        let ds = Dataset::from_rows(&rows).unwrap();
        let labels: Vec<i32> = (0..ds.len()).map(|i| (i % 3) as i32 - 1).collect();
        let mut buf = Vec::new();
        csv::write_dataset(&mut buf, &ds, Some(&labels)).unwrap();
        let (back, back_labels) = csv::read_labeled_dataset(&buf[..]).unwrap();
        prop_assert_eq!(back_labels, labels);
        prop_assert_eq!(back.len(), ds.len());
        for i in 0..ds.len() {
            for (a, b) in back.point(i).iter().zip(ds.point(i)) {
                prop_assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()));
            }
        }
    }

    /// Box overlap is symmetric and strict overlap implies overlap.
    #[test]
    fn bbox_overlap_laws(
        lo1 in proptest::collection::vec(0.0f64..0.9, 3),
        lo2 in proptest::collection::vec(0.0f64..0.9, 3),
        ext1 in proptest::collection::vec(0.01f64..0.5, 3),
        ext2 in proptest::collection::vec(0.01f64..0.5, 3),
    ) {
        let hi1: Vec<f64> = lo1.iter().zip(&ext1).map(|(l, e)| (l + e).min(1.0)).collect();
        let hi2: Vec<f64> = lo2.iter().zip(&ext2).map(|(l, e)| (l + e).min(1.0)).collect();
        let a = BoundingBox::new(lo1, hi1);
        let b = BoundingBox::new(lo2, hi2);
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        prop_assert_eq!(a.overlaps_strict(&b), b.overlaps_strict(&a));
        if a.overlaps_strict(&b) {
            prop_assert!(a.overlaps(&b));
        }
        // Every box overlaps itself (strictly, since extents are positive).
        prop_assert!(a.overlaps_strict(&a));
    }

    /// Hull contains both inputs' corners.
    #[test]
    fn bbox_hull_contains_corners(
        lo in proptest::collection::vec(0.0f64..0.5, 2),
        ext in proptest::collection::vec(0.01f64..0.4, 2),
    ) {
        let hi: Vec<f64> = lo.iter().zip(&ext).map(|(l, e)| l + e).collect();
        let a = BoundingBox::new(lo.clone(), hi.clone());
        let b = BoundingBox::unit(2);
        let h = a.hull(&b);
        prop_assert!(h.contains(&lo));
        prop_assert!(h.contains(&hi));
        prop_assert!(h.contains(&[0.0, 0.0]) && h.contains(&[1.0, 1.0]));
    }

    /// Clusterings built from arbitrary label vectors satisfy the structural
    /// invariants of Definition 2 and round-trip through `labels()`.
    #[test]
    fn clustering_from_labels_is_valid(
        labels in proptest::collection::vec(-1i32..4, 1..80),
        d in 1usize..=8,
    ) {
        use mrcc_common::SubspaceClustering;
        let masks: Vec<AxisMask> = (0..4).map(|k| {
            AxisMask::from_axes(d, [k % d])
        }).collect();
        let c = SubspaceClustering::from_labels(&labels, &masks, d);
        #[cfg(feature = "strict-invariants")]
        c.check_invariants();
        prop_assert_eq!(c.n_points(), labels.len());
        prop_assert!(c.n_clustered() + c.noise().len() == labels.len());
    }

    /// AxisMask set algebra: union/intersection counts and De Morgan-ish
    /// bounds.
    #[test]
    fn axis_mask_set_laws(
        d in 1usize..=64,
        bits_a in proptest::collection::vec(any::<bool>(), 64),
        bits_b in proptest::collection::vec(any::<bool>(), 64),
    ) {
        let a = AxisMask::from_bools(&bits_a[..d]);
        let b = AxisMask::from_bools(&bits_b[..d]);
        let u = a.union(&b);
        let i = a.intersection(&b);
        prop_assert_eq!(u.count() + i.count(), a.count() + b.count());
        prop_assert_eq!(i.count(), a.intersection_count(&b));
        prop_assert!(u.count() >= a.count().max(b.count()));
        prop_assert!(i.count() <= a.count().min(b.count()));
        for j in 0..d {
            prop_assert_eq!(u.contains(j), a.contains(j) || b.contains(j));
            prop_assert_eq!(i.contains(j), a.contains(j) && b.contains(j));
        }
        // Round trip through bools.
        prop_assert_eq!(AxisMask::from_bools(&a.to_bools()), a);
    }
}
