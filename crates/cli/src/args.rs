//! Hand-rolled argument parsing (no external CLI crate).
//!
//! Grammar: `mrcc <command> [--flag value]...`. Every flag takes exactly one
//! value; unknown flags and missing values are hard errors with a hint.

use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::CliResult;

/// Which clustering method `mrcc cluster` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodChoice {
    /// MrCC (default).
    MrCC,
    /// LAC (needs `--clusters`).
    Lac,
    /// EPCH (needs `--clusters`).
    Epch,
    /// CFPC / DOC (needs `--clusters`).
    Cfpc,
    /// P3C.
    P3c,
    /// HARP (needs `--clusters`; uses `--noise` when given).
    Harp,
    /// CLIQUE.
    Clique,
    /// PROCLUS (needs `--clusters`).
    Proclus,
    /// STING (full-space grid; low-dimensional data only).
    Sting,
}

impl MethodChoice {
    fn parse(s: &str) -> CliResult<Self> {
        Ok(match s.to_ascii_lowercase().as_str() {
            "mrcc" => MethodChoice::MrCC,
            "lac" => MethodChoice::Lac,
            "epch" => MethodChoice::Epch,
            "cfpc" | "doc" => MethodChoice::Cfpc,
            "p3c" => MethodChoice::P3c,
            "harp" => MethodChoice::Harp,
            "clique" => MethodChoice::Clique,
            "proclus" => MethodChoice::Proclus,
            "sting" => MethodChoice::Sting,
            other => {
                return Err(format!(
                    "unknown method `{other}` (mrcc, lac, epch, cfpc, p3c, harp, clique, proclus, sting)"
                ))
            }
        })
    }

    /// Whether the method requires the target cluster count.
    pub fn needs_k(&self) -> bool {
        matches!(
            self,
            MethodChoice::Lac
                | MethodChoice::Epch
                | MethodChoice::Cfpc
                | MethodChoice::Harp
                | MethodChoice::Proclus
        )
    }
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `mrcc cluster`: read a CSV, cluster, write labels.
    Cluster {
        /// Input CSV of raw features.
        input: PathBuf,
        /// Output CSV (features + trailing label column); stdout when absent.
        output: Option<PathBuf>,
        /// Clustering method.
        method: MethodChoice,
        /// MrCC significance level α.
        alpha: f64,
        /// MrCC resolution count H.
        resolutions: usize,
        /// Cluster count for methods that need one.
        clusters: Option<usize>,
        /// Known noise fraction (HARP).
        noise: f64,
        /// Worker threads for MrCC's parallel execution mode (1 = serial;
        /// results are bit-identical for every value).
        threads: usize,
        /// Emit a JSON cluster summary instead of prose.
        json: bool,
    },
    /// `mrcc generate`: write a synthetic dataset (+ ground-truth labels).
    Generate {
        /// Space dimensionality.
        dims: usize,
        /// Number of points.
        points: usize,
        /// Number of hidden clusters.
        clusters: usize,
        /// Noise fraction.
        noise: f64,
        /// Random plane rotations.
        rotations: usize,
        /// RNG seed.
        seed: u64,
        /// Output CSV path; stdout when absent.
        output: Option<PathBuf>,
    },
    /// `mrcc evaluate`: score a labeled clustering against labeled truth.
    Evaluate {
        /// CSV with found labels in the last column.
        found: PathBuf,
        /// CSV with ground-truth labels in the last column.
        truth: PathBuf,
        /// Emit JSON.
        json: bool,
    },
    /// `mrcc info`: dataset shape and per-axis ranges.
    Info {
        /// Input CSV.
        input: PathBuf,
    },
    /// `mrcc help` or `--help`.
    Help,
}

/// Usage text shown by `mrcc help` and on parse errors.
pub const USAGE: &str = "\
usage: mrcc <command> [options]

commands:
  cluster   --input FILE [--output FILE] [--method mrcc|lac|epch|cfpc|p3c|harp|clique|proclus|sting]
            [--alpha 1e-10] [--resolutions 4] [--clusters K] [--noise 0.15]
            [--threads 1] [--json true]
  generate  --dims D --points N --clusters K [--noise 0.15] [--rotations 0]
            [--seed 42] [--output FILE]
  evaluate  --found FILE --truth FILE [--json true]
  info      --input FILE
  help
";

/// Splits `--flag value` pairs into a map; rejects unknown shapes.
fn flag_map(args: &[String]) -> CliResult<BTreeMap<String, String>> {
    let mut map = BTreeMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected a --flag, got `{flag}`\n{USAGE}"));
        };
        let Some(value) = it.next() else {
            return Err(format!("flag --{name} needs a value\n{USAGE}"));
        };
        if map.insert(name.to_string(), value.clone()).is_some() {
            return Err(format!("flag --{name} given twice"));
        }
    }
    Ok(map)
}

fn take<T: std::str::FromStr>(
    map: &mut BTreeMap<String, String>,
    name: &str,
) -> CliResult<Option<T>> {
    match map.remove(name) {
        None => Ok(None),
        Some(v) => v
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("flag --{name}: cannot parse `{v}`")),
    }
}

fn require<T: std::str::FromStr>(map: &mut BTreeMap<String, String>, name: &str) -> CliResult<T> {
    take(map, name)?.ok_or_else(|| format!("missing required flag --{name}\n{USAGE}"))
}

fn reject_leftovers(map: BTreeMap<String, String>) -> CliResult<()> {
    if let Some(name) = map.into_keys().next() {
        return Err(format!("unknown flag --{name}\n{USAGE}"));
    }
    Ok(())
}

/// Parses a full argument vector (without the program name).
pub fn parse_args(args: &[String]) -> CliResult<Command> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "cluster" => {
            let mut map = flag_map(rest)?;
            let command = Command::Cluster {
                input: require::<PathBuf>(&mut map, "input")?,
                output: take::<PathBuf>(&mut map, "output")?,
                method: MethodChoice::parse(
                    &take::<String>(&mut map, "method")?.unwrap_or_else(|| "mrcc".into()),
                )?,
                alpha: take(&mut map, "alpha")?.unwrap_or(1e-10),
                resolutions: take(&mut map, "resolutions")?.unwrap_or(4),
                clusters: take(&mut map, "clusters")?,
                noise: take(&mut map, "noise")?.unwrap_or(0.15),
                threads: take(&mut map, "threads")?.unwrap_or(1),
                json: take(&mut map, "json")?.unwrap_or(false),
            };
            reject_leftovers(map)?;
            if let Command::Cluster {
                method, clusters, ..
            } = &command
            {
                if method.needs_k() && clusters.is_none() {
                    return Err(format!("method {method:?} requires --clusters K"));
                }
            }
            Ok(command)
        }
        "generate" => {
            let mut map = flag_map(rest)?;
            let command = Command::Generate {
                dims: require(&mut map, "dims")?,
                points: require(&mut map, "points")?,
                clusters: require(&mut map, "clusters")?,
                noise: take(&mut map, "noise")?.unwrap_or(0.15),
                rotations: take(&mut map, "rotations")?.unwrap_or(0),
                seed: take(&mut map, "seed")?.unwrap_or(42),
                output: take::<PathBuf>(&mut map, "output")?,
            };
            reject_leftovers(map)?;
            Ok(command)
        }
        "evaluate" => {
            let mut map = flag_map(rest)?;
            let command = Command::Evaluate {
                found: require::<PathBuf>(&mut map, "found")?,
                truth: require::<PathBuf>(&mut map, "truth")?,
                json: take(&mut map, "json")?.unwrap_or(false),
            };
            reject_leftovers(map)?;
            Ok(command)
        }
        "info" => {
            let mut map = flag_map(rest)?;
            let command = Command::Info {
                input: require::<PathBuf>(&mut map, "input")?,
            };
            reject_leftovers(map)?;
            Ok(command)
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn empty_args_show_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&v(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn cluster_defaults() {
        let c = parse_args(&v(&["cluster", "--input", "a.csv"])).unwrap();
        match c {
            Command::Cluster {
                input,
                method,
                alpha,
                resolutions,
                threads,
                json,
                ..
            } => {
                assert_eq!(input, PathBuf::from("a.csv"));
                assert_eq!(method, MethodChoice::MrCC);
                assert_eq!(alpha, 1e-10);
                assert_eq!(resolutions, 4);
                assert_eq!(threads, 1);
                assert!(!json);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn cluster_threads_flag() {
        let c = parse_args(&v(&["cluster", "--input", "a.csv", "--threads", "4"])).unwrap();
        match c {
            Command::Cluster { threads, .. } => assert_eq!(threads, 4),
            other => panic!("wrong parse: {other:?}"),
        }
        let err =
            parse_args(&v(&["cluster", "--input", "a.csv", "--threads", "lots"])).unwrap_err();
        assert!(err.contains("--threads"));
    }

    #[test]
    fn cluster_full_flags() {
        let c = parse_args(&v(&[
            "cluster",
            "--input",
            "a.csv",
            "--output",
            "b.csv",
            "--method",
            "lac",
            "--clusters",
            "7",
            "--alpha",
            "1e-5",
            "--json",
            "true",
        ]))
        .unwrap();
        match c {
            Command::Cluster {
                method,
                clusters,
                alpha,
                json,
                output,
                ..
            } => {
                assert_eq!(method, MethodChoice::Lac);
                assert_eq!(clusters, Some(7));
                assert_eq!(alpha, 1e-5);
                assert!(json);
                assert_eq!(output, Some(PathBuf::from("b.csv")));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn k_requiring_methods_enforce_clusters() {
        let err = parse_args(&v(&["cluster", "--input", "a.csv", "--method", "harp"])).unwrap_err();
        assert!(err.contains("--clusters"));
    }

    #[test]
    fn unknown_flags_rejected() {
        let err = parse_args(&v(&["cluster", "--input", "a.csv", "--wat", "1"])).unwrap_err();
        assert!(err.contains("--wat"));
        let err = parse_args(&v(&["cluster", "--input"])).unwrap_err();
        assert!(err.contains("needs a value"));
        let err = parse_args(&v(&["frobnicate"])).unwrap_err();
        assert!(err.contains("unknown command"));
    }

    #[test]
    fn duplicate_flags_rejected() {
        let err = parse_args(&v(&["cluster", "--input", "a.csv", "--input", "b.csv"])).unwrap_err();
        assert!(err.contains("twice"));
    }

    #[test]
    fn generate_requires_shape() {
        let err = parse_args(&v(&["generate", "--dims", "5"])).unwrap_err();
        assert!(err.contains("--points"));
        let ok = parse_args(&v(&[
            "generate",
            "--dims",
            "5",
            "--points",
            "100",
            "--clusters",
            "2",
        ]))
        .unwrap();
        assert!(matches!(
            ok,
            Command::Generate {
                dims: 5,
                points: 100,
                clusters: 2,
                ..
            }
        ));
    }

    #[test]
    fn method_aliases() {
        assert_eq!(MethodChoice::parse("doc").unwrap(), MethodChoice::Cfpc);
        assert_eq!(MethodChoice::parse("MrCC").unwrap(), MethodChoice::MrCC);
        assert!(MethodChoice::parse("statpc").is_err());
    }
}
