//! The `mrcc` command-line tool. All logic lives in the `mrcc-cli` library.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match mrcc_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = mrcc_cli::run(command, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
