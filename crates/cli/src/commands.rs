//! Command implementations.
//!
//! Every command writes human-readable (or `--json true`) output to the
//! given writer, so tests can capture it.

use std::io::Write;
use std::path::Path;

use mrcc::{MrCC, MrCCConfig};
use mrcc_baselines::{
    Clique, Doc, DocConfig, Epch, EpchConfig, Harp, HarpConfig, Lac, LacConfig, P3c, Proclus,
    ProclusConfig, Sting, SubspaceClusterer,
};
use mrcc_common::{csv, Dataset, SubspaceClustering};
use mrcc_datagen::{generate, SyntheticSpec};
use mrcc_eval::{quality, subspace_quality};

use crate::args::{Command, MethodChoice};
use crate::CliResult;

/// Runs a parsed command, writing its report to `out`.
///
/// # Errors
/// User-facing error strings (bad files, invalid parameters).
pub fn run(command: Command, out: &mut dyn Write) -> CliResult<()> {
    match command {
        Command::Help => {
            write!(out, "{}", crate::args::USAGE).map_err(|e| e.to_string())?;
            Ok(())
        }
        Command::Info { input } => info(&input, out),
        Command::Generate {
            dims,
            points,
            clusters,
            noise,
            rotations,
            seed,
            output,
        } => generate_cmd(
            dims,
            points,
            clusters,
            noise,
            rotations,
            seed,
            output.as_deref(),
            out,
        ),
        Command::Evaluate { found, truth, json } => evaluate(&found, &truth, json, out),
        Command::Cluster {
            input,
            output,
            method,
            alpha,
            resolutions,
            clusters,
            noise,
            threads,
            json,
        } => cluster(
            &input,
            output.as_deref(),
            method,
            alpha,
            resolutions,
            clusters,
            noise,
            threads,
            json,
            out,
        ),
    }
}

fn read_dataset(path: &Path) -> CliResult<Dataset> {
    csv::read_dataset_file(path).map_err(|e| format!("{}: {e}", path.display()))
}

fn info(input: &Path, out: &mut dyn Write) -> CliResult<()> {
    let ds = read_dataset(input)?;
    let (min, max) = ds.bounds().ok_or("empty dataset")?;
    writeln!(
        out,
        "{}: {} points x {} axes ({})",
        input.display(),
        ds.len(),
        ds.dims(),
        if ds.is_unit_normalized() {
            "unit-normalized"
        } else {
            "raw — `mrcc cluster` will normalize automatically"
        }
    )
    .map_err(|e| e.to_string())?;
    for j in 0..ds.dims() {
        writeln!(out, "  axis e{}: [{:.6}, {:.6}]", j + 1, min[j], max[j])
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn generate_cmd(
    dims: usize,
    points: usize,
    clusters: usize,
    noise: f64,
    rotations: usize,
    seed: u64,
    output: Option<&Path>,
    out: &mut dyn Write,
) -> CliResult<()> {
    let mut spec = SyntheticSpec::new("cli", dims, points, clusters, noise, seed);
    spec.rotations = rotations;
    let synth = generate(&spec);
    let labels = synth.ground_truth.labels();
    match output {
        Some(path) => {
            csv::write_dataset_file(path, &synth.dataset, Some(&labels))
                .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "wrote {} points x {} axes ({} clusters + noise labels) to {}",
                synth.dataset.len(),
                dims,
                synth.ground_truth.len(),
                path.display()
            )
            .map_err(|e| e.to_string())?;
        }
        None => {
            csv::write_dataset(&mut *out, &synth.dataset, Some(&labels))
                .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn evaluate(
    found_path: &Path,
    truth_path: &Path,
    json: bool,
    out: &mut dyn Write,
) -> CliResult<()> {
    let (found_ds, found_labels) = csv::read_labeled_dataset_file(found_path)
        .map_err(|e| format!("{}: {e}", found_path.display()))?;
    let (truth_ds, truth_labels) = csv::read_labeled_dataset_file(truth_path)
        .map_err(|e| format!("{}: {e}", truth_path.display()))?;
    if found_ds.len() != truth_ds.len() {
        return Err(format!(
            "row count mismatch: {} vs {}",
            found_ds.len(),
            truth_ds.len()
        ));
    }
    let found = clustering_from_labels(&found_labels, found_ds.dims())?;
    let truth = clustering_from_labels(&truth_labels, truth_ds.dims())?;
    let q = quality(&found, &truth);
    if json {
        let payload = serde_json::json!({
            "quality": q.quality,
            "avg_precision": q.avg_precision,
            "avg_recall": q.avg_recall,
            "found_clusters": found.len(),
            "real_clusters": truth.len(),
        });
        writeln!(out, "{payload}").map_err(|e| e.to_string())?;
    } else {
        writeln!(
            out,
            "Quality {:.4} (precision {:.4}, recall {:.4}); {} found vs {} real clusters",
            q.quality,
            q.avg_precision,
            q.avg_recall,
            found.len(),
            truth.len()
        )
        .map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Rebuilds a clustering from a label column (axes unknown → full masks).
fn clustering_from_labels(labels: &[i32], dims: usize) -> CliResult<SubspaceClustering> {
    let k = labels.iter().copied().max().unwrap_or(-1) + 1;
    if labels.iter().any(|&l| l < -1) {
        return Err("labels must be ≥ -1".into());
    }
    let masks = vec![mrcc_common::AxisMask::full(dims); k.max(0) as usize];
    Ok(SubspaceClustering::from_labels(labels, &masks, dims))
}

#[allow(clippy::too_many_arguments)]
fn cluster(
    input: &Path,
    output: Option<&Path>,
    method: MethodChoice,
    alpha: f64,
    resolutions: usize,
    clusters: Option<usize>,
    noise: f64,
    threads: usize,
    json: bool,
    out: &mut dyn Write,
) -> CliResult<()> {
    let mut ds = read_dataset(input)?;
    if !ds.is_unit_normalized() {
        ds.normalize_unit().map_err(|e| e.to_string())?;
    }
    let k = clusters.unwrap_or(1);
    let start = std::time::Instant::now();
    let clustering: SubspaceClustering = match method {
        MethodChoice::MrCC => {
            let config = MrCCConfig::with_params(alpha, resolutions).with_threads(threads);
            MrCC::new(config)
                .fit(&ds)
                .map_err(|e| e.to_string())?
                .clustering
        }
        MethodChoice::Lac => fit(&Lac::new(LacConfig::new(k)), &ds)?,
        MethodChoice::Epch => fit(&Epch::new(EpchConfig::new(k)), &ds)?,
        MethodChoice::Cfpc => fit(&Doc::new(DocConfig::new(k)), &ds)?,
        MethodChoice::P3c => fit(&P3c::default(), &ds)?,
        MethodChoice::Harp => fit(&Harp::new(HarpConfig::new(k, noise)), &ds)?,
        MethodChoice::Clique => fit(&Clique::default(), &ds)?,
        MethodChoice::Proclus => fit(&Proclus::new(ProclusConfig::new(k, 2.min(ds.dims()))), &ds)?,
        MethodChoice::Sting => fit(&Sting::default(), &ds)?,
    };
    let elapsed = start.elapsed();

    if json {
        let clusters_json: Vec<_> = clustering
            .clusters()
            .iter()
            .map(|c| {
                serde_json::json!({
                    "size": c.len(),
                    "axes": c.axes.iter().collect::<Vec<_>>(),
                })
            })
            .collect();
        let payload = serde_json::json!({
            "method": format!("{method:?}"),
            "clusters": clusters_json,
            "noise_points": clustering.noise().len(),
            "seconds": elapsed.as_secs_f64(),
        });
        writeln!(out, "{payload}").map_err(|e| e.to_string())?;
    } else {
        writeln!(
            out,
            "{method:?}: {} clusters, {} noise points, {:.3}s",
            clustering.len(),
            clustering.noise().len(),
            elapsed.as_secs_f64()
        )
        .map_err(|e| e.to_string())?;
        for (i, c) in clustering.clusters().iter().enumerate() {
            let axes: Vec<String> = c.axes.iter().map(|j| format!("e{}", j + 1)).collect();
            writeln!(
                out,
                "  cluster {i}: {} points, axes {{{}}}",
                c.len(),
                axes.join(",")
            )
            .map_err(|e| e.to_string())?;
        }
    }

    let labels = clustering.labels();
    if let Some(path) = output {
        csv::write_dataset_file(path, &ds, Some(&labels)).map_err(|e| e.to_string())?;
        writeln!(out, "labels written to {}", path.display()).map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn fit(method: &dyn SubspaceClusterer, ds: &Dataset) -> CliResult<SubspaceClustering> {
    method.fit(ds).map_err(|e| e.to_string())
}

/// Convenience used by tests and the quality gate in `evaluate`.
pub fn subspace_quality_of(found: &SubspaceClustering, truth: &SubspaceClustering) -> f64 {
    subspace_quality(found, truth).quality
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mrcc-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    fn run_str(args: &[&str]) -> CliResult<String> {
        let cmd = parse_args(&sv(args))?;
        let mut buf = Vec::new();
        run(cmd, &mut buf)?;
        Ok(String::from_utf8(buf).unwrap())
    }

    #[test]
    fn generate_info_cluster_evaluate_pipeline() {
        let data = tmp("pipe.csv");
        let labeled = tmp("pipe_out.csv");
        let data_s = data.to_str().unwrap();
        let labeled_s = labeled.to_str().unwrap();

        // generate
        let msg = run_str(&[
            "generate",
            "--dims",
            "6",
            "--points",
            "4000",
            "--clusters",
            "2",
            "--seed",
            "7",
            "--output",
            data_s,
        ])
        .unwrap();
        assert!(msg.contains("4000 points"));

        // info (the generated file has a label column; read as features-only
        // would be ragged-consistent, so regenerate without labels via
        // cluster output instead — info on the labeled file still works
        // because the label column parses as a feature; use it as a shape
        // check only).
        let msg = run_str(&["info", "--input", data_s]).unwrap();
        assert!(msg.contains("4000 points"));

        // cluster the raw features (drop the truth column first).
        let (ds, truth_labels) = csv::read_labeled_dataset_file(&data).unwrap();
        let features = tmp("pipe_features.csv");
        csv::write_dataset_file(&features, &ds, None).unwrap();
        let msg = run_str(&[
            "cluster",
            "--input",
            features.to_str().unwrap(),
            "--output",
            labeled_s,
        ])
        .unwrap();
        assert!(msg.contains("MrCC"), "{msg}");
        assert!(msg.contains("labels written"));

        // evaluate found vs truth.
        let msg = run_str(&["evaluate", "--found", labeled_s, "--truth", data_s]).unwrap();
        assert!(msg.contains("Quality"), "{msg}");
        let q: f64 = msg
            .split("Quality ")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(q > 0.7, "pipeline quality {q} too low\n{msg}");
        let _ = truth_labels;
    }

    #[test]
    fn cluster_json_output_is_valid_json() {
        let data = tmp("json.csv");
        run_str(&[
            "generate",
            "--dims",
            "5",
            "--points",
            "2000",
            "--clusters",
            "2",
            "--seed",
            "3",
            "--output",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let (ds, _) = csv::read_labeled_dataset_file(&data).unwrap();
        let features = tmp("json_features.csv");
        csv::write_dataset_file(&features, &ds, None).unwrap();
        let out = run_str(&[
            "cluster",
            "--input",
            features.to_str().unwrap(),
            "--json",
            "true",
        ])
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(out.lines().next().unwrap()).unwrap();
        assert!(v["clusters"].is_array());
        assert!(v["seconds"].as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn baseline_methods_run_via_cli() {
        let data = tmp("methods.csv");
        run_str(&[
            "generate",
            "--dims",
            "5",
            "--points",
            "1500",
            "--clusters",
            "2",
            "--seed",
            "9",
            "--output",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let (ds, _) = csv::read_labeled_dataset_file(&data).unwrap();
        let features = tmp("methods_features.csv");
        csv::write_dataset_file(&features, &ds, None).unwrap();
        for method in ["lac", "epch", "cfpc", "harp", "proclus"] {
            let out = run_str(&[
                "cluster",
                "--input",
                features.to_str().unwrap(),
                "--method",
                method,
                "--clusters",
                "2",
            ])
            .unwrap();
            assert!(out.contains("clusters"), "{method}: {out}");
        }
        for method in ["p3c", "clique", "sting"] {
            let out = run_str(&[
                "cluster",
                "--input",
                features.to_str().unwrap(),
                "--method",
                method,
            ])
            .unwrap();
            assert!(out.contains("clusters"), "{method}: {out}");
        }
    }

    #[test]
    fn evaluate_rejects_mismatched_files() {
        let a = tmp("mismatch_a.csv");
        let b = tmp("mismatch_b.csv");
        run_str(&[
            "generate",
            "--dims",
            "4",
            "--points",
            "100",
            "--clusters",
            "1",
            "--output",
            a.to_str().unwrap(),
        ])
        .unwrap();
        run_str(&[
            "generate",
            "--dims",
            "4",
            "--points",
            "200",
            "--clusters",
            "1",
            "--output",
            b.to_str().unwrap(),
        ])
        .unwrap();
        let err = run_str(&[
            "evaluate",
            "--found",
            a.to_str().unwrap(),
            "--truth",
            b.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("mismatch"));
    }

    #[test]
    fn missing_file_is_a_friendly_error() {
        let err = run_str(&["info", "--input", "/nonexistent/nope.csv"]).unwrap_err();
        assert!(err.contains("nope.csv"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run_str(&["help"]).unwrap();
        assert!(out.contains("usage: mrcc"));
    }
}
