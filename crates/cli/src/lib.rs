#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Command-line interface for the MrCC reproduction.
//!
//! The `mrcc` binary wires the workspace into a small data-pipeline tool:
//!
//! ```text
//! mrcc cluster  --input data.csv --output labels.csv [--method mrcc] [--alpha 1e-10] ...
//! mrcc generate --dims 10 --points 10000 --clusters 4 --output data.csv
//! mrcc evaluate --found labeled.csv --truth truth.csv
//! mrcc info     --input data.csv
//! ```
//!
//! All argument parsing and command logic lives in this library so it can be
//! unit-tested; the binary (`src/bin/mrcc.rs`) is a thin `main`.

pub mod args;
pub mod commands;

pub use args::{parse_args, Command};
pub use commands::run;

/// CLI result type: user-facing error strings.
pub type CliResult<T> = Result<T, String>;
