//! Wall-clock measurement and budgeted execution.
//!
//! The paper ran every competitor with generous-but-finite budgets (a
//! three-hour timeout for LAC, a week for P3C) and reported timeouts as
//! missing results. [`run_with_timeout`] reproduces that policy for the
//! experiment harness.
//!
//! # Timeout contract
//!
//! Safe Rust cannot kill a thread, so a workload that misses its budget is
//! *detached*, not destroyed. The guarantees, in order of importance:
//!
//! 1. **No cross-measurement poisoning.** Every call owns a dedicated
//!    channel; a straggler's late result is sent into that call's (by then
//!    dropped) channel and discarded. It can never surface as the result of
//!    a *later* `run_with_timeout` call.
//! 2. **Cooperative early exit.** [`run_with_timeout_cancellable`] hands the
//!    workload a [`CancelToken`] which flips to cancelled the moment the
//!    budget expires. Workloads with a natural loop structure should poll
//!    [`CancelToken::is_cancelled`] and return early, turning the detached
//!    thread from a leak into a short postscript.
//! 3. **Residual CPU interference is possible.** A non-cooperative straggler
//!    keeps computing until it finishes on its own, and while it does it
//!    competes for cores with whatever measurement runs next. Callers who
//!    need pristine timings after a timeout should either use cancellable
//!    workloads or treat the following measurement with suspicion
//!    (the paper's authors killed straggler *processes*; in-process we can
//!    only ask nicely).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Runs `f` and returns its result together with the elapsed wall time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Outcome of a budgeted run.
#[derive(Debug)]
pub enum Timeout<T> {
    /// The workload finished within the budget.
    Finished {
        /// The workload's output.
        value: T,
        /// Elapsed wall time.
        elapsed: Duration,
    },
    /// The workload missed the budget; it keeps running detached (with its
    /// [`CancelToken`] cancelled — see the module docs for the contract).
    TimedOut {
        /// The budget that was exceeded.
        budget: Duration,
    },
}

impl<T> Timeout<T> {
    /// The value, when the run finished.
    pub fn finished(self) -> Option<(T, Duration)> {
        match self {
            Timeout::Finished { value, elapsed } => Some((value, elapsed)),
            Timeout::TimedOut { .. } => None,
        }
    }

    /// True when the budget was missed.
    pub fn timed_out(&self) -> bool {
        matches!(self, Timeout::TimedOut { .. })
    }
}

/// Cooperative cancellation handle given to budgeted workloads.
///
/// The harness flips the token the moment the budget expires. Long-running
/// workloads should poll [`CancelToken::is_cancelled`] at convenient
/// checkpoints (once per outer iteration is plenty) and bail out, so a
/// timed-out run releases its CPU instead of computing a result nobody will
/// read.
#[derive(Debug, Clone)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    fn new() -> Self {
        CancelToken(Arc::new(AtomicBool::new(false)))
    }

    /// True once the budget elapsed and the harness moved on.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }
}

/// Runs `f` on a helper thread with a wall-clock budget, handing it a
/// [`CancelToken`] that is cancelled when the budget expires.
///
/// See the module docs for the full timeout contract. Prefer this over
/// [`run_with_timeout`] for workloads that can check the token — they stop
/// consuming CPU shortly after a timeout instead of running to completion
/// in the background.
pub fn run_with_timeout_cancellable<T: Send + 'static>(
    budget: Duration,
    f: impl FnOnce(&CancelToken) -> T + Send + 'static,
) -> Timeout<T> {
    let token = CancelToken::new();
    let worker_token = token.clone();
    // One dedicated channel per call: a straggler's late send lands in this
    // call's dropped receiver and is discarded, never in a later call's.
    let (tx, rx) = mpsc::channel();
    let start = Instant::now();
    std::thread::Builder::new()
        .name("budgeted-run".into())
        .spawn(move || {
            let value = f(&worker_token);
            // Receiver may be gone after a timeout; that is fine.
            let _ = tx.send(value);
        })
        .expect("spawn budgeted worker");
    match rx.recv_timeout(budget) {
        Ok(value) => Timeout::Finished {
            value,
            elapsed: start.elapsed(),
        },
        Err(_) => {
            token.cancel();
            Timeout::TimedOut { budget }
        }
    }
}

/// Runs `f` on a helper thread with a wall-clock budget.
///
/// Convenience wrapper over [`run_with_timeout_cancellable`] for workloads
/// that cannot observe a cancel signal; on timeout such a workload keeps
/// running detached until it finishes on its own (module docs, point 3).
pub fn run_with_timeout<T: Send + 'static>(
    budget: Duration,
    f: impl FnOnce() -> T + Send + 'static,
) -> Timeout<T> {
    run_with_timeout_cancellable(budget, move |_| f())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures_and_passes_value() {
        let (v, d) = time(|| {
            std::thread::sleep(Duration::from_millis(10));
            42
        });
        assert_eq!(v, 42);
        assert!(d >= Duration::from_millis(10));
    }

    #[test]
    fn fast_run_finishes() {
        let out = run_with_timeout(Duration::from_secs(5), || 7u32);
        let (v, _) = out.finished().expect("should finish");
        assert_eq!(v, 7);
    }

    #[test]
    fn slow_run_times_out() {
        let out = run_with_timeout(Duration::from_millis(20), || {
            std::thread::sleep(Duration::from_millis(500));
            1u32
        });
        assert!(out.timed_out());
        assert!(out.finished().is_none());
    }

    /// Contract point 1: a straggler from a timed-out call must never leak
    /// its (late) result into a subsequent measurement — each call's channel
    /// is private, so the next run sees exactly its own workload's value.
    #[test]
    fn timed_out_run_does_not_poison_next_measurement() {
        let slow = run_with_timeout(Duration::from_millis(20), || {
            std::thread::sleep(Duration::from_millis(200));
            1u32 // would be a poisoned value if it ever surfaced later
        });
        assert!(slow.timed_out());
        // Immediately measure again while the straggler is still running.
        let fast = run_with_timeout(Duration::from_secs(5), || 2u32);
        let (v, elapsed) = fast.finished().expect("fast run should finish");
        assert_eq!(v, 2, "straggler's result leaked into a later call");
        assert!(elapsed < Duration::from_secs(5));
        // And once more after the straggler has surely finished and sent.
        std::thread::sleep(Duration::from_millis(300));
        let third = run_with_timeout(Duration::from_secs(5), || 3u32);
        assert_eq!(third.finished().expect("should finish").0, 3);
    }

    /// Contract point 2: the token flips on timeout, and a cooperative
    /// workload exits early instead of running to natural completion.
    #[test]
    fn cancel_token_stops_cooperative_straggler() {
        let exited = Arc::new(AtomicBool::new(false));
        let probe = exited.clone();
        let out = run_with_timeout_cancellable(Duration::from_millis(20), move |token| {
            // A "week-long" loop that checks the token each iteration.
            for _ in 0..10_000 {
                if token.is_cancelled() {
                    probe.store(true, Ordering::Relaxed);
                    return 0u32;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            1u32
        });
        assert!(out.timed_out());
        // The straggler should notice the cancel within a few polls, far
        // sooner than the loop's natural ~50 s runtime.
        let deadline = Instant::now() + Duration::from_secs(5);
        while !exited.load(Ordering::Relaxed) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            exited.load(Ordering::Relaxed),
            "cancelled workload kept running"
        );
    }

    /// A finished run's token is never cancelled.
    #[test]
    fn finished_run_is_not_cancelled() {
        let out = run_with_timeout_cancellable(Duration::from_secs(5), |token| {
            assert!(!token.is_cancelled());
            9u32
        });
        assert_eq!(out.finished().expect("should finish").0, 9);
    }
}
