//! Wall-clock measurement and budgeted execution.
//!
//! The paper ran every competitor with generous-but-finite budgets (a
//! three-hour timeout for LAC, a week for P3C) and reported timeouts as
//! missing results. [`run_with_timeout`] reproduces that policy for the
//! experiment harness: the workload runs on a helper thread; if it misses
//! the budget the harness moves on and the thread is left to finish in the
//! background (documented, matching how the authors killed stragglers).

use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Runs `f` and returns its result together with the elapsed wall time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Outcome of a budgeted run.
#[derive(Debug)]
pub enum Timeout<T> {
    /// The workload finished within the budget.
    Finished {
        /// The workload's output.
        value: T,
        /// Elapsed wall time.
        elapsed: Duration,
    },
    /// The workload missed the budget; it keeps running detached.
    TimedOut {
        /// The budget that was exceeded.
        budget: Duration,
    },
}

impl<T> Timeout<T> {
    /// The value, when the run finished.
    pub fn finished(self) -> Option<(T, Duration)> {
        match self {
            Timeout::Finished { value, elapsed } => Some((value, elapsed)),
            Timeout::TimedOut { .. } => None,
        }
    }

    /// True when the budget was missed.
    pub fn timed_out(&self) -> bool {
        matches!(self, Timeout::TimedOut { .. })
    }
}

/// Runs `f` on a helper thread with a wall-clock budget.
///
/// On timeout the helper thread is detached (its result is dropped when it
/// eventually finishes); the caller gets [`Timeout::TimedOut`] immediately.
pub fn run_with_timeout<T: Send + 'static>(
    budget: Duration,
    f: impl FnOnce() -> T + Send + 'static,
) -> Timeout<T> {
    let (tx, rx) = mpsc::channel();
    let start = Instant::now();
    std::thread::Builder::new()
        .name("budgeted-run".into())
        .spawn(move || {
            let value = f();
            // Receiver may be gone after a timeout; that is fine.
            let _ = tx.send(value);
        })
        .expect("spawn budgeted worker");
    match rx.recv_timeout(budget) {
        Ok(value) => Timeout::Finished {
            value,
            elapsed: start.elapsed(),
        },
        Err(_) => Timeout::TimedOut { budget },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures_and_passes_value() {
        let (v, d) = time(|| {
            std::thread::sleep(Duration::from_millis(10));
            42
        });
        assert_eq!(v, 42);
        assert!(d >= Duration::from_millis(10));
    }

    #[test]
    fn fast_run_finishes() {
        let out = run_with_timeout(Duration::from_secs(5), || 7u32);
        let (v, _) = out.finished().expect("should finish");
        assert_eq!(v, 7);
    }

    #[test]
    fn slow_run_times_out() {
        let out = run_with_timeout(Duration::from_millis(20), || {
            std::thread::sleep(Duration::from_millis(500));
            1u32
        });
        assert!(out.timed_out());
        assert!(out.finished().is_none());
    }
}
