//! Clustering quality metrics (paper Section IV-A).
//!
//! For each *found* cluster the **most dominant real cluster** is the real
//! cluster sharing the most points with it, and vice versa. Precision and
//! recall of a (found, real) pair are
//!
//! ```text
//! precision(f, r) = |S_f ∩ S_r| / |S_f|        (Eq. 1)
//! recall(f, r)    = |S_f ∩ S_r| / |S_r|        (Eq. 2)
//! ```
//!
//! **Quality** is the harmonic mean of (a) the precision averaged over all
//! found clusters paired with their dominant real cluster — proportional to
//! the *dominant ratio* — and (b) the recall averaged over all real clusters
//! paired with their dominant found cluster — proportional to the *coverage
//! ratio*. When a method finds no clusters the paper scores 0.
//!
//! **Subspaces Quality** repeats the construction with the point sets
//! replaced by the relevant-axis sets `E`; the dominant pairing itself stays
//! point-based (it is what identifies *which* real cluster a found cluster
//! captures).

use mrcc_common::{SubspaceClustering, NOISE};
use serde_json::{ToJson, Value};

/// One found↔real pairing with its scores.
#[derive(Debug, Clone)]
pub struct ClusterMatch {
    /// Index on the side being iterated (found for precision, real for
    /// recall).
    pub index: usize,
    /// Index of the dominant cluster on the other side, `None` when the
    /// other side is empty.
    pub dominant: Option<usize>,
    /// Shared point count with the dominant cluster.
    pub shared: usize,
    /// The score (precision or recall) of the pair.
    pub score: f64,
}

/// Full quality report of one clustering against ground truth.
#[derive(Debug, Clone)]
pub struct QualityReport {
    /// Averaged precision over found clusters.
    pub avg_precision: f64,
    /// Averaged recall over real clusters.
    pub avg_recall: f64,
    /// Harmonic mean of the two averages.
    pub quality: f64,
    /// Per-found-cluster matches (precision side).
    pub precision_matches: Vec<ClusterMatch>,
    /// Per-real-cluster matches (recall side).
    pub recall_matches: Vec<ClusterMatch>,
}

// Hand-written because the offline serde_json stand-in has no derive macros
// (see vendor/serde_json).
impl ToJson for ClusterMatch {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("index".to_string(), self.index.to_json()),
            ("dominant".to_string(), self.dominant.to_json()),
            ("shared".to_string(), self.shared.to_json()),
            ("score".to_string(), self.score.to_json()),
        ])
    }
}

impl ToJson for QualityReport {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("avg_precision".to_string(), self.avg_precision.to_json()),
            ("avg_recall".to_string(), self.avg_recall.to_json()),
            ("quality".to_string(), self.quality.to_json()),
            (
                "precision_matches".to_string(),
                self.precision_matches.to_json(),
            ),
            ("recall_matches".to_string(), self.recall_matches.to_json()),
        ])
    }
}

/// Point-overlap contingency table between two clusterings, built in
/// `O(η + f·r)` from the label vectors.
fn contingency(found: &SubspaceClustering, real: &SubspaceClustering) -> Vec<Vec<usize>> {
    assert_eq!(
        found.n_points(),
        real.n_points(),
        "clusterings cover different datasets"
    );
    let fl = found.labels();
    let rl = real.labels();
    let mut table = vec![vec![0usize; real.len()]; found.len()];
    for (f, r) in fl.iter().zip(&rl) {
        if *f != NOISE && *r != NOISE {
            table[*f as usize][*r as usize] += 1;
        }
    }
    table
}

/// Computes the paper's Quality of `found` against `real` (ground truth).
///
/// ```
/// use mrcc_common::{AxisMask, SubspaceCluster, SubspaceClustering};
/// use mrcc_eval::quality;
///
/// let truth = SubspaceClustering::new(6, 2, vec![
///     SubspaceCluster::new(vec![0, 1, 2], AxisMask::from_axes(2, [0])),
/// ]);
/// // Found half the cluster, nothing foreign: precision 1, recall 0.5.
/// let found = SubspaceClustering::new(6, 2, vec![
///     SubspaceCluster::new(vec![0, 1], AxisMask::from_axes(2, [0])),
/// ]);
/// let report = quality(&found, &truth);
/// assert!((report.avg_precision - 1.0).abs() < 1e-12);
/// assert!((report.avg_recall - 2.0 / 3.0).abs() < 1e-12);
/// ```
pub fn quality(found: &SubspaceClustering, real: &SubspaceClustering) -> QualityReport {
    let table = contingency(found, real);
    score_with(
        found,
        real,
        &table,
        |f, _r| found.clusters()[f].len(),
        |_f, r| real.clusters()[r].len(),
        |_f, _r, shared| shared as f64,
    )
}

/// Computes the Subspaces Quality: the same averaged precision/recall
/// harmonic mean, but scoring each dominant pair by its **axis-set** overlap
/// instead of its point overlap.
pub fn subspace_quality(found: &SubspaceClustering, real: &SubspaceClustering) -> QualityReport {
    let table = contingency(found, real);
    score_with(
        found,
        real,
        &table,
        |f, _r| found.clusters()[f].axes.count(),
        |_f, r| real.clusters()[r].axes.count(),
        |f, r, _shared| {
            found.clusters()[f]
                .axes
                .intersection_count(&real.clusters()[r].axes) as f64
        },
    )
}

/// Shared scoring skeleton. `denom_found`/`denom_real` yield the
/// denominators of Eq. 1 / Eq. 2; `numer` yields the shared quantity of a
/// dominant pair (points or axes).
fn score_with(
    found: &SubspaceClustering,
    real: &SubspaceClustering,
    table: &[Vec<usize>],
    denom_found: impl Fn(usize, usize) -> usize,
    denom_real: impl Fn(usize, usize) -> usize,
    numer: impl Fn(usize, usize, usize) -> f64,
) -> QualityReport {
    // Precision side: every found cluster against its dominant real cluster.
    let mut precision_matches = Vec::with_capacity(found.len());
    for (f, row) in table.iter().enumerate() {
        let dominant = (0..real.len()).max_by_key(|&r| row[r]);
        let (score, shared) = match dominant {
            Some(r) => {
                let shared = row[r];
                let den = denom_found(f, r);
                let num = numer(f, r, shared);
                (if den > 0 { num / den as f64 } else { 0.0 }, shared)
            }
            None => (0.0, 0),
        };
        precision_matches.push(ClusterMatch {
            index: f,
            dominant,
            shared,
            score,
        });
    }
    // Recall side: every real cluster against its dominant found cluster.
    // (Column-major walk over the contingency table; indexing is the
    // clearest expression here.)
    let mut recall_matches = Vec::with_capacity(real.len());
    #[allow(clippy::needless_range_loop)]
    for r in 0..real.len() {
        let dominant = (0..found.len()).max_by_key(|&f| table[f][r]);
        let (score, shared) = match dominant {
            Some(f) => {
                let shared = table[f][r];
                let den = denom_real(f, r);
                let num = numer(f, r, shared);
                (if den > 0 { num / den as f64 } else { 0.0 }, shared)
            }
            None => (0.0, 0),
        };
        recall_matches.push(ClusterMatch {
            index: r,
            dominant,
            shared,
            score,
        });
    }

    let avg = |ms: &[ClusterMatch]| -> f64 {
        if ms.is_empty() {
            0.0
        } else {
            ms.iter().map(|m| m.score).sum::<f64>() / ms.len() as f64
        }
    };
    let avg_precision = avg(&precision_matches);
    let avg_recall = avg(&recall_matches);
    let q = if avg_precision > 0.0 && avg_recall > 0.0 {
        2.0 * avg_precision * avg_recall / (avg_precision + avg_recall)
    } else {
        0.0
    };
    QualityReport {
        avg_precision,
        avg_recall,
        quality: q,
        precision_matches,
        recall_matches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrcc_common::{AxisMask, SubspaceCluster};

    fn clustering(n: usize, dims: usize, groups: &[(&[usize], &[usize])]) -> SubspaceClustering {
        let clusters = groups
            .iter()
            .map(|(pts, axes)| {
                SubspaceCluster::new(
                    pts.to_vec(),
                    AxisMask::from_axes(dims, axes.iter().copied()),
                )
            })
            .collect();
        SubspaceClustering::new(n, dims, clusters)
    }

    #[test]
    fn perfect_match_scores_one() {
        let real = clustering(10, 4, &[(&[0, 1, 2], &[0, 1]), (&[5, 6, 7], &[2, 3])]);
        let found = clustering(10, 4, &[(&[0, 1, 2], &[0, 1]), (&[5, 6, 7], &[2, 3])]);
        let q = quality(&found, &real);
        assert!((q.quality - 1.0).abs() < 1e-12);
        let sq = subspace_quality(&found, &real);
        assert!((sq.quality - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_found_clusters_scores_zero() {
        let real = clustering(10, 4, &[(&[0, 1, 2], &[0])]);
        let found = SubspaceClustering::empty(10, 4);
        assert_eq!(quality(&found, &real).quality, 0.0);
        assert_eq!(subspace_quality(&found, &real).quality, 0.0);
    }

    #[test]
    fn half_precision_half_recall() {
        // Found cluster covers the real cluster plus as many foreign points.
        let real = clustering(8, 2, &[(&[0, 1], &[0])]);
        let found = clustering(8, 2, &[(&[0, 1, 2, 3], &[0])]);
        let q = quality(&found, &real);
        assert!((q.avg_precision - 0.5).abs() < 1e-12);
        assert!((q.avg_recall - 1.0).abs() < 1e-12);
        assert!((q.quality - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn split_cluster_penalizes_recall_side_only_partially() {
        // One real cluster split into two found halves: precision of each
        // found cluster is 1; recall of the real cluster via its dominant
        // half is 1/2.
        let real = clustering(8, 2, &[(&[0, 1, 2, 3], &[0])]);
        let found = clustering(8, 2, &[(&[0, 1], &[0]), (&[2, 3], &[0])]);
        let q = quality(&found, &real);
        assert!((q.avg_precision - 1.0).abs() < 1e-12);
        assert!((q.avg_recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn noise_points_do_not_count_as_shared() {
        // Found marks everything one cluster; real has noise: the shared
        // mass only counts real-clustered points.
        let real = clustering(6, 2, &[(&[0, 1, 2], &[0])]); // 3,4,5 noise
        let found = clustering(6, 2, &[(&[0, 1, 2, 3, 4, 5], &[0])]);
        let q = quality(&found, &real);
        assert!((q.avg_precision - 0.5).abs() < 1e-12);
        assert!((q.avg_recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn subspace_quality_scores_axis_overlap_of_dominant_pairs() {
        // Points match perfectly; axes only half-overlap.
        let real = clustering(6, 4, &[(&[0, 1, 2], &[0, 1])]);
        let found = clustering(6, 4, &[(&[0, 1, 2], &[1, 2])]);
        let sq = subspace_quality(&found, &real);
        // |{1}|/|{1,2}| = 0.5 precision; |{1}|/|{0,1}| = 0.5 recall.
        assert!((sq.avg_precision - 0.5).abs() < 1e-12);
        assert!((sq.avg_recall - 0.5).abs() < 1e-12);
        assert!((sq.quality - 0.5).abs() < 1e-12);
        // Point-based Quality stays perfect.
        assert!((quality(&found, &real).quality - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dominant_pairing_picks_largest_overlap() {
        let real = clustering(10, 2, &[(&[0, 1, 2, 3], &[0]), (&[4, 5], &[1])]);
        let found = clustering(10, 2, &[(&[2, 3, 4, 5], &[0])]);
        let q = quality(&found, &real);
        // Found cluster shares 2 with each real cluster → dominant is the
        // first by tie-break; precision 2/4.
        assert!((q.precision_matches[0].score - 0.5).abs() < 1e-12);
        // Real cluster 0: dominant found shares 2 of 4 → recall 0.5;
        // real cluster 1: shares 2 of 2 → recall 1.0.
        assert!((q.avg_recall - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different datasets")]
    fn mismatched_sizes_panic() {
        let a = SubspaceClustering::empty(5, 2);
        let b = SubspaceClustering::empty(6, 2);
        quality(&a, &b);
    }
}
