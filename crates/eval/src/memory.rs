//! Heap tracking for the memory-consumption experiments.
//!
//! The paper reports per-run memory in KB (Figures 4–5). We measure it with a
//! wrapping global allocator that keeps live-byte and peak-byte counters in
//! relaxed atomics. The experiments binary installs it via
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: TrackingAllocator = TrackingAllocator;
//! ```
//!
//! and brackets each algorithm run with [`measure_peak`], which resets the
//! peak to the current live size, runs the closure, and reports how far the
//! peak rose above the starting point — i.e. the run's own net peak usage.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// A `#[global_allocator]` shim over the system allocator that tracks live
/// and peak heap bytes.
pub struct TrackingAllocator;

impl TrackingAllocator {
    /// Current live heap bytes.
    pub fn live() -> usize {
        LIVE.load(Ordering::Relaxed)
    }

    /// Peak heap bytes since the last [`TrackingAllocator::reset_peak`].
    pub fn peak() -> usize {
        PEAK.load(Ordering::Relaxed)
    }

    /// Resets the peak to the current live size.
    pub fn reset_peak() {
        PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Whether a [`TrackingAllocator`] is serving as the global allocator
    /// (set on its first allocation).
    pub fn is_installed() -> bool {
        INSTALLED.load(Ordering::Relaxed)
    }
}

fn on_alloc(size: usize) {
    INSTALLED.store(true, Ordering::Relaxed);
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size, Ordering::Relaxed);
}

// SAFETY: defers all allocation to `System`; the counters are plain atomics
// and never allocate, so no allocator method can recurse into itself.
unsafe impl GlobalAlloc for TrackingAllocator {
    // SAFETY: the method contract is `System::alloc`'s own; this wrapper
    // only adds counter updates around the delegated call.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: the caller's `layout` obligations pass through unchanged.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    // SAFETY: contract identical to `System::dealloc`, delegated verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` were produced by a matching alloc on this
        // same allocator, which forwarded to `System`.
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    // SAFETY: contract identical to `System::alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: the caller's `layout` obligations pass through unchanged.
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    // SAFETY: contract identical to `System::realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: `ptr` came from this allocator with `layout`, and the
        // caller guarantees `new_size` is nonzero — `System`'s own contract.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// What a [`measure_peak`] run observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryReport {
    /// Net peak heap growth during the run, in bytes. Zero when no tracking
    /// allocator is installed (e.g. under `cargo test` of this crate alone).
    pub peak_bytes: usize,
    /// Whether a tracking allocator was actually measuring.
    pub tracked: bool,
}

impl MemoryReport {
    /// Peak in KiB, the unit the paper plots.
    pub fn peak_kb(&self) -> f64 {
        self.peak_bytes as f64 / 1024.0
    }
}

/// Runs `f` and reports its net peak heap usage.
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, MemoryReport) {
    let tracked = TrackingAllocator::is_installed();
    let baseline = TrackingAllocator::live();
    TrackingAllocator::reset_peak();
    let out = f();
    let peak = TrackingAllocator::peak();
    (
        out,
        MemoryReport {
            peak_bytes: peak.saturating_sub(baseline),
            tracked,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the allocator is *not* installed in this crate's own tests (that
    // would skew every other test's numbers); install-dependent behaviour is
    // exercised in the bench crate where the allocator is the global one.

    #[test]
    fn counters_move_with_manual_events() {
        let before_live = TrackingAllocator::live();
        on_alloc(1024);
        assert_eq!(TrackingAllocator::live(), before_live + 1024);
        assert!(TrackingAllocator::peak() >= before_live + 1024);
        on_dealloc(1024);
        assert_eq!(TrackingAllocator::live(), before_live);
    }

    #[test]
    fn reset_peak_snaps_to_live() {
        on_alloc(4096);
        on_dealloc(4096);
        TrackingAllocator::reset_peak();
        assert_eq!(TrackingAllocator::peak(), TrackingAllocator::live());
    }

    #[test]
    fn measure_peak_reports_closure_growth() {
        // Simulate a run that allocates 10 KiB net-zero.
        let (_out, report) = measure_peak(|| {
            on_alloc(10 * 1024);
            on_dealloc(10 * 1024);
        });
        assert!(report.peak_bytes >= 10 * 1024);
        assert!((report.peak_kb() - report.peak_bytes as f64 / 1024.0).abs() < 1e-12);
    }
}
