#![warn(missing_docs)]

//! Evaluation harness for the MrCC reproduction (paper Section IV-A).
//!
//! * [`quality`] — per-cluster precision/recall against ground truth
//!   (Equations 1–2), the averaged **Quality** (harmonic mean of averaged
//!   precision over found clusters and averaged recall over real clusters)
//!   and the **Subspaces Quality** (the same construction over relevant-axis
//!   sets).
//! * [`memory`] — a tracking global allocator measuring live and peak heap
//!   bytes, so the experiment harness can report memory like the paper's KB
//!   columns.
//! * [`timing`] — wall-clock measurement and a thread-based timeout runner
//!   (the paper gave LAC three hours and P3C a week; we give everything a
//!   configurable budget).

pub mod memory;
pub mod quality;
pub mod timing;

pub use memory::{measure_peak, MemoryReport, TrackingAllocator};
pub use quality::{quality, subspace_quality, ClusterMatch, QualityReport};
pub use timing::{run_with_timeout, run_with_timeout_cancellable, time, CancelToken, Timeout};
