//! Property-based invariants of the Quality metrics.

use mrcc_common::{AxisMask, SubspaceCluster, SubspaceClustering};
use mrcc_eval::{quality, subspace_quality};
use proptest::prelude::*;

/// Strategy: a random clustering over `n` points in `d` dims with up to `k`
/// clusters built from a random label vector.
fn clustering_strategy(n: usize, d: usize, k: usize) -> impl Strategy<Value = SubspaceClustering> {
    (
        proptest::collection::vec(-1i32..k as i32, n..=n),
        proptest::collection::vec(proptest::collection::vec(any::<bool>(), d..=d), k..=k),
    )
        .prop_map(move |(labels, axis_flags)| {
            let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
            for (i, &l) in labels.iter().enumerate() {
                if l >= 0 {
                    members[l as usize].push(i);
                }
            }
            let clusters = members
                .into_iter()
                .zip(axis_flags)
                .filter(|(pts, _)| !pts.is_empty())
                .map(|(pts, flags)| {
                    let mut mask = AxisMask::from_bools(&flags);
                    if mask.is_empty() {
                        mask.insert(0);
                    }
                    SubspaceCluster::new(pts, mask)
                })
                .collect();
            SubspaceClustering::new(n, d, clusters)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quality and Subspaces Quality always land in [0, 1].
    #[test]
    fn quality_is_bounded(
        found in clustering_strategy(40, 4, 3),
        real in clustering_strategy(40, 4, 3),
    ) {
        let q = quality(&found, &real);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&q.quality), "{}", q.quality);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&q.avg_precision));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&q.avg_recall));
        let sq = subspace_quality(&found, &real);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&sq.quality));
    }

    /// A clustering compared against itself is perfect.
    #[test]
    fn self_comparison_is_perfect(c in clustering_strategy(40, 4, 3)) {
        prop_assume!(!c.is_empty());
        let q = quality(&c, &c);
        prop_assert!((q.quality - 1.0).abs() < 1e-12, "{}", q.quality);
        let sq = subspace_quality(&c, &c);
        prop_assert!((sq.quality - 1.0).abs() < 1e-12);
    }

    /// Quality is never positive when either side has no clusters.
    #[test]
    fn empty_side_scores_zero(c in clustering_strategy(40, 4, 3)) {
        let empty = SubspaceClustering::empty(40, 4);
        prop_assert_eq!(quality(&empty, &c).quality, 0.0);
        prop_assert_eq!(quality(&c, &empty).quality, 0.0);
    }

    /// The harmonic mean lies between the two averages (when both are
    /// positive) and is zero when either is zero.
    #[test]
    fn harmonic_mean_bound(
        found in clustering_strategy(40, 4, 3),
        real in clustering_strategy(40, 4, 3),
    ) {
        let q = quality(&found, &real);
        if q.avg_precision > 0.0 && q.avg_recall > 0.0 {
            let lo = q.avg_precision.min(q.avg_recall);
            let hi = q.avg_precision.max(q.avg_recall);
            prop_assert!(q.quality >= lo - 1e-12);
            prop_assert!(q.quality <= hi + 1e-12);
        } else {
            prop_assert_eq!(q.quality, 0.0);
        }
    }
}
