//! Counting-tree construction scaling (paper: Algorithm 1 is O(η·H·d) —
//! linear in points, resolutions and dimensionality).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrcc_counting_tree::CountingTree;
use mrcc_datagen::{generate, SyntheticSpec};

fn tree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_build");
    group.sample_size(10);
    // Linear in η.
    for &n in &[5_000usize, 10_000, 20_000, 40_000] {
        let synth = generate(&SyntheticSpec::new("b", 10, n, 4, 0.15, 1));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("points", n), &synth, |b, s| {
            b.iter(|| CountingTree::build(&s.dataset, 4).unwrap());
        });
    }
    // Linear in d.
    for &d in &[5usize, 10, 20, 30] {
        let synth = generate(&SyntheticSpec::new("b", d, 10_000, 4, 0.15, 2));
        group.bench_with_input(BenchmarkId::new("dims", d), &synth, |b, s| {
            b.iter(|| CountingTree::build(&s.dataset, 4).unwrap());
        });
    }
    // Linear in H.
    let synth = generate(&SyntheticSpec::new("b", 10, 10_000, 4, 0.15, 3));
    for &h in &[4usize, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::new("resolutions", h), &h, |b, &h| {
            b.iter(|| CountingTree::build(&synth.dataset, h).unwrap());
        });
    }
    // Sharded build at 1/2/4/8 workers; results are bit-identical to serial,
    // so this sweep measures scheduling + merge overhead vs. build speedup.
    let synth = generate(&SyntheticSpec::new("b", 10, 40_000, 4, 0.15, 4));
    for &t in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", t), &t, |b, &t| {
            b.iter(|| CountingTree::build_sharded(&synth.dataset, 4, t).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, tree_build);
criterion_main!(benches);
