//! Full MrCC fit scaling (paper claims: linear time/memory in η, linear
//! memory and quasi-linear time in d).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrcc::{MrCC, MrCCConfig};
use mrcc_datagen::{generate, SyntheticSpec};

fn fit_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit_scaling");
    group.sample_size(10);
    for &n in &[5_000usize, 10_000, 20_000, 40_000] {
        let synth = generate(&SyntheticSpec::new("f", 10, n, 4, 0.15, 11));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("points", n), &synth, |b, s| {
            b.iter(|| MrCC::default().fit(&s.dataset).unwrap());
        });
    }
    for &d in &[5usize, 10, 20, 30] {
        let synth = generate(&SyntheticSpec::new("f", d, 10_000, 4, 0.15, 12));
        group.bench_with_input(BenchmarkId::new("dims", d), &synth, |b, s| {
            b.iter(|| MrCC::default().fit(&s.dataset).unwrap());
        });
    }
    for &k in &[2usize, 5, 10, 20] {
        let synth = generate(&SyntheticSpec::new("f", 12, 20_000, k, 0.15, 13));
        group.bench_with_input(BenchmarkId::new("clusters", k), &synth, |b, s| {
            b.iter(|| MrCC::default().fit(&s.dataset).unwrap());
        });
    }
    // Parallel fit at 1/2/4/8 workers (bit-identical output; speed knob only).
    let synth = generate(&SyntheticSpec::new("f", 10, 40_000, 4, 0.15, 14));
    for &t in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", t), &t, |b, &t| {
            let method = MrCC::new(MrCCConfig::default().with_threads(t));
            b.iter(|| method.fit(&synth.dataset).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, fit_scaling);
criterion_main!(benches);
