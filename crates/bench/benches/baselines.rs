//! One fit per method on a shared mid-size workload — the microbenchmark
//! behind the paper's headline "MrCC is ~10× faster than the accurate
//! competitors".

use criterion::{criterion_group, criterion_main, Criterion};
use mrcc_bench::MethodKind;
use mrcc_datagen::{generate, SyntheticSpec};

fn baselines(c: &mut Criterion) {
    let synth = generate(&SyntheticSpec::new("cmp", 10, 10_000, 4, 0.15, 31));
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    for method in MethodKind::all() {
        let clusterer = method.build(4, 0.15);
        group.bench_function(method.name(), |b| {
            b.iter(|| clusterer.fit(&synth.dataset).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, baselines);
criterion_main!(benches);
