//! Merge/labeling phase scaling (paper: the whole method is O(η) in the
//! point count — Sec. IV). Phase three used to be the bound-breaker at
//! `O(β²·η·d)`; the single-scan engine restores `O(η)` at fixed β, which
//! this group measures directly: the β set is frozen once, then the merge
//! runs against growing dataset prefixes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrcc::{merge, search, BetaCluster, MrCCConfig};
use mrcc_common::Dataset;
use mrcc_counting_tree::CountingTree;
use mrcc_datagen::{generate, SyntheticSpec};

/// Runs phases one and two once, yielding the frozen β set of the workload.
fn fixed_betas(ds: &Dataset) -> Vec<BetaCluster> {
    let config = MrCCConfig::default();
    let mut tree = CountingTree::build(ds, config.resolutions).unwrap();
    search::find_beta_clusters(&mut tree, &config)
}

/// First `n` points of `ds` as their own dataset.
fn prefix(ds: &Dataset, n: usize) -> Dataset {
    let mut out = Dataset::new(ds.dims()).unwrap();
    for i in 0..n.min(ds.len()) {
        out.push(ds.point(i)).unwrap();
    }
    out
}

fn merge_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_scaling");
    group.sample_size(10);
    let synth = generate(&SyntheticSpec::new("m", 10, 40_000, 4, 0.15, 5));
    let betas = fixed_betas(&synth.dataset);

    // Linear in η at fixed β: the same β set merged over growing prefixes.
    for &n in &[5_000usize, 10_000, 20_000, 40_000] {
        let ds = prefix(&synth.dataset, n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("points", n), &ds, |b, ds| {
            b.iter(|| merge::build_correlation_clusters(ds, &betas, 1));
        });
    }

    // Thread sweep over the chunked single scan; output is bit-identical at
    // every count, so this measures scheduling overhead vs. scan speedup.
    for &t in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", t), &t, |b, &t| {
            b.iter(|| merge::build_correlation_clusters(&synth.dataset, &betas, t));
        });
    }

    // The superseded multi-scan path on small prefixes, for the before/after
    // contrast (it re-reads the dataset per β and per overlapping β-pair —
    // keep the sizes small).
    for &n in &[2_000usize, 4_000] {
        let ds = prefix(&synth.dataset, n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("oracle_points", n), &ds, |b, ds| {
            b.iter(|| merge::build_correlation_clusters_oracle(ds, &betas));
        });
    }
    group.finish();
}

criterion_group!(benches, merge_scaling);
criterion_main!(benches);
