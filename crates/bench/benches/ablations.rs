//! Design-choice micro-ablations: the face-only vs full Laplacian mask
//! (paper Section III-B: O(d) vs O(3^d) per cell) and the axis-selection
//! rule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrcc::{AxisSelection, MaskKind, MrCC, MrCCConfig};
use mrcc_datagen::{generate, SyntheticSpec};

fn ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    // Mask variants on growing d: the face-only mask stays flat, the full
    // mask blows up exponentially.
    for &d in &[4usize, 6, 8] {
        let synth = generate(&SyntheticSpec::new("a", d, 8_000, 3, 0.15, 21));
        for (label, mask) in [("face", MaskKind::FaceOnly), ("full", MaskKind::Full)] {
            let config = MrCCConfig {
                mask,
                ..Default::default()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("mask-{label}"), d),
                &synth,
                |b, s| {
                    b.iter(|| MrCC::new(config.clone()).fit(&s.dataset).unwrap());
                },
            );
        }
    }
    // Axis-selection rules.
    let synth = generate(&SyntheticSpec::new("a", 10, 12_000, 4, 0.15, 22));
    for (label, selection) in [
        ("share50", AxisSelection::Share(50.0)),
        ("mdl", AxisSelection::Mdl),
    ] {
        let config = MrCCConfig {
            axis_selection: selection,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("axis-selection", label), &synth, |b, s| {
            b.iter(|| MrCC::new(config.clone()).fit(&s.dataset).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
