//! Thread-count sweep for the deterministic parallel pipeline.
//!
//! ```text
//! parallel [--points N] [--runs R] [--out FILE]
//! ```
//!
//! Generates one fixed-seed synthetic workload (default 100 000 points,
//! 10 axes, 4 clusters), then times the sharded Counting-tree build and the
//! full `MrCC::fit` at 1/2/4/8 worker threads, best of `R` runs each
//! (default 3). Every parallel run is checked bit-identical to the serial
//! result before its timing is recorded, so the sweep doubles as an
//! end-to-end equivalence check.
//!
//! The report (default `BENCH_parallel.json`) records
//! `available_parallelism` alongside the timings: on a single-core host the
//! sweep measures pure scheduling + merge overhead and no wall-clock speedup
//! can appear — interpret `speedup_vs_serial` together with the core count.

use std::path::PathBuf;

use mrcc::{MrCC, MrCCConfig};
use mrcc_counting_tree::CountingTree;
use mrcc_datagen::{generate, SyntheticSpec};
use serde_json::{ToJson, Value};

/// Thread counts swept, serial first so later entries can report speedups.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One (phase, threads) measurement.
struct Sample {
    phase: &'static str,
    threads: usize,
    best_seconds: f64,
    speedup_vs_serial: f64,
    identical_to_serial: bool,
}

impl ToJson for Sample {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("phase".to_string(), self.phase.to_json()),
            ("threads".to_string(), self.threads.to_json()),
            ("best_seconds".to_string(), self.best_seconds.to_json()),
            (
                "speedup_vs_serial".to_string(),
                self.speedup_vs_serial.to_json(),
            ),
            (
                "identical_to_serial".to_string(),
                self.identical_to_serial.to_json(),
            ),
        ])
    }
}

fn main() {
    let mut n_points = 100_000usize;
    let mut runs = 3usize;
    let mut out = PathBuf::from("BENCH_parallel.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--points" => {
                let v = args.next().expect("--points needs a value");
                n_points = v.parse().expect("--points needs an integer");
            }
            "--runs" => {
                let v = args.next().expect("--runs needs a value");
                runs = v.parse::<usize>().expect("--runs needs an integer").max(1);
            }
            "--out" => {
                out = args.next().expect("--out needs a path").into();
            }
            other => {
                eprintln!("usage: parallel [--points N] [--runs R] [--out FILE]");
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    println!("generating {n_points}-point workload ({cores} core(s) available)...");
    let synth = generate(&SyntheticSpec::new("parallel", 10, n_points, 4, 0.15, 42));
    let ds = &synth.dataset;
    let resolutions = MrCCConfig::default().resolutions;

    let mut samples: Vec<Sample> = Vec::new();

    // Phase 1: Counting-tree construction (serial `build` vs `build_sharded`).
    let serial_tree = CountingTree::build(ds, resolutions).expect("serial build");
    let mut serial_secs = 0.0;
    for &t in &THREADS {
        let mut best = f64::INFINITY;
        let mut identical = true;
        for _ in 0..runs {
            let start = std::time::Instant::now();
            let tree = CountingTree::build_sharded(ds, resolutions, t).expect("sharded build");
            best = best.min(start.elapsed().as_secs_f64());
            identical &= tree.identical(&serial_tree);
        }
        if t == 1 {
            serial_secs = best;
        }
        assert!(identical, "tree at {t} threads differs from serial");
        println!(
            "tree_build  threads={t}: best {best:.3}s (x{:.2})",
            serial_secs / best
        );
        samples.push(Sample {
            phase: "tree_build",
            threads: t,
            best_seconds: best,
            speedup_vs_serial: serial_secs / best,
            identical_to_serial: identical,
        });
    }

    // Phase 2: full fit (sharded build + parallel β-cluster scan).
    let serial_fit = MrCC::new(MrCCConfig::default())
        .fit(ds)
        .expect("serial fit");
    let mut serial_secs = 0.0;
    for &t in &THREADS {
        let method = MrCC::new(MrCCConfig::default().with_threads(t));
        let mut best = f64::INFINITY;
        let mut identical = true;
        for _ in 0..runs {
            let start = std::time::Instant::now();
            let fit = method.fit(ds).expect("parallel fit");
            best = best.min(start.elapsed().as_secs_f64());
            identical &= fit.clustering.labels() == serial_fit.clustering.labels()
                && fit.clusters.len() == serial_fit.clusters.len()
                && fit.beta_clusters.len() == serial_fit.beta_clusters.len();
        }
        if t == 1 {
            serial_secs = best;
        }
        assert!(identical, "fit at {t} threads differs from serial");
        println!(
            "fit         threads={t}: best {best:.3}s (x{:.2})",
            serial_secs / best
        );
        samples.push(Sample {
            phase: "fit",
            threads: t,
            best_seconds: best,
            speedup_vs_serial: serial_secs / best,
            identical_to_serial: identical,
        });
    }

    let report = Value::Object(vec![
        ("n_points".to_string(), n_points.to_json()),
        ("dims".to_string(), ds.dims().to_json()),
        ("resolutions".to_string(), resolutions.to_json()),
        ("runs_per_point".to_string(), runs.to_json()),
        ("available_parallelism".to_string(), cores.to_json()),
        ("samples".to_string(), samples.to_json()),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).expect("write report");
    println!("wrote {}", out.display());
}
