//! η-sweep for the single-scan merge/labeling engine.
//!
//! ```text
//! merge [--points N] [--runs R] [--out FILE]
//! ```
//!
//! Generates one fixed-seed synthetic workload (default 40 000 points,
//! 10 axes, 4 clusters), freezes the β-cluster set found on the *full*
//! workload, then times phase three alone over growing dataset prefixes
//! (η/8, η/4, η/2, η) — best of `R` runs each (default 3). Every timed run
//! is checked bit-identical to the retained quadratic oracle before its
//! timing is recorded, so the sweep doubles as an end-to-end equivalence
//! check (like `BENCH_parallel.json` does for the fit pipeline).
//!
//! The report (default `BENCH_merge.json`) records seconds-per-point at
//! every η: the paper's bound says merge time is linear in η at fixed β,
//! i.e. `points_per_second` should stay flat across the sweep, and
//! `linearity_ratio` (slowest per-point rate over fastest) should stay
//! near 1. The oracle's own single-run timing is reported alongside for
//! the before/after contrast.

use std::path::PathBuf;

use mrcc::{merge, search, BetaCluster, CorrelationCluster, MergeCache, MrCCConfig};
use mrcc_common::{Dataset, SubspaceClustering};
use mrcc_counting_tree::CountingTree;
use mrcc_datagen::{generate, SyntheticSpec};
use serde_json::{ToJson, Value};

/// One η measurement.
struct Sample {
    n_points: usize,
    best_seconds: f64,
    points_per_second: f64,
    oracle_seconds: f64,
    speedup_vs_oracle: f64,
    identical_to_oracle: bool,
}

impl ToJson for Sample {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("n_points".to_string(), self.n_points.to_json()),
            ("best_seconds".to_string(), self.best_seconds.to_json()),
            (
                "points_per_second".to_string(),
                self.points_per_second.to_json(),
            ),
            ("oracle_seconds".to_string(), self.oracle_seconds.to_json()),
            (
                "speedup_vs_oracle".to_string(),
                self.speedup_vs_oracle.to_json(),
            ),
            (
                "identical_to_oracle".to_string(),
                self.identical_to_oracle.to_json(),
            ),
        ])
    }
}

/// True iff the engine output matches the oracle's bit for bit.
fn matches_oracle(
    engine: &(Vec<CorrelationCluster>, SubspaceClustering, MergeCache),
    oracle: &(Vec<CorrelationCluster>, SubspaceClustering),
) -> bool {
    let (clusters, clustering, _) = engine;
    let (oc, ocl) = oracle;
    clustering.labels() == ocl.labels()
        && clusters.len() == oc.len()
        && clusters.iter().zip(oc).all(|(x, y)| {
            x.axes == y.axes
                && x.beta_indices == y.beta_indices
                && x.size == y.size
                && (0..x.hull.dims()).all(|j| {
                    x.hull.lower(j).to_bits() == y.hull.lower(j).to_bits()
                        && x.hull.upper(j).to_bits() == y.hull.upper(j).to_bits()
                })
        })
}

/// First `n` points of `ds` as their own dataset.
fn prefix(ds: &Dataset, n: usize) -> Dataset {
    let mut out = Dataset::new(ds.dims()).expect("dims");
    for i in 0..n.min(ds.len()) {
        out.push(ds.point(i)).expect("normalized point");
    }
    out
}

fn main() {
    let mut n_points = 40_000usize;
    let mut runs = 3usize;
    let mut out = PathBuf::from("BENCH_merge.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--points" => {
                let v = args.next().expect("--points needs a value");
                n_points = v.parse().expect("--points needs an integer");
            }
            "--runs" => {
                let v = args.next().expect("--runs needs a value");
                runs = v.parse::<usize>().expect("--runs needs an integer").max(1);
            }
            "--out" => {
                out = args.next().expect("--out needs a path").into();
            }
            other => {
                eprintln!("usage: merge [--points N] [--runs R] [--out FILE]");
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    println!("generating {n_points}-point workload...");
    let synth = generate(&SyntheticSpec::new("merge", 10, n_points, 4, 0.15, 42));
    let ds = &synth.dataset;

    // Freeze the β set on the full workload so every η sees the same boxes.
    let config = MrCCConfig::default();
    let mut tree = CountingTree::build(ds, config.resolutions).expect("tree build");
    let betas: Vec<BetaCluster> = search::find_beta_clusters(&mut tree, &config);
    println!("frozen β set: {} clusters", betas.len());

    let sweep: Vec<usize> = [8usize, 4, 2, 1]
        .iter()
        .map(|&f| (n_points / f).max(1))
        .collect();
    let mut samples: Vec<Sample> = Vec::new();
    for &n in &sweep {
        let slice = prefix(ds, n);

        let oracle_start = std::time::Instant::now();
        let oracle = merge::build_correlation_clusters_oracle(&slice, &betas);
        let oracle_seconds = oracle_start.elapsed().as_secs_f64();

        let mut best = f64::INFINITY;
        let mut identical = true;
        for _ in 0..runs {
            let start = std::time::Instant::now();
            let engine = merge::build_correlation_clusters(&slice, &betas, 1);
            best = best.min(start.elapsed().as_secs_f64());
            identical &= matches_oracle(&engine, &oracle);
        }
        assert!(identical, "merge at η={n} differs from the oracle");
        let rate = n as f64 / best;
        println!(
            "merge  η={n:>7}: best {best:.4}s ({rate:.0} pts/s, oracle {oracle_seconds:.4}s, x{:.1})",
            oracle_seconds / best
        );
        samples.push(Sample {
            n_points: n,
            best_seconds: best,
            points_per_second: rate,
            oracle_seconds,
            speedup_vs_oracle: oracle_seconds / best,
            identical_to_oracle: identical,
        });
    }

    // Linearity summary: per-point cost spread across the sweep. Flat rates
    // (ratio near 1) mean merge time is linear in η at fixed β.
    let rates: Vec<f64> = samples.iter().map(|s| s.points_per_second).collect();
    let fastest = rates.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let slowest = rates.iter().copied().fold(f64::INFINITY, f64::min);
    let linearity_ratio = fastest / slowest;
    println!("linearity ratio (fastest/slowest pts/s): {linearity_ratio:.2}");

    let report = Value::Object(vec![
        ("n_points_max".to_string(), n_points.to_json()),
        ("dims".to_string(), ds.dims().to_json()),
        ("n_betas".to_string(), betas.len().to_json()),
        ("runs_per_point".to_string(), runs.to_json()),
        ("linearity_ratio".to_string(), linearity_ratio.to_json()),
        ("samples".to_string(), samples.to_json()),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).expect("write report");
    println!("wrote {}", out.display());
}
