//! CLI regenerating every table and figure of the MrCC evaluation.
//!
//! ```text
//! experiments [--scale F] [--timeout SECS] [--out DIR] <id>... | all
//! ```
//!
//! * `--scale` — fraction of the paper's dataset sizes (default 0.1; 1.0
//!   reproduces the full 12k–250k-point workloads).
//! * `--timeout` — per-run wall-clock budget in seconds (default 300; the
//!   paper used 3 h for LAC and a week for P3C).
//! * `--out` — results directory (default `results/`).
//!
//! Peak-memory columns come from the tracking global allocator installed
//! below, mirroring the paper's KB plots.

use std::time::Duration;

use mrcc_bench::{run_experiment, ExperimentOptions, ALL_EXPERIMENTS};
use mrcc_eval::TrackingAllocator;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

fn main() {
    let mut opts = ExperimentOptions::default();
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().expect("--scale needs a value");
                opts.scale = v.parse().expect("--scale needs a float");
                assert!(opts.scale > 0.0, "--scale must be positive");
            }
            "--timeout" => {
                let v = args.next().expect("--timeout needs a value");
                opts.budget = Duration::from_secs(v.parse().expect("--timeout needs seconds"));
            }
            "--out" => {
                opts.out_dir = args.next().expect("--out needs a directory").into();
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--scale F] [--timeout SECS] [--out DIR] <id>... | all"
                );
                println!("experiments: {}", ALL_EXPERIMENTS.join(", "));
                return;
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = ALL_EXPERIMENTS.iter().map(ToString::to_string).collect();
    }

    println!(
        "running {} experiment(s) at scale {} (budget {:?}) -> {}",
        ids.len(),
        opts.scale,
        opts.budget,
        opts.out_dir.display()
    );
    for id in &ids {
        println!("== {id} ==");
        let start = std::time::Instant::now();
        match run_experiment(id, &opts) {
            Ok(records) => println!(
                "== {id}: {} records in {:.1}s ==",
                records.len(),
                start.elapsed().as_secs_f64()
            ),
            Err(e) => {
                eprintln!("experiment {id} failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
