//! One driver per figure/table of the paper's evaluation (Section IV).
//!
//! Each experiment generates its workloads (optionally scaled down from the
//! paper's sizes), runs the relevant methods under a budget, and writes
//! `<id>.json` (raw records) plus `<id>.md` (Quality / Subspaces Quality /
//! time / memory tables shaped like the paper's figures) into the results
//! directory. See DESIGN.md's per-experiment index for the mapping to the
//! paper's figures.

use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;
use std::time::Duration;

use mrcc::{AxisSelection, MaskKind, MrCC, MrCCConfig};
use mrcc_common::SubspaceClustering;
use mrcc_datagen::{
    clusters_group, dims_group, first_group, generate, kdd_cup_2008_surrogate, noise_group,
    points_group, rotated_group, Synthetic, SyntheticSpec, View,
};
use mrcc_eval::{measure_peak, quality, run_with_timeout, subspace_quality, Timeout};

use crate::runner::{run_method, MethodKind, RunRecord};

/// Experiment ids, in DESIGN.md order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig4-alpha",
    "fig4-h",
    "fig5-first",
    "fig5-noise",
    "fig5-points",
    "fig5-clusters",
    "fig5-dims",
    "fig5-rotated",
    "fig5-subspaces",
    "fig5-real",
    "ablations",
    "extra-baselines",
];

/// Options shared by every experiment.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// Scale factor on the paper's dataset sizes (1.0 = full size).
    pub scale: f64,
    /// Per-run wall-clock budget.
    pub budget: Duration,
    /// Output directory for `<id>.json` / `<id>.md`.
    pub out_dir: PathBuf,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            scale: 0.1,
            budget: Duration::from_secs(300),
            out_dir: PathBuf::from("results"),
        }
    }
}

/// Runs one experiment by id and returns its records.
///
/// # Errors
/// I/O failures while writing result files; unknown ids.
pub fn run_experiment(id: &str, opts: &ExperimentOptions) -> io::Result<Vec<RunRecord>> {
    let records = match id {
        "fig4-alpha" => fig4_alpha(opts),
        "fig4-h" => fig4_h(opts),
        "fig5-first" => group_experiment(first_group(), opts),
        "fig5-noise" => group_experiment(noise_group(), opts),
        "fig5-points" => group_experiment(points_group(), opts),
        "fig5-clusters" => group_experiment(clusters_group(), opts),
        "fig5-dims" => group_experiment(dims_group(), opts),
        "fig5-rotated" => group_experiment(rotated_group(), opts),
        "fig5-subspaces" => group_experiment(first_group(), opts),
        "fig5-real" => fig5_real(opts),
        "ablations" => ablations(opts),
        "extra-baselines" => extra_baselines(opts),
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unknown experiment `{other}` (known: {ALL_EXPERIMENTS:?})"),
            ))
        }
    };
    write_results(id, &records, opts)?;
    Ok(records)
}

fn generate_scaled(spec: SyntheticSpec, scale: f64) -> Synthetic {
    generate(&spec.scaled(scale))
}

/// Runs all six methods over a dataset group (the figure-5 pattern).
fn group_experiment(specs: Vec<SyntheticSpec>, opts: &ExperimentOptions) -> Vec<RunRecord> {
    let mut records = Vec::new();
    for spec in specs {
        let synth = generate_scaled(spec, opts.scale);
        eprintln!(
            "  dataset {} ({} pts, {}d)",
            synth.name,
            synth.dataset.len(),
            synth.dataset.dims()
        );
        for method in MethodKind::all() {
            let r = run_method(method, &synth, opts.budget);
            eprintln!(
                "    {:<6} quality {:.3}  time {}  mem {}",
                r.method,
                r.quality,
                r.seconds.map_or("TIMEOUT".into(), |s| format!("{s:.2}s")),
                r.peak_kb.map_or("-".into(), |m| format!("{m:.0}KB")),
            );
            records.push(r);
        }
    }
    records
}

/// Runs one MrCC configuration and labels the record.
fn run_mrcc_config(
    label: String,
    config: MrCCConfig,
    synth: &Synthetic,
    budget: Duration,
) -> RunRecord {
    let dataset = synth.dataset.clone();
    let outcome = run_with_timeout(budget, move || {
        measure_peak(move || MrCC::new(config).fit(&dataset).map(|r| r.clustering))
    });
    finish_record(label, synth, outcome)
}

fn finish_record(
    label: String,
    synth: &Synthetic,
    outcome: Timeout<(
        mrcc_common::Result<SubspaceClustering>,
        mrcc_eval::MemoryReport,
    )>,
) -> RunRecord {
    let mut record = RunRecord {
        dataset: synth.name.clone(),
        method: label,
        n_points: synth.dataset.len(),
        dims: synth.dataset.dims(),
        quality: 0.0,
        subspace_quality: None,
        seconds: None,
        peak_kb: None,
        clusters_found: 0,
        timed_out: false,
    };
    match outcome {
        Timeout::TimedOut { .. } => record.timed_out = true,
        Timeout::Finished {
            value: (fit, memory),
            elapsed,
        } => {
            record.seconds = Some(elapsed.as_secs_f64());
            if memory.tracked {
                record.peak_kb = Some(memory.peak_kb());
            }
            if let Ok(clustering) = fit {
                record.clusters_found = clustering.len();
                record.quality = quality(&clustering, &synth.ground_truth).quality;
                record.subspace_quality =
                    Some(subspace_quality(&clustering, &synth.ground_truth).quality);
            }
        }
    }
    record
}

/// Fig. 4a–c: MrCC sensitivity to the significance level α.
fn fig4_alpha(opts: &ExperimentOptions) -> Vec<RunRecord> {
    let alphas = [1e-3, 1e-5, 1e-10, 1e-20, 1e-40, 1e-80, 1e-160];
    let mut records = Vec::new();
    for spec in first_group() {
        let synth = generate_scaled(spec, opts.scale);
        eprintln!("  dataset {}", synth.name);
        for &alpha in &alphas {
            let config = MrCCConfig::with_params(alpha, 4);
            let r = run_mrcc_config(format!("alpha={alpha:.0e}"), config, &synth, opts.budget);
            eprintln!("    α={alpha:.0e}: quality {:.3}", r.quality);
            records.push(r);
        }
    }
    records
}

/// Fig. 4d–f: MrCC sensitivity to the resolution count H.
///
/// The paper sweeps H up to 80; grid coordinates beyond the f64 mantissa add
/// nothing, so the sweep tops out at the Counting-tree's cap of 64
/// (EXPERIMENTS.md discusses this).
fn fig4_h(opts: &ExperimentOptions) -> Vec<RunRecord> {
    let hs = [4usize, 5, 10, 20, 40, 64];
    let mut records = Vec::new();
    for spec in first_group() {
        let synth = generate_scaled(spec, opts.scale);
        eprintln!("  dataset {}", synth.name);
        for &h in &hs {
            let config = MrCCConfig::with_params(1e-10, h);
            let r = run_mrcc_config(format!("H={h}"), config, &synth, opts.budget);
            eprintln!(
                "    H={h}: quality {:.3} time {}",
                r.quality,
                r.seconds.map_or("TIMEOUT".into(), |s| format!("{s:.2}s"))
            );
            records.push(r);
        }
    }
    records
}

/// Fig. 5t: the real-data table (KDD Cup 2008 surrogate, left-MLO view).
///
/// The real dataset has a fixed size (≈25k ROIs per view), so the global
/// scale option is not applied here.
fn fig5_real(_opts: &ExperimentOptions) -> Vec<RunRecord> {
    let kdd = kdd_cup_2008_surrogate(View::LeftMLO, 1.0);
    let synth = &kdd.synthetic;
    eprintln!(
        "  dataset {} ({} pts, {}d, {} malignant)",
        synth.name,
        synth.dataset.len(),
        synth.dataset.dims(),
        kdd.malignant.iter().filter(|&&m| m).count()
    );
    let mut records = Vec::new();
    for method in MethodKind::all() {
        let r = run_method(method, synth, _opts.budget);
        eprintln!(
            "    {:<6} quality {:.3}  time {}",
            r.method,
            r.quality,
            r.seconds.map_or("TIMEOUT".into(), |s| format!("{s:.2}s"))
        );
        records.push(r);
    }
    records
}

/// Design-choice ablations (DESIGN.md): mask variant, axis selection,
/// effect-size floor, resolution count.
fn ablations(opts: &ExperimentOptions) -> Vec<RunRecord> {
    // A mid-size, low-d dataset so the full mask stays tractable.
    let spec = SyntheticSpec::new("ablation-8d", 8, 40_000, 4, 0.15, 0xAB1A);
    let synth = generate_scaled(spec, opts.scale.max(0.25));
    let mut variants: Vec<(String, MrCCConfig)> = vec![
        (
            "default (face mask, share-50)".into(),
            MrCCConfig::default(),
        ),
        (
            "full 3^d mask".into(),
            MrCCConfig {
                mask: MaskKind::Full,
                ..Default::default()
            },
        ),
        (
            "MDL cut + floor".into(),
            MrCCConfig {
                axis_selection: AxisSelection::Mdl,
                ..Default::default()
            },
        ),
        (
            "paper-pure MDL (no floor)".into(),
            MrCCConfig {
                axis_selection: AxisSelection::Mdl,
                relevance_floor: 0.0,
                ..Default::default()
            },
        ),
        (
            "share-70 (over-strict)".into(),
            MrCCConfig {
                axis_selection: AxisSelection::Share(70.0),
                ..Default::default()
            },
        ),
    ];
    for h in [3usize, 4, 6, 8] {
        variants.push((format!("H={h}"), MrCCConfig::with_params(1e-10, h)));
    }
    let mut records = Vec::new();
    for (label, config) in variants {
        let r = run_mrcc_config(label.clone(), config, &synth, opts.budget);
        eprintln!(
            "  {:<28} quality {:.3} time {}",
            label,
            r.quality,
            r.seconds.map_or("TIMEOUT".into(), |s| format!("{s:.2}s"))
        );
        records.push(r);
    }
    records
}

/// Extended comparison: the paper's six methods plus CLIQUE and PROCLUS
/// (the bottom-up and top-down ancestors discussed in Section II) on the
/// first dataset group.
fn extra_baselines(opts: &ExperimentOptions) -> Vec<RunRecord> {
    let mut records = Vec::new();
    for spec in first_group() {
        let synth = generate_scaled(spec, opts.scale);
        eprintln!("  dataset {}", synth.name);
        for method in MethodKind::extended() {
            let r = run_method(method, &synth, opts.budget);
            eprintln!(
                "    {:<8} quality {:.3}  time {}",
                r.method,
                r.quality,
                r.seconds.map_or("TIMEOUT".into(), |s| format!("{s:.2}s")),
            );
            records.push(r);
        }
    }
    records
}

/// Writes `<id>.json` and `<id>.md` into the output directory.
fn write_results(id: &str, records: &[RunRecord], opts: &ExperimentOptions) -> io::Result<()> {
    std::fs::create_dir_all(&opts.out_dir)?;
    let json = serde_json::to_string_pretty(records).expect("records serialize");
    std::fs::write(opts.out_dir.join(format!("{id}.json")), json)?;
    std::fs::write(
        opts.out_dir.join(format!("{id}.md")),
        render_markdown(id, records),
    )?;
    Ok(())
}

/// Renders the paper-figure-shaped tables.
fn render_markdown(id: &str, records: &[RunRecord]) -> String {
    let mut datasets: Vec<&str> = Vec::new();
    let mut methods: Vec<&str> = Vec::new();
    for r in records {
        if !datasets.contains(&r.dataset.as_str()) {
            datasets.push(&r.dataset);
        }
        if !methods.contains(&r.method.as_str()) {
            methods.push(&r.method);
        }
    }
    let find = |ds: &str, m: &str| records.iter().find(|r| r.dataset == ds && r.method == m);

    let mut out = String::new();
    let _ = writeln!(out, "# Experiment `{id}`\n");
    type CellFmt = Box<dyn Fn(&RunRecord) -> String>;
    let sections: [(&str, CellFmt); 4] = [
        (
            "Quality",
            Box::new(|r: &RunRecord| format!("{:.3}", r.quality)),
        ),
        (
            "Subspaces Quality",
            Box::new(|r: &RunRecord| {
                r.subspace_quality
                    .map_or("-".to_string(), |q| format!("{q:.3}"))
            }),
        ),
        (
            "Wall clock (s)",
            Box::new(|r: &RunRecord| {
                if r.timed_out {
                    "TIMEOUT".to_string()
                } else {
                    r.seconds.map_or("-".to_string(), |s| format!("{s:.3}"))
                }
            }),
        ),
        (
            "Peak memory (KB)",
            Box::new(|r: &RunRecord| r.peak_kb.map_or("-".to_string(), |m| format!("{m:.0}"))),
        ),
    ];
    for (title, fmt) in sections {
        let _ = writeln!(out, "## {title}\n");
        let _ = write!(out, "| dataset |");
        for m in &methods {
            let _ = write!(out, " {m} |");
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|");
        for _ in &methods {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for ds in &datasets {
            let _ = write!(out, "| {ds} |");
            for m in &methods {
                let cell = find(ds, m).map_or("-".to_string(), &fmt);
                let _ = write!(out, " {cell} |");
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts(dir: &str) -> ExperimentOptions {
        ExperimentOptions {
            scale: 0.02,
            budget: Duration::from_secs(60),
            out_dir: std::env::temp_dir().join(dir),
        }
    }

    #[test]
    fn unknown_experiment_is_an_error() {
        let err = run_experiment("fig9-nope", &quick_opts("mrcc-x")).unwrap_err();
        assert!(err.to_string().contains("unknown experiment"));
    }

    #[test]
    fn ablations_run_and_write_files() {
        let opts = quick_opts("mrcc-ablate");
        let records = run_experiment("ablations", &opts).unwrap();
        assert!(records.len() >= 8);
        assert!(opts.out_dir.join("ablations.json").exists());
        let md = std::fs::read_to_string(opts.out_dir.join("ablations.md")).unwrap();
        assert!(md.contains("## Quality"));
        assert!(md.contains("paper-pure MDL"));
    }

    #[test]
    fn group_experiment_runs_all_methods_at_tiny_scale() {
        let opts = quick_opts("mrcc-group");
        let records = run_experiment("fig5-noise", &opts).unwrap();
        // 5 datasets × 6 methods.
        assert_eq!(records.len(), 30);
        let methods: std::collections::HashSet<&str> =
            records.iter().map(|r| r.method.as_str()).collect();
        assert!(methods.contains("MrCC") && methods.contains("P3C"));
        // Every record carries timing unless it timed out.
        for r in &records {
            assert!(
                r.timed_out || r.seconds.is_some(),
                "{} missing time",
                r.method
            );
        }
    }

    #[test]
    fn extra_baselines_include_the_ancestors() {
        let opts = quick_opts("mrcc-extra");
        let records = run_experiment("extra-baselines", &opts).unwrap();
        let methods: std::collections::HashSet<&str> =
            records.iter().map(|r| r.method.as_str()).collect();
        for m in ["CLIQUE", "PROCLUS", "STING", "MrCC"] {
            assert!(methods.contains(m), "{m} missing");
        }
    }

    #[test]
    fn markdown_renders_all_sections() {
        let records = vec![RunRecord {
            dataset: "6d".into(),
            method: "MrCC".into(),
            n_points: 100,
            dims: 6,
            quality: 0.95,
            subspace_quality: Some(0.9),
            seconds: Some(0.5),
            peak_kb: Some(128.0),
            clusters_found: 2,
            timed_out: false,
        }];
        let md = render_markdown("test", &records);
        assert!(md.contains("0.950"));
        assert!(md.contains("0.900"));
        assert!(md.contains("0.500"));
        assert!(md.contains("128"));
    }
}
