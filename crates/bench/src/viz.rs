//! Minimal SVG scatter plots of clusterings — the paper's Figure 1 views.
//!
//! Renders a 2-d projection of a clustered dataset onto a chosen axis pair
//! (noise in grey, clusters in a rotating palette), or a grid of all
//! pairwise projections. No drawing dependency: SVG is written directly.

use std::fmt::Write as _;

use mrcc_common::{Dataset, SubspaceClustering, NOISE};

/// Colour palette for clusters (cycled); noise uses [`NOISE_COLOR`].
pub const PALETTE: [&str; 10] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#e377c2", "#17becf",
    "#bcbd22", "#7f7f7f",
];

/// Colour used for noise points.
pub const NOISE_COLOR: &str = "#cccccc";

/// Renders one axis-pair projection as an SVG string.
///
/// # Panics
/// Panics when either axis is out of range or the clustering does not match
/// the dataset.
pub fn scatter_svg(
    ds: &Dataset,
    clustering: &SubspaceClustering,
    axis_x: usize,
    axis_y: usize,
    size_px: u32,
) -> String {
    assert!(
        axis_x < ds.dims() && axis_y < ds.dims(),
        "axis out of range"
    );
    assert_eq!(ds.len(), clustering.n_points(), "clustering mismatch");
    let labels = clustering.labels();
    let s = size_px as f64;
    let margin = 0.05 * s;
    let span = s - 2.0 * margin;
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{size_px}" height="{size_px}" viewBox="0 0 {size_px} {size_px}">"#
    );
    let _ = writeln!(
        svg,
        r##"<rect width="100%" height="100%" fill="white"/><rect x="{margin}" y="{margin}" width="{span}" height="{span}" fill="none" stroke="#888" stroke-width="1"/>"##
    );
    let _ = writeln!(
        svg,
        r##"<text x="{}" y="{}" font-size="{}" fill="#444">e{} vs e{}</text>"##,
        margin,
        0.8 * margin,
        0.6 * margin,
        axis_x + 1,
        axis_y + 1
    );
    // Noise first so cluster points draw on top.
    for pass in [true, false] {
        for (i, p) in ds.iter().enumerate() {
            let is_noise = labels[i] == NOISE;
            if is_noise != pass {
                continue;
            }
            let color = if is_noise {
                NOISE_COLOR
            } else {
                PALETTE[labels[i] as usize % PALETTE.len()]
            };
            let x = margin + p[axis_x] * span;
            // SVG y grows downward; flip so the plot reads mathematically.
            let y = margin + (1.0 - p[axis_y]) * span;
            let _ = writeln!(
                svg,
                r#"<circle cx="{x:.2}" cy="{y:.2}" r="1.6" fill="{color}" fill-opacity="0.75"/>"#
            );
        }
    }
    svg.push_str("</svg>\n");
    svg
}

/// Renders every axis pair of a low-dimensional dataset into one SVG grid
/// (capped at `max_pairs` panels to keep files sane).
pub fn pair_grid_svg(
    ds: &Dataset,
    clustering: &SubspaceClustering,
    panel_px: u32,
    max_pairs: usize,
) -> String {
    let d = ds.dims();
    let pairs: Vec<(usize, usize)> = (0..d)
        .flat_map(|a| ((a + 1)..d).map(move |b| (a, b)))
        .take(max_pairs)
        .collect();
    let cols = (pairs.len() as f64).sqrt().ceil() as usize;
    let rows = pairs.len().div_ceil(cols.max(1));
    let (w, h) = (cols as u32 * panel_px, rows as u32 * panel_px);
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
    );
    for (idx, &(a, b)) in pairs.iter().enumerate() {
        let (col, row) = (idx % cols, idx / cols);
        let panel = scatter_svg(ds, clustering, a, b, panel_px);
        // Strip the outer <svg> wrapper, translate the body into place.
        let body: String = panel
            .lines()
            .skip(1)
            .take_while(|l| !l.starts_with("</svg>"))
            .collect::<Vec<_>>()
            .join("\n");
        let _ = writeln!(
            svg,
            r#"<g transform="translate({},{})">{body}</g>"#,
            col as u32 * panel_px,
            row as u32 * panel_px
        );
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrcc_common::{AxisMask, SubspaceCluster};

    fn sample() -> (Dataset, SubspaceClustering) {
        let ds = Dataset::from_rows(&[
            [0.1, 0.2, 0.3],
            [0.15, 0.25, 0.35],
            [0.8, 0.9, 0.1],
            [0.5, 0.5, 0.5],
        ])
        .unwrap();
        let clustering = SubspaceClustering::new(
            4,
            3,
            vec![
                SubspaceCluster::new(vec![0, 1], AxisMask::from_axes(3, [0, 1])),
                SubspaceCluster::new(vec![2], AxisMask::from_axes(3, [2])),
            ],
        );
        (ds, clustering)
    }

    #[test]
    fn scatter_contains_all_points_and_colors() {
        let (ds, c) = sample();
        let svg = scatter_svg(&ds, &c, 0, 1, 400);
        assert_eq!(svg.matches("<circle").count(), 4);
        assert!(svg.contains(PALETTE[0]));
        assert!(svg.contains(PALETTE[1]));
        assert!(svg.contains(NOISE_COLOR)); // point 3 is noise
        assert!(svg.starts_with("<svg") && svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn y_axis_is_flipped() {
        let (ds, c) = sample();
        let svg = scatter_svg(&ds, &c, 0, 1, 100);
        // Point 2 has the highest y (0.9) → smallest cy.
        let cys: Vec<f64> = svg
            .lines()
            .filter(|l| l.contains("<circle"))
            .map(|l| {
                l.split("cy=\"")
                    .nth(1)
                    .unwrap()
                    .split('"')
                    .next()
                    .unwrap()
                    .parse()
                    .unwrap()
            })
            .collect();
        let min_cy = cys.iter().copied().fold(f64::INFINITY, f64::min);
        // Noise drawn first: order is [noise(0.5), c0(0.2), c0(0.25), c1(0.9)].
        assert!((cys[3] - min_cy).abs() < 1e-9);
    }

    #[test]
    fn pair_grid_covers_pairs() {
        let (ds, c) = sample();
        let svg = pair_grid_svg(&ds, &c, 200, 10);
        // 3 axes → 3 pairs → 3 panels × 4 points.
        assert_eq!(svg.matches("<circle").count(), 12);
        assert_eq!(svg.matches("<g transform").count(), 3);
    }

    #[test]
    fn pair_cap_is_respected() {
        let (ds, c) = sample();
        let svg = pair_grid_svg(&ds, &c, 200, 2);
        assert_eq!(svg.matches("<g transform").count(), 2);
    }

    #[test]
    #[should_panic(expected = "axis out of range")]
    fn rejects_bad_axis() {
        let (ds, c) = sample();
        let _ = scatter_svg(&ds, &c, 0, 5, 100);
    }
}
