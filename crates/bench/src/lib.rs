#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Benchmark harness for the MrCC reproduction.
//!
//! The [`runner`] module knows how to construct every method with the
//! paper's tuning for a given dataset spec, run it under a wall-clock budget
//! while tracking peak heap usage, and score the result with the paper's
//! Quality metrics. The [`experiments`] module drives one experiment per
//! figure/table of Section IV (see DESIGN.md's per-experiment index) and
//! renders markdown + JSON tables into a results directory; the
//! `experiments` binary is its CLI.

pub mod experiments;
pub mod runner;
pub mod viz;

pub use experiments::{run_experiment, ExperimentOptions, ALL_EXPERIMENTS};
pub use runner::{run_method, MethodKind, RunRecord};
pub use viz::{pair_grid_svg, scatter_svg};
