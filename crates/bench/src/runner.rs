//! Single-run execution: method construction, budgeted execution, scoring.

use std::time::Duration;

use mrcc::{MrCC, MrCCConfig};
use mrcc_baselines::{
    Clique, Doc, DocConfig, Epch, EpchConfig, Harp, HarpConfig, Lac, LacConfig, P3c, P3cConfig,
    Proclus, ProclusConfig, Sting, SubspaceClusterer,
};
use mrcc_common::SubspaceClustering;
use mrcc_datagen::Synthetic;
use mrcc_eval::{measure_peak, quality, run_with_timeout, subspace_quality, Timeout};
use serde_json::{ToJson, Value};

/// The methods of the paper's comparison (Section IV-E tuning).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// MrCC with the paper's fixed `α = 1e−10`, `H = 4`.
    MrCC,
    /// LAC given the true cluster count.
    Lac,
    /// EPCH given the true cluster count.
    Epch,
    /// CFPC (DOC core) given the true cluster count.
    Cfpc,
    /// P3C (parameter-free except the Poisson threshold).
    P3c,
    /// HARP given the true cluster count and noise percentage.
    Harp,
    /// CLIQUE (extended comparison; not in the paper's Figure 5).
    Clique,
    /// PROCLUS given the true cluster count (extended comparison).
    Proclus,
    /// STING (extended comparison; full-space grid, the paper's cited basis).
    Sting,
}

impl MethodKind {
    /// The six methods of the paper's comparison, in reporting order.
    pub fn all() -> [MethodKind; 6] {
        [
            MethodKind::P3c,
            MethodKind::Lac,
            MethodKind::Epch,
            MethodKind::Cfpc,
            MethodKind::Harp,
            MethodKind::MrCC,
        ]
    }

    /// The paper's six plus the historical ancestors (CLIQUE, PROCLUS,
    /// STING).
    pub fn extended() -> [MethodKind; 9] {
        [
            MethodKind::Clique,
            MethodKind::Proclus,
            MethodKind::Sting,
            MethodKind::P3c,
            MethodKind::Lac,
            MethodKind::Epch,
            MethodKind::Cfpc,
            MethodKind::Harp,
            MethodKind::MrCC,
        ]
    }

    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            MethodKind::MrCC => "MrCC",
            MethodKind::Lac => "LAC",
            MethodKind::Epch => "EPCH",
            MethodKind::Cfpc => "CFPC",
            MethodKind::P3c => "P3C",
            MethodKind::Harp => "HARP",
            MethodKind::Clique => "CLIQUE",
            MethodKind::Proclus => "PROCLUS",
            MethodKind::Sting => "STING",
        }
    }

    /// Whether the method defines relevant axes (LAC only ranks them, so the
    /// paper excludes it from Subspaces Quality).
    pub fn reports_subspaces(&self) -> bool {
        !matches!(self, MethodKind::Lac)
    }

    /// Builds the method tuned as in the paper for the given workload
    /// (true cluster count / noise fraction supplied where the paper did).
    pub fn build(&self, n_clusters: usize, noise_fraction: f64) -> Box<dyn SubspaceClusterer> {
        let k = n_clusters.max(1);
        match self {
            MethodKind::MrCC => Box::new(MrCCClusterer(MrCC::new(MrCCConfig::default()))),
            MethodKind::Lac => Box::new(Lac::new(LacConfig::new(k))),
            MethodKind::Epch => Box::new(Epch::new(EpchConfig::new(k))),
            MethodKind::Cfpc => Box::new(Doc::new(DocConfig::new(k))),
            MethodKind::P3c => Box::new(P3c::new(P3cConfig::default())),
            MethodKind::Harp => Box::new(Harp::new(HarpConfig::new(k, noise_fraction))),
            MethodKind::Clique => Box::new(Clique::default()),
            MethodKind::Proclus => Box::new(Proclus::new(ProclusConfig::new(k, 2))),
            MethodKind::Sting => Box::new(Sting::default()),
        }
    }
}

/// Adapter exposing MrCC through the baseline trait.
struct MrCCClusterer(MrCC);

impl SubspaceClusterer for MrCCClusterer {
    fn name(&self) -> &'static str {
        "MrCC"
    }

    fn fit(&self, ds: &mrcc_common::Dataset) -> mrcc_common::Result<SubspaceClustering> {
        Ok(self.0.fit(ds)?.clustering)
    }
}

/// One (dataset, method) measurement.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Dataset name.
    pub dataset: String,
    /// Method name.
    pub method: String,
    /// Points in the dataset.
    pub n_points: usize,
    /// Dimensionality.
    pub dims: usize,
    /// The paper's Quality (0 when the method found nothing / timed out).
    pub quality: f64,
    /// Subspaces Quality (None for LAC and timeouts).
    pub subspace_quality: Option<f64>,
    /// Wall-clock seconds (None on timeout).
    pub seconds: Option<f64>,
    /// Peak heap during the run, KiB (None on timeout or when no tracking
    /// allocator is installed).
    pub peak_kb: Option<f64>,
    /// Clusters found.
    pub clusters_found: usize,
    /// Whether the run missed its budget.
    pub timed_out: bool,
}

// Hand-written because the offline serde_json stand-in has no derive macros
// (see vendor/serde_json).
impl ToJson for RunRecord {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("dataset".to_string(), self.dataset.to_json()),
            ("method".to_string(), self.method.to_json()),
            ("n_points".to_string(), self.n_points.to_json()),
            ("dims".to_string(), self.dims.to_json()),
            ("quality".to_string(), self.quality.to_json()),
            (
                "subspace_quality".to_string(),
                self.subspace_quality.to_json(),
            ),
            ("seconds".to_string(), self.seconds.to_json()),
            ("peak_kb".to_string(), self.peak_kb.to_json()),
            ("clusters_found".to_string(), self.clusters_found.to_json()),
            ("timed_out".to_string(), self.timed_out.to_json()),
        ])
    }
}

/// Runs one method on one synthetic workload under a budget.
pub fn run_method(method: MethodKind, synth: &Synthetic, budget: Duration) -> RunRecord {
    let clusterer = method.build(synth.ground_truth.len(), synth.spec.noise_fraction);
    let dataset = synth.dataset.clone();
    let outcome = run_with_timeout(budget, move || {
        measure_peak(move || clusterer.fit(&dataset))
    });

    let mut record = RunRecord {
        dataset: synth.name.clone(),
        method: method.name().to_string(),
        n_points: synth.dataset.len(),
        dims: synth.dataset.dims(),
        quality: 0.0,
        subspace_quality: None,
        seconds: None,
        peak_kb: None,
        clusters_found: 0,
        timed_out: false,
    };
    match outcome {
        Timeout::TimedOut { .. } => {
            record.timed_out = true;
        }
        Timeout::Finished {
            value: (fit, memory),
            elapsed,
        } => {
            record.seconds = Some(elapsed.as_secs_f64());
            if memory.tracked {
                record.peak_kb = Some(memory.peak_kb());
            }
            if let Ok(clustering) = fit {
                record.clusters_found = clustering.len();
                record.quality = quality(&clustering, &synth.ground_truth).quality;
                if method.reports_subspaces() {
                    record.subspace_quality =
                        Some(subspace_quality(&clustering, &synth.ground_truth).quality);
                }
            }
        }
    }
    record
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrcc_datagen::{generate, SyntheticSpec};

    fn tiny() -> Synthetic {
        generate(&SyntheticSpec::new("tiny", 6, 3_000, 2, 0.1, 3))
    }

    #[test]
    fn mrcc_run_produces_scores() {
        let synth = tiny();
        let r = run_method(MethodKind::MrCC, &synth, Duration::from_secs(60));
        assert!(!r.timed_out);
        assert!(r.seconds.is_some());
        assert!(r.quality > 0.5, "quality {}", r.quality);
        assert!(r.subspace_quality.is_some());
    }

    #[test]
    fn lac_has_no_subspace_quality() {
        let synth = tiny();
        let r = run_method(MethodKind::Lac, &synth, Duration::from_secs(60));
        assert!(!r.timed_out);
        assert!(r.subspace_quality.is_none());
        assert!(r.quality > 0.0);
    }

    #[test]
    fn timeout_is_reported_as_missing_data() {
        let synth = tiny();
        let r = run_method(MethodKind::Harp, &synth, Duration::from_nanos(1));
        assert!(r.timed_out);
        assert!(r.seconds.is_none());
        assert_eq!(r.quality, 0.0);
    }

    #[test]
    fn every_method_finishes_on_a_tiny_workload() {
        let synth = tiny();
        for m in MethodKind::all() {
            let r = run_method(m, &synth, Duration::from_secs(120));
            assert!(!r.timed_out, "{} timed out", m.name());
        }
    }
}
