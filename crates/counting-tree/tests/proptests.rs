//! Property-based invariants of the Counting-tree.

use mrcc_common::Dataset;
use mrcc_counting_tree::{CountingTree, Direction};
use proptest::prelude::*;

/// Strategy: a random dataset with 1–200 points in 1–8 dimensions, all
/// coordinates in [0, 1).
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (1usize..=8).prop_flat_map(|d| {
        proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, d..=d), 1..200)
            .prop_map(move |rows| Dataset::from_rows(&rows).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every level counts every point exactly once.
    #[test]
    fn levels_conserve_mass(ds in dataset_strategy(), h in 3usize..=7) {
        let tree = CountingTree::build(&ds, h).unwrap();
        #[cfg(feature = "strict-invariants")]
        tree.check_invariants();
        for level in tree.levels() {
            prop_assert_eq!(level.total_points(), ds.len() as u64);
        }
    }

    /// No level materializes more cells than there are points, and every
    /// cell is non-empty with coordinates inside the grid extent.
    #[test]
    fn cells_are_sparse_and_in_range(ds in dataset_strategy()) {
        let tree = CountingTree::build(&ds, 5).unwrap();
        for level in tree.levels() {
            prop_assert!(level.n_cells() <= ds.len());
            for (_, cell) in level.iter() {
                prop_assert!(cell.n() >= 1);
                for &c in cell.coords() {
                    prop_assert!(c < level.grid_extent());
                }
            }
        }
    }

    /// Half-space counts never exceed the cell count and the two halves sum
    /// to the whole: P[j] ∈ [0, n].
    #[test]
    fn half_space_counts_bounded(ds in dataset_strategy()) {
        let tree = CountingTree::build(&ds, 5).unwrap();
        for level in tree.levels() {
            for (_, cell) in level.iter() {
                for j in 0..tree.dims() {
                    prop_assert!(cell.half_count(j) <= cell.n());
                }
            }
        }
    }

    /// Each cell's count equals the sum of its children's counts.
    #[test]
    fn parent_child_mass(ds in dataset_strategy()) {
        let tree = CountingTree::build(&ds, 5).unwrap();
        #[cfg(feature = "strict-invariants")]
        tree.check_invariants();
        let d = tree.dims();
        for h in 1..tree.deepest_level() {
            let level = tree.level(h);
            let child = tree.level(h + 1);
            // Accumulate child masses into parent keys.
            use std::collections::HashMap;
            let mut acc: HashMap<Vec<u64>, u64> = HashMap::new();
            for (_, cc) in child.iter() {
                let key: Vec<u64> = (0..d).map(|k| cc.coords()[k] >> 1).collect();
                *acc.entry(key).or_insert(0) += cc.n();
            }
            for (_, cell) in level.iter() {
                prop_assert_eq!(acc.get(cell.coords()).copied().unwrap_or(0), cell.n());
            }
        }
    }

    /// Face-neighbor relation is symmetric.
    #[test]
    fn neighbor_symmetry(ds in dataset_strategy()) {
        let tree = CountingTree::build(&ds, 4).unwrap();
        for level in tree.levels() {
            for (id, _) in level.iter() {
                for j in 0..tree.dims() {
                    if let Some(up) = level.neighbor(id, j, Direction::Upper) {
                        prop_assert_eq!(level.neighbor(up, j, Direction::Lower), Some(id));
                    }
                    if let Some(lo) = level.neighbor(id, j, Direction::Lower) {
                        prop_assert_eq!(level.neighbor(lo, j, Direction::Upper), Some(id));
                    }
                }
            }
        }
    }

    /// Sharded builds are bit-for-bit identical to serial builds for every
    /// thread count, including counts exceeding the point count.
    #[test]
    fn sharded_build_equals_serial(ds in dataset_strategy(), threads in 2usize..=9) {
        let serial = CountingTree::build(&ds, 4).unwrap();
        let sharded = CountingTree::build_sharded(&ds, 4, threads).unwrap();
        prop_assert!(sharded.identical(&serial));
        #[cfg(feature = "strict-invariants")]
        sharded.check_invariants();
    }

    /// The deepest level's cell bounds actually contain the points that were
    /// inserted: rebuild membership by brute force and compare counts.
    #[test]
    fn deepest_cells_contain_their_points(ds in dataset_strategy()) {
        let tree = CountingTree::build(&ds, 4).unwrap();
        let h = tree.deepest_level();
        let level = tree.level(h);
        let side = level.side();
        for (_, cell) in level.iter() {
            let brute = ds
                .iter()
                .filter(|p| {
                    (0..tree.dims()).all(|j| {
                        p[j] >= cell.lower_bound(j, side) && p[j] < cell.upper_bound(j, side)
                    })
                })
                .count() as u64;
            prop_assert_eq!(brute, cell.n());
        }
    }
}
