//! Range-count queries over the Counting-tree.
//!
//! The tree is a multi-resolution histogram, so it can answer "how many
//! points fall in this axis-aligned box?" without touching the data:
//! exactly when the box is aligned to some level's grid (every β-cluster
//! box is — their bounds are built from cell edges), and approximately for
//! arbitrary boxes by prorating the deepest level's partially-covered cells
//! by overlap volume.

use crate::tree::CountingTree;
use mrcc_common::num::{count_to_f64, trunc_to_u64};

/// How close to a grid line a bound must sit to count as aligned.
const ALIGN_EPS: f64 = 1e-9;

impl CountingTree {
    /// Exact count of points inside `[lower_j, upper_j)` for every axis,
    /// provided the box aligns with level `h`'s grid (all bounds sit on
    /// multiples of `1/2^h`). Returns `None` when any bound is off-grid.
    ///
    /// Runs in `O(cells at level h)` — it scans the level's materialized
    /// cells and sums those inside the box; no point data is touched.
    ///
    /// # Panics
    /// Panics when the bounds' length differs from the tree's
    /// dimensionality, any `lower > upper`, or `h` is out of range.
    pub fn count_in_aligned_box(&self, h: usize, lower: &[f64], upper: &[f64]) -> Option<u64> {
        assert_eq!(lower.len(), self.dims(), "bounds dimensionality mismatch");
        assert_eq!(upper.len(), self.dims(), "bounds dimensionality mismatch");
        let level = self.level(h);
        let extent = level.grid_extent();
        let side = level.side();

        // Convert bounds to integer grid coordinates; reject off-grid.
        let mut lo = Vec::with_capacity(self.dims());
        let mut hi = Vec::with_capacity(self.dims());
        for (j, (&lb, &ub)) in lower.iter().zip(upper).enumerate() {
            assert!(lb <= ub, "axis {j}: inverted bounds");
            let l = lb / side;
            let u = ub / side;
            if (l - l.round()).abs() > ALIGN_EPS || (u - u.round()).abs() > ALIGN_EPS {
                return None;
            }
            lo.push(trunc_to_u64(l.round()).min(extent));
            hi.push(trunc_to_u64(u.round()).min(extent));
        }

        let mut total = 0u64;
        for (_, cell) in level.iter() {
            let inside = cell
                .coords()
                .iter()
                .zip(lo.iter().zip(&hi))
                .all(|(&c, (&l, &u))| c >= l && c < u);
            if inside {
                total += cell.n();
            }
        }
        Some(total)
    }

    /// Approximate count of points inside an arbitrary box `[lower, upper)`:
    /// deepest-level cells fully inside count whole; partially-overlapped
    /// cells contribute their count prorated by overlap volume (a uniform-
    /// within-cell assumption). Error shrinks with the cell side `1/2^(H−1)`.
    ///
    /// # Panics
    /// Panics on mismatched bound lengths or inverted bounds.
    pub fn approx_count_in_box(&self, lower: &[f64], upper: &[f64]) -> f64 {
        assert_eq!(lower.len(), self.dims(), "bounds dimensionality mismatch");
        assert_eq!(upper.len(), self.dims(), "bounds dimensionality mismatch");
        let level = self.level(self.deepest_level());
        let side = level.side();
        let mut total = 0.0f64;
        'cell: for (_, cell) in level.iter() {
            let mut fraction = 1.0f64;
            for (j, (&lb, &ub)) in lower.iter().zip(upper).enumerate() {
                assert!(lb <= ub, "axis {j}: inverted bounds");
                let c_lo = cell.lower_bound(j, side);
                let c_hi = cell.upper_bound(j, side);
                let overlap = (ub.min(c_hi) - lb.max(c_lo)).max(0.0);
                if overlap <= 0.0 {
                    continue 'cell;
                }
                fraction *= overlap / side;
            }
            total += count_to_f64(cell.n()) * fraction;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrcc_common::Dataset;

    fn dataset() -> Dataset {
        // Deterministic scatter of 400 points.
        let mut state = 0x9A17u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut rows = Vec::new();
        for _ in 0..400 {
            rows.push([next() * 0.999, next() * 0.999]);
        }
        Dataset::from_rows(&rows).unwrap()
    }

    fn brute(ds: &Dataset, lower: &[f64], upper: &[f64]) -> u64 {
        ds.iter()
            .filter(|p| (0..2).all(|j| p[j] >= lower[j] && p[j] < upper[j]))
            .count() as u64
    }

    #[test]
    fn aligned_counts_are_exact() {
        let ds = dataset();
        let tree = CountingTree::build(&ds, 5).unwrap();
        for h in 1..=4 {
            let side = (0.5f64).powi(h as i32);
            // Several aligned boxes per level.
            for (a, b, c, d) in [(0, 1, 0, 1), (0, 2, 1, 2), (1, 2, 0, 2)] {
                let lower = [a as f64 * side, c as f64 * side];
                let upper = [b as f64 * side, d as f64 * side];
                let got = tree.count_in_aligned_box(h, &lower, &upper).unwrap();
                assert_eq!(
                    got,
                    brute(&ds, &lower, &upper),
                    "h={h} box {lower:?}..{upper:?}"
                );
            }
        }
    }

    #[test]
    fn whole_cube_counts_everything() {
        let ds = dataset();
        let tree = CountingTree::build(&ds, 4).unwrap();
        let got = tree
            .count_in_aligned_box(2, &[0.0, 0.0], &[1.0, 1.0])
            .unwrap();
        assert_eq!(got, ds.len() as u64);
    }

    #[test]
    fn off_grid_bounds_return_none() {
        let ds = dataset();
        let tree = CountingTree::build(&ds, 4).unwrap();
        assert!(tree
            .count_in_aligned_box(2, &[0.1, 0.0], &[0.5, 1.0])
            .is_none());
        assert!(tree
            .count_in_aligned_box(2, &[0.25, 0.0], &[0.6, 1.0])
            .is_none());
        assert!(tree
            .count_in_aligned_box(2, &[0.25, 0.0], &[0.5, 1.0])
            .is_some());
    }

    #[test]
    fn approx_count_tracks_brute_force() {
        let ds = dataset();
        let tree = CountingTree::build(&ds, 6).unwrap();
        for (lower, upper) in [
            ([0.1, 0.2], [0.6, 0.9]),
            ([0.33, 0.0], [0.34, 1.0]),
            ([0.0, 0.0], [1.0, 1.0]),
        ] {
            let exact = brute(&ds, &lower, &upper) as f64;
            let approx = tree.approx_count_in_box(&lower, &upper);
            // Proration error bounded by points in boundary cells.
            let tolerance = 0.15 * ds.len() as f64 * (upper[0] - lower[0]).max(0.05);
            assert!(
                (approx - exact).abs() <= tolerance.max(8.0),
                "box {lower:?}..{upper:?}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn empty_box_counts_zero() {
        let ds = dataset();
        let tree = CountingTree::build(&ds, 4).unwrap();
        let z = tree.approx_count_in_box(&[0.4, 0.4], &[0.4, 0.4]);
        assert_eq!(z, 0.0);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_width_panics() {
        let ds = dataset();
        let tree = CountingTree::build(&ds, 4).unwrap();
        let _ = tree.count_in_aligned_box(2, &[0.0], &[1.0]);
    }
}
