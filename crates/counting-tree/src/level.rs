//! One resolution level of the Counting-tree.
//!
//! Level `h` is a hyper-grid of side `ξ_h = 1/2^h`. Only non-empty cells are
//! stored: an arena (`Vec<Cell>`) plus a hash index from absolute grid
//! coordinates to arena slots. This is the "each node is an array of cells"
//! view of the paper with `O(1)` expected-time neighbor resolution instead of
//! a root-to-level tree walk.

use crate::cell::{Cell, CellId};
use crate::hasher::FxHashMap;
use mrcc_common::num::{bounded_to_u32, powi_exp, u32_to_usize};

/// Direction of a face neighbor along one axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Neighbor at `coords[j] − 1`.
    Lower,
    /// Neighbor at `coords[j] + 1`.
    Upper,
}

/// A fully materialized resolution level.
#[derive(Debug)]
pub struct Level {
    h: u32,
    cells: Vec<Cell>,
    index: FxHashMap<Box<[u64]>, CellId>,
}

impl Level {
    pub(crate) fn new(h: u32) -> Self {
        Level {
            h,
            cells: Vec::new(),
            index: FxHashMap::default(),
        }
    }

    /// The level number `h` (cells have side `1/2^h`).
    #[inline]
    pub fn h(&self) -> u32 {
        self.h
    }

    /// Cell side size `ξ_h = 1/2^h`.
    #[inline]
    pub fn side(&self) -> f64 {
        // Exact for h ≤ 1023; h is capped far below that.
        (0.5f64).powi(powi_exp(u32_to_usize(self.h)))
    }

    /// Number of grid positions per axis (`2^h`), saturating at `u64::MAX`.
    #[inline]
    pub fn grid_extent(&self) -> u64 {
        1u64.checked_shl(self.h).unwrap_or(u64::MAX)
    }

    /// Number of materialized (non-empty) cells.
    #[inline]
    pub fn n_cells(&self) -> usize {
        self.cells.len()
    }

    /// Borrow a cell by id.
    ///
    /// # Panics
    /// Panics on an out-of-range id.
    #[inline]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[u32_to_usize(id)] // xtask-allow: indexing — documented `# Panics` contract
    }

    /// Iterate over `(id, cell)` pairs in arena order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (CellId, &Cell)> + '_ {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (bounded_to_u32(i), c))
    }

    /// Look up the cell at the given absolute coordinates.
    #[inline]
    pub fn find(&self, coords: &[u64]) -> Option<CellId> {
        self.index.get(coords).copied()
    }

    /// The face neighbor of `id` along `axis` in `dir`, if that grid position
    /// is materialized (the paper's `N I`/`N E`; a missing external neighbor
    /// means either the space border or an unrefined empty region).
    pub fn neighbor(&self, id: CellId, axis: usize, dir: Direction) -> Option<CellId> {
        let cell = self.cell(id);
        let c = cell.coords()[axis];
        let nc = match dir {
            Direction::Lower => c.checked_sub(1)?,
            Direction::Upper => {
                let up = c + 1;
                if up >= self.grid_extent() {
                    return None;
                }
                up
            }
        };
        // Stack-friendly key reuse: clone coords, patch one axis.
        let mut key: Box<[u64]> = cell.coords().into();
        key[axis] = nc;
        self.find(&key)
    }

    /// Point count of the face neighbor, 0 when absent (how the convolution
    /// treats empty space).
    #[inline]
    pub fn neighbor_count(&self, id: CellId, axis: usize, dir: Direction) -> u64 {
        self.neighbor(id, axis, dir)
            .map_or(0, |nid| self.cell(nid).n())
    }

    /// Marks a cell's `usedCell` flag.
    pub fn set_used(&mut self, id: CellId, used: bool) {
        self.cells[u32_to_usize(id)].set_used(used);
    }

    /// Fetches the cell at `coords`, materializing it if absent, and returns
    /// its id.
    pub(crate) fn get_or_insert(&mut self, coords: &[u64]) -> CellId {
        if let Some(&id) = self.index.get(coords) {
            return id;
        }
        let id = bounded_to_u32(self.cells.len());
        let key: Box<[u64]> = coords.into();
        self.cells.push(Cell::new(key.clone()));
        self.index.insert(key, id);
        id
    }

    pub(crate) fn cell_mut(&mut self, id: CellId) -> &mut Cell {
        &mut self.cells[u32_to_usize(id)]
    }

    /// Sum of point counts over all cells (must equal `η`; used by tests and
    /// debug assertions).
    pub fn total_points(&self) -> u64 {
        self.cells.iter().map(Cell::n).sum()
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        let cells: usize = self.cells.iter().map(Cell::memory_bytes).sum();
        // Index entries: key box + id + bucket overhead (~1.1 load factor).
        let d = self.cells.first().map_or(0, |c| c.coords().len());
        let index = self.index.len() * (d * 8 + size_of::<(Box<[u64]>, CellId)>());
        cells + index + size_of::<Level>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level_with(coords: &[&[u64]]) -> Level {
        let mut l = Level::new(2);
        for c in coords {
            let id = l.get_or_insert(c);
            l.cell_mut(id).count_point(c.iter().map(|_| false));
        }
        l
    }

    #[test]
    fn insert_and_find() {
        let l = level_with(&[&[0, 1], &[3, 2]]);
        assert_eq!(l.n_cells(), 2);
        assert!(l.find(&[0, 1]).is_some());
        assert!(l.find(&[1, 1]).is_none());
    }

    #[test]
    fn get_or_insert_is_idempotent() {
        let mut l = Level::new(3);
        let a = l.get_or_insert(&[1, 2]);
        let b = l.get_or_insert(&[1, 2]);
        assert_eq!(a, b);
        assert_eq!(l.n_cells(), 1);
    }

    #[test]
    fn neighbors_respect_borders() {
        // Level 2 → coordinates in [0, 4).
        let l = level_with(&[&[0, 0], &[1, 0], &[3, 0]]);
        let id0 = l.find(&[0, 0]).unwrap();
        let id3 = l.find(&[3, 0]).unwrap();
        // Lower neighbor of coordinate 0 falls off the space border.
        assert_eq!(l.neighbor(id0, 0, Direction::Lower), None);
        // Upper neighbor of coordinate 3 falls off the border at extent 4.
        assert_eq!(l.neighbor(id3, 0, Direction::Upper), None);
        // Materialized neighbor found.
        assert_eq!(l.neighbor(id0, 0, Direction::Upper), l.find(&[1, 0]));
        // Unmaterialized (empty) neighbor is None, counted as 0.
        assert_eq!(l.neighbor(id0, 1, Direction::Upper), None);
        assert_eq!(l.neighbor_count(id0, 1, Direction::Upper), 0);
        assert_eq!(l.neighbor_count(id0, 0, Direction::Upper), 1);
    }

    #[test]
    fn neighbor_symmetry() {
        let l = level_with(&[&[1, 1], &[2, 1]]);
        let a = l.find(&[1, 1]).unwrap();
        let b = l.find(&[2, 1]).unwrap();
        assert_eq!(l.neighbor(a, 0, Direction::Upper), Some(b));
        assert_eq!(l.neighbor(b, 0, Direction::Lower), Some(a));
    }

    #[test]
    fn side_halves_per_level() {
        assert_eq!(Level::new(1).side(), 0.5);
        assert_eq!(Level::new(3).side(), 0.125);
        assert_eq!(Level::new(2).grid_extent(), 4);
    }

    #[test]
    fn total_points_sums_counts() {
        let l = level_with(&[&[0, 0], &[1, 0], &[3, 0]]);
        assert_eq!(l.total_points(), 3);
    }

    #[test]
    fn memory_estimate_grows_with_cells() {
        let small = level_with(&[&[0, 0]]);
        let big = level_with(&[&[0, 0], &[1, 0], &[2, 0], &[3, 0]]);
        assert!(big.memory_bytes() > small.memory_bytes());
    }
}
