//! A fast, non-cryptographic hasher for grid-coordinate keys.
//!
//! Counting-tree lookups hash short `u64` coordinate tuples millions of
//! times per clustering run; SipHash (std's default) is needlessly expensive
//! for that. This is the classic Fx multiply-rotate-xor word hasher used by
//! the Rust compiler, reimplemented here (a dozen lines) rather than pulling
//! in a crate. HashDoS resistance is irrelevant: keys come from our own grid
//! arithmetic, not from untrusted input.

use mrcc_common::num::usize_to_u64;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Fx hash (derived from the golden ratio, 64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiply-xor hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Coordinate keys always arrive through write_u64/write_usize; this
        // byte path only serves odd callers (e.g. Hash derives with padding).
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let word = c
                .try_into()
                .expect("chunks_exact(8) length invariant: every chunk is 8 bytes");
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(usize_to_u64(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` alias using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(words: &[u64]) -> u64 {
        let mut h = FxHasher::default();
        for &w in words {
            h.write_u64(w);
        }
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&[1, 2, 3]), hash_of(&[1, 2, 3]));
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(hash_of(&[1, 2]), hash_of(&[2, 1]));
    }

    #[test]
    fn distinguishes_neighbors() {
        // Neighboring grid coordinates must not collide systematically.
        let mut seen = std::collections::HashSet::new();
        for x in 0u64..32 {
            for y in 0u64..32 {
                seen.insert(hash_of(&[x, y]));
            }
        }
        assert_eq!(seen.len(), 32 * 32);
    }

    #[test]
    fn byte_path_consistent_with_word_path() {
        let mut a = FxHasher::default();
        a.write(&7u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn works_as_hashmap() {
        let mut m: FxHashMap<Box<[u64]>, u32> = FxHashMap::default();
        m.insert(vec![1, 2, 3].into_boxed_slice(), 7);
        assert_eq!(m.get(&vec![1, 2, 3].into_boxed_slice()[..]), Some(&7));
    }
}
