#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! The **Counting-tree** (MrCC, Section III-A).
//!
//! A multi-resolution description of a dataset embedded in the unit
//! hyper-cube `[0,1)^d`. Level `h` covers the space with a hyper-grid of
//! cells of side `ξ_h = 1/2^h`; each cell knows how many points it contains
//! (`n`), how many of them sit in its lower half along every axis (the
//! *half-space counts* `P[j]`), and whether the clustering pass has already
//! consumed it (`usedCell`). Only non-empty cells are materialized, so each
//! level stores at most `η` cells and the whole structure is `O(H·η·d)`
//! space; it is built in a single scan of the data, `O(η·H·d)` time
//! (Algorithm 1 of the paper).
//!
//! ## Representation
//!
//! The paper implements each tree node as a linked list of cells carrying a
//! *relative* position `loc` (one bit per axis) and a pointer to the refined
//! node, and resolves a cell's *external* face neighbors by walking the tree
//! from the root. It then notes that, "intending to make it easier to
//! understand", nodes can equivalently be treated as arrays of cells. We take
//! the flat view: one cell arena per level plus a hash index keyed by the
//! cell's **absolute grid coordinates** (one integer per axis, coordinate ∈
//! `[0, 2^h)`). All the tree navigation of the paper becomes integer
//! arithmetic —
//!
//! * relative position `loc` bit of axis `j` = low bit of `coords[j]`,
//! * immediate parent = `coords >> 1` looked up one level up,
//! * the *internal* face neighbor of the paper (same parent) and the
//!   *external* one (different parent) are both `coords[j] ± 1`.
//!
//! The per-cell payload (`n`, `P[d]`, `usedCell`) is exactly the paper's.
//!
//! ## Parallel construction
//!
//! The cell payloads are purely additive, so partial trees built over
//! disjoint point shards merge exactly ([`merge`]);
//! [`CountingTree::build_sharded`] exploits this to build on multiple
//! threads while staying bit-for-bit identical to the serial
//! [`CountingTree::build`], arena order included.

pub mod cell;
pub mod hasher;
pub mod level;
pub mod merge;
pub mod query;
pub mod tree;

pub use cell::{Cell, CellId};
pub use level::{Direction, Level};
pub use tree::{CountingTree, MAX_RESOLUTIONS, MIN_RESOLUTIONS};
