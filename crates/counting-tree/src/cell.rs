//! A single Counting-tree cell.
//!
//! The paper's cell structure is `<loc, n, P[d], usedCell, ptr>`. Here `loc`
//! and `ptr` are subsumed by the absolute grid coordinates (see the crate
//! docs); `n`, `P[d]` and `usedCell` are stored verbatim.

use mrcc_common::num::grid_to_f64;

/// Index of a cell within its level's arena.
pub type CellId = u32;

/// A `d`-dimensional hyper-cube cell of side `1/2^h` at tree level `h`.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Absolute grid coordinates, one per axis, each in `[0, 2^h)`.
    coords: Box<[u64]>,
    /// Number of points inside the cell (`a_h.n`).
    n: u64,
    /// Half-space counts: `p[j]` = points in the **lower** half of the cell
    /// along axis `e_j` (`a_h.P[j]`).
    p: Box<[u64]>,
    /// The paper's `usedCell` flag — set once the β-cluster search consumed
    /// this cell as a convolution winner.
    used: bool,
}

impl Cell {
    /// Creates an empty cell at the given coordinates.
    pub(crate) fn new(coords: Box<[u64]>) -> Self {
        let d = coords.len();
        Cell {
            coords,
            n: 0,
            p: vec![0; d].into_boxed_slice(),
            used: false,
        }
    }

    /// Counts one point; `lower_half[j]` says whether the point lies in the
    /// lower half of this cell along axis `e_j`.
    pub(crate) fn count_point(&mut self, lower_half: impl Iterator<Item = bool>) {
        self.n += 1;
        for (slot, lower) in self.p.iter_mut().zip(lower_half) {
            if lower {
                *slot += 1;
            }
        }
    }

    /// Adds another cell's counts into this one (sharded-build merge): `n`
    /// and every `P[j]` are additive because each point is counted exactly
    /// once across partial trees; `usedCell` is OR-ed (partial trees from
    /// `build_sharded` have never been searched, so it is always `false`
    /// there, but the merge stays correct for arbitrary trees).
    pub(crate) fn merge_from(&mut self, other: &Cell) {
        debug_assert_eq!(self.coords, other.coords);
        self.n += other.n;
        for (slot, &add) in self.p.iter_mut().zip(other.p.iter()) {
            *slot += add;
        }
        self.used |= other.used;
    }

    /// Absolute grid coordinates of the cell.
    #[inline]
    pub fn coords(&self) -> &[u64] {
        &self.coords
    }

    /// Point count `n`.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Half-space count `P[j]`: points in the lower half along axis `e_j`.
    ///
    /// # Panics
    /// Panics when `j` is out of range.
    #[inline]
    pub fn half_count(&self, j: usize) -> u64 {
        self.p[j]
    }

    /// All half-space counts.
    #[inline]
    pub fn half_counts(&self) -> &[u64] {
        &self.p
    }

    /// The paper's `usedCell` flag.
    #[inline]
    pub fn used(&self) -> bool {
        self.used
    }

    pub(crate) fn set_used(&mut self, used: bool) {
        self.used = used;
    }

    /// Relative position bit (`loc`) of axis `e_j`: `true` when the cell sits
    /// in the **upper** half of its parent along `e_j`.
    #[inline]
    pub fn loc_bit(&self, j: usize) -> bool {
        self.coords[j] & 1 == 1
    }

    /// Coordinates of the immediate parent cell (one level up).
    pub fn parent_coords(&self) -> Box<[u64]> {
        self.coords.iter().map(|&c| c >> 1).collect()
    }

    /// Lower bound of the cell on axis `e_j`, given the level's cell side.
    #[inline]
    pub fn lower_bound(&self, j: usize, side: f64) -> f64 {
        grid_to_f64(self.coords[j]) * side
    }

    /// Upper bound of the cell on axis `e_j`, given the level's cell side.
    #[inline]
    pub fn upper_bound(&self, j: usize, side: f64) -> f64 {
        grid_to_f64(self.coords[j] + 1) * side
    }

    /// Approximate heap footprint in bytes (for the memory experiments).
    pub fn memory_bytes(&self) -> usize {
        size_of::<Cell>() + (self.coords.len() + self.p.len()) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_updates_half_spaces() {
        let mut c = Cell::new(vec![2, 3].into_boxed_slice());
        c.count_point([true, false].into_iter());
        c.count_point([true, true].into_iter());
        c.count_point([false, true].into_iter());
        assert_eq!(c.n(), 3);
        assert_eq!(c.half_count(0), 2);
        assert_eq!(c.half_count(1), 2);
        assert_eq!(c.half_counts(), &[2, 2]);
    }

    #[test]
    fn loc_bits_and_parent() {
        let c = Cell::new(vec![5, 2, 7].into_boxed_slice());
        assert!(c.loc_bit(0)); // 5 is odd → upper half of parent
        assert!(!c.loc_bit(1)); // 2 is even → lower half
        assert!(c.loc_bit(2));
        assert_eq!(&*c.parent_coords(), &[2, 1, 3]);
    }

    #[test]
    fn bounds_scale_with_side() {
        let c = Cell::new(vec![3].into_boxed_slice());
        let side = 0.25; // level 2
        assert!((c.lower_bound(0, side) - 0.75).abs() < 1e-12);
        assert!((c.upper_bound(0, side) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn used_flag_round_trips() {
        let mut c = Cell::new(vec![0].into_boxed_slice());
        assert!(!c.used());
        c.set_used(true);
        assert!(c.used());
    }
}
