//! Counting-tree construction (Algorithm 1) and whole-tree queries.

use mrcc_common::num::{bounded_to_u32, powi_exp, trunc_to_u64};
use mrcc_common::{Dataset, Error, Result};

use crate::cell::CellId;
use crate::level::Level;

/// Minimum number of resolutions the paper allows (`H ≥ 3`).
pub const MIN_RESOLUTIONS: usize = 3;

/// Maximum number of resolutions.
///
/// Grid coordinates are `u64` and points are `f64` (52 mantissa bits), so
/// resolutions beyond this add levels whose cells are indistinguishable at
/// input precision; 64 keeps every shift well-defined and comfortably covers
/// the paper's sensitivity sweep (`H` up to 80 adds nothing past the data's
/// own resolution — see EXPERIMENTS.md).
pub const MAX_RESOLUTIONS: usize = 64;

/// The Counting-tree: levels `h = 1 … H−1` of a multi-resolution hyper-grid.
///
/// The root (level 0, the whole unit cube, `n = η`) is implicit. Build with
/// [`CountingTree::build`]; a single scan counts every point in every level
/// and accumulates the per-axis half-space counts, exactly Algorithm 1.
///
/// ```
/// use mrcc_common::Dataset;
/// use mrcc_counting_tree::CountingTree;
///
/// let ds = Dataset::from_rows(&[[0.1, 0.1], [0.12, 0.14], [0.9, 0.8]]).unwrap();
/// let tree = CountingTree::build(&ds, 4).unwrap();
/// // Every level conserves the point count.
/// for level in tree.levels() {
///     assert_eq!(level.total_points(), 3);
/// }
/// // The two nearby points share the level-2 cell (0, 0).
/// let l2 = tree.level(2);
/// let id = l2.find(&[0, 0]).unwrap();
/// assert_eq!(l2.cell(id).n(), 2);
/// ```
#[derive(Debug)]
pub struct CountingTree {
    pub(crate) dims: usize,
    pub(crate) n_points: usize,
    pub(crate) resolutions: usize,
    pub(crate) levels: Vec<Level>,
}

impl CountingTree {
    /// Builds the tree over a unit-normalized dataset with `H = resolutions`
    /// distinct resolutions.
    ///
    /// # Errors
    /// * [`Error::InvalidParameter`] if `resolutions` is outside
    ///   `[MIN_RESOLUTIONS, MAX_RESOLUTIONS]` or any coordinate is outside
    ///   `[0, 1)` (the dataset must be normalized first — Definition 1).
    /// * [`Error::EmptyDataset`] for a dataset with no points.
    pub fn build(ds: &Dataset, resolutions: usize) -> Result<CountingTree> {
        if !(MIN_RESOLUTIONS..=MAX_RESOLUTIONS).contains(&resolutions) {
            return Err(Error::InvalidParameter {
                name: "resolutions",
                message: format!(
                    "H must be in [{MIN_RESOLUTIONS}, {MAX_RESOLUTIONS}], got {resolutions}"
                ),
            });
        }
        if ds.is_empty() {
            return Err(Error::EmptyDataset);
        }
        let mut tree = CountingTree::empty(ds.dims(), resolutions)?;
        for p in ds.iter() {
            tree.insert(p)?;
        }
        Ok(tree)
    }

    /// Creates an empty tree for incremental / streaming insertion.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] for an out-of-range `resolutions`,
    /// [`Error::UnsupportedDimensionality`] via the same validation
    /// [`CountingTree::build`] applies.
    pub fn empty(dims: usize, resolutions: usize) -> Result<CountingTree> {
        if !(MIN_RESOLUTIONS..=MAX_RESOLUTIONS).contains(&resolutions) {
            return Err(Error::InvalidParameter {
                name: "resolutions",
                message: format!(
                    "H must be in [{MIN_RESOLUTIONS}, {MAX_RESOLUTIONS}], got {resolutions}"
                ),
            });
        }
        if dims == 0 {
            return Err(Error::InvalidParameter {
                name: "dims",
                message: "need at least one axis".into(),
            });
        }
        let h_max = resolutions - 1;
        Ok(CountingTree {
            dims,
            n_points: 0,
            resolutions,
            levels: (1..=h_max).map(|h| Level::new(bounded_to_u32(h))).collect(),
        })
    }

    /// Counts one point into every level — the body of Algorithm 1, exposed
    /// for streaming use. `O(H·d)` per point.
    ///
    /// # Errors
    /// [`Error::DimensionMismatch`] on a wrong-width point;
    /// [`Error::InvalidParameter`] when a coordinate is outside `[0, 1)`.
    pub fn insert(&mut self, point: &[f64]) -> Result<()> {
        let d = self.dims;
        if point.len() != d {
            return Err(Error::DimensionMismatch {
                expected: d,
                got: point.len(),
            });
        }
        let h_max = self.resolutions - 1;
        // Finest "virtual" grid: level h_max + 1, used only to derive the
        // coordinates of every real level (right-shift) and the half-space
        // bit of the deepest level.
        let fine_scale = (2.0f64).powi(powi_exp(h_max + 1));
        let mut fine = vec![0u64; d];
        for ((j, &v), slot) in point.iter().enumerate().zip(fine.iter_mut()) {
            if !(0.0..1.0).contains(&v) {
                return Err(Error::InvalidParameter {
                    name: "point",
                    message: format!(
                        "value {v} at axis {j} outside [0,1); normalize the data first"
                    ),
                });
            }
            *slot = trunc_to_u64(v * fine_scale);
        }
        let mut coords = vec![0u64; d];
        for (li, level) in self.levels.iter_mut().enumerate() {
            let h = li + 1;
            let shift = bounded_to_u32(h_max + 1 - h);
            for (c, f) in coords.iter_mut().zip(&fine) {
                *c = f >> shift;
            }
            let id = level.get_or_insert(&coords);
            // The point is in the lower half of this cell along e_j iff its
            // coordinate one level finer is even.
            level
                .cell_mut(id)
                .count_point(fine.iter().map(|f| (f >> (shift - 1)) & 1 == 0));
        }
        self.n_points += 1;
        Ok(())
    }

    /// Dimensionality `d` of the indexed dataset.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of indexed points `η`.
    #[inline]
    pub fn n_points(&self) -> usize {
        self.n_points
    }

    /// Number of distinct resolutions `H` (root included).
    #[inline]
    pub fn resolutions(&self) -> usize {
        self.resolutions
    }

    /// The deepest materialized level number, `H − 1`.
    #[inline]
    pub fn deepest_level(&self) -> usize {
        self.resolutions - 1
    }

    /// Borrow level `h` (valid for `1 ≤ h ≤ H−1`).
    ///
    /// # Panics
    /// Panics for out-of-range `h`.
    #[inline]
    pub fn level(&self, h: usize) -> &Level {
        &self.levels[h - 1] // xtask-allow: indexing — documented `# Panics` contract
    }

    /// Mutable access to level `h` (the clustering pass flips `usedCell`).
    ///
    /// # Panics
    /// Panics for out-of-range `h`.
    #[inline]
    pub fn level_mut(&mut self, h: usize) -> &mut Level {
        &mut self.levels[h - 1] // xtask-allow: indexing — documented `# Panics` contract
    }

    /// Iterate over all materialized levels, shallow to deep.
    pub fn levels(&self) -> impl Iterator<Item = &Level> {
        self.levels.iter()
    }

    /// Clears every `usedCell` flag (re-run the search on the same tree).
    pub fn reset_used(&mut self) {
        for level in &mut self.levels {
            let ids: Vec<CellId> = level.iter().map(|(id, _)| id).collect();
            for id in ids {
                level.set_used(id, false);
            }
        }
    }

    /// Approximate heap footprint in bytes, for the memory experiments.
    pub fn memory_bytes(&self) -> usize {
        self.levels.iter().map(Level::memory_bytes).sum::<usize>() + size_of::<CountingTree>()
    }

    /// Re-verifies the structural invariants Algorithm 1 is supposed to
    /// maintain:
    ///
    /// * **count conservation** — every materialized level's cell counts sum
    ///   to `η`, the number of inserted points;
    /// * **half-space bounds** — per cell, each axis half-count `P[j]` never
    ///   exceeds the cell count `n`, and coordinates stay inside the level's
    ///   `2^h` grid;
    /// * **parent/child containment** — every cell at level `h + 1` has a
    ///   materialized parent at level `h` (coordinates right-shifted by one)
    ///   holding at least as many points.
    ///
    /// Compiled only with the `strict-invariants` feature; call from tests
    /// after building or mutating a tree. `O(H · cells · d)`.
    ///
    /// # Panics
    /// Panics on the first violated invariant.
    #[cfg(feature = "strict-invariants")]
    pub fn check_invariants(&self) {
        let n = mrcc_common::num::usize_to_u64(self.n_points);
        for level in &self.levels {
            assert_eq!(
                level.total_points(),
                n,
                "invariant violated: level {} does not conserve the point count",
                level.h()
            );
            let extent = level.grid_extent();
            for (_, cell) in level.iter() {
                assert_eq!(
                    cell.coords().len(),
                    self.dims,
                    "invariant violated: level {} cell with wrong coordinate width",
                    level.h()
                );
                assert!(
                    cell.coords().iter().all(|&c| c < extent),
                    "invariant violated: level {} cell {:?} outside the 2^h grid",
                    level.h(),
                    cell.coords()
                );
                for j in 0..self.dims {
                    assert!(
                        cell.half_count(j) <= cell.n(),
                        "invariant violated: level {} cell {:?}: P[{j}] > n",
                        level.h(),
                        cell.coords()
                    );
                }
            }
        }
        let mut parent_coords = vec![0u64; self.dims];
        for pair in self.levels.windows(2) {
            let (parent, child) = (&pair[0], &pair[1]);
            for (_, cc) in child.iter() {
                for (slot, &c) in parent_coords.iter_mut().zip(cc.coords()) {
                    *slot = c >> 1;
                }
                let pid = parent.find(&parent_coords).expect(
                    "tree containment invariant: every child cell has a materialized parent",
                );
                assert!(
                    parent.cell(pid).n() >= cc.n(),
                    "invariant violated: level {} cell {:?} outweighs its parent",
                    child.h(),
                    cc.coords()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrcc_common::Dataset;

    fn tiny() -> Dataset {
        // 6 points in 2-d, deliberately clustered bottom-left.
        Dataset::from_rows(&[
            [0.10, 0.10],
            [0.12, 0.15],
            [0.20, 0.05],
            [0.05, 0.22],
            [0.80, 0.85],
            [0.55, 0.40],
        ])
        .unwrap()
    }

    #[test]
    fn build_validates_parameters() {
        let ds = tiny();
        assert!(CountingTree::build(&ds, 2).is_err());
        assert!(CountingTree::build(&ds, MAX_RESOLUTIONS + 1).is_err());
        assert!(CountingTree::build(&ds, 4).is_ok());
        let empty = Dataset::new(2).unwrap();
        assert!(matches!(
            CountingTree::build(&empty, 4),
            Err(Error::EmptyDataset)
        ));
    }

    #[test]
    fn rejects_unnormalized_data() {
        let ds = Dataset::from_rows(&[[0.5, 1.5]]).unwrap();
        let err = CountingTree::build(&ds, 4).unwrap_err();
        assert!(err.to_string().contains("normalize"));
    }

    #[test]
    fn every_level_counts_every_point() {
        let ds = tiny();
        let tree = CountingTree::build(&ds, 5).unwrap();
        assert_eq!(tree.deepest_level(), 4);
        for level in tree.levels() {
            assert_eq!(level.total_points(), ds.len() as u64, "level {}", level.h());
            assert!(level.n_cells() <= ds.len());
        }
    }

    #[test]
    fn level_one_counts_match_quadrants() {
        let ds = tiny();
        let tree = CountingTree::build(&ds, 4).unwrap();
        let l1 = tree.level(1);
        // Quadrant (0,0): 4 points; (1,1): 2 points ([0.8,0.85], [0.55,0.4]
        // → 0.55 maps to coord 1, 0.40 maps to coord 0 → quadrant (1,0)).
        let q00 = l1.find(&[0, 0]).map(|id| l1.cell(id).n());
        let q11 = l1.find(&[1, 1]).map(|id| l1.cell(id).n());
        let q10 = l1.find(&[1, 0]).map(|id| l1.cell(id).n());
        assert_eq!(q00, Some(4));
        assert_eq!(q11, Some(1));
        assert_eq!(q10, Some(1));
        assert_eq!(l1.find(&[0, 1]), None);
    }

    #[test]
    fn half_space_counts_match_child_level() {
        // P[j] of a level-h cell must equal the points of its children with
        // an even coordinate along axis j at level h+1.
        let ds = tiny();
        let tree = CountingTree::build(&ds, 5).unwrap();
        for h in 1..tree.deepest_level() {
            let level = tree.level(h);
            let child = tree.level(h + 1);
            for (_, cell) in level.iter() {
                for j in 0..tree.dims() {
                    let expect: u64 = child
                        .iter()
                        .filter(|(_, cc)| {
                            (0..tree.dims()).all(|k| cc.coords()[k] >> 1 == cell.coords()[k])
                                && cc.coords()[j] & 1 == 0
                        })
                        .map(|(_, cc)| cc.n())
                        .sum();
                    assert_eq!(
                        cell.half_count(j),
                        expect,
                        "h={h} cell={:?} axis={j}",
                        cell.coords()
                    );
                }
            }
        }
    }

    #[test]
    fn parent_child_counts_are_consistent() {
        let ds = tiny();
        let tree = CountingTree::build(&ds, 5).unwrap();
        for h in 1..tree.deepest_level() {
            let level = tree.level(h);
            let child = tree.level(h + 1);
            for (_, cell) in level.iter() {
                let sum: u64 = child
                    .iter()
                    .filter(|(_, cc)| {
                        (0..tree.dims()).all(|k| cc.coords()[k] >> 1 == cell.coords()[k])
                    })
                    .map(|(_, cc)| cc.n())
                    .sum();
                assert_eq!(cell.n(), sum);
            }
        }
    }

    #[test]
    fn reset_used_clears_flags() {
        let ds = tiny();
        let mut tree = CountingTree::build(&ds, 4).unwrap();
        tree.level_mut(2).set_used(0, true);
        assert!(tree.level(2).cell(0).used());
        tree.reset_used();
        assert!(tree.levels().all(|l| l.iter().all(|(_, c)| !c.used())));
    }

    #[test]
    fn boundary_point_near_one_lands_in_last_cell() {
        let ds = Dataset::from_rows(&[[0.999_999_999, 0.0]]).unwrap();
        let tree = CountingTree::build(&ds, 4).unwrap();
        let l3 = tree.level(3);
        assert_eq!(l3.n_cells(), 1);
        let (_, cell) = l3.iter().next().unwrap();
        assert_eq!(cell.coords()[0], 7); // 2^3 − 1
        assert_eq!(cell.coords()[1], 0);
    }

    #[test]
    fn memory_grows_with_resolutions() {
        let ds = tiny();
        let t4 = CountingTree::build(&ds, 4).unwrap();
        let t8 = CountingTree::build(&ds, 8).unwrap();
        assert!(t8.memory_bytes() > t4.memory_bytes());
    }
}

#[cfg(test)]
mod incremental_tests {
    use super::*;
    use mrcc_common::Dataset;

    #[test]
    fn incremental_equals_batch() {
        let ds = Dataset::from_rows(&[
            [0.11, 0.82],
            [0.13, 0.79],
            [0.56, 0.31],
            [0.94, 0.07],
            [0.50, 0.50],
        ])
        .unwrap();
        let batch = CountingTree::build(&ds, 5).unwrap();
        let mut inc = CountingTree::empty(2, 5).unwrap();
        for p in ds.iter() {
            inc.insert(p).unwrap();
        }
        assert_eq!(inc.n_points(), batch.n_points());
        for h in 1..=batch.deepest_level() {
            let (bl, il) = (batch.level(h), inc.level(h));
            assert_eq!(bl.n_cells(), il.n_cells(), "level {h}");
            for (_, cell) in bl.iter() {
                let id = il.find(cell.coords()).expect("cell present");
                let other = il.cell(id);
                assert_eq!(cell.n(), other.n());
                assert_eq!(cell.half_counts(), other.half_counts());
            }
        }
    }

    #[test]
    fn insert_validates_input() {
        let mut tree = CountingTree::empty(3, 4).unwrap();
        assert!(tree.insert(&[0.1, 0.2]).is_err()); // wrong width
        assert!(tree.insert(&[0.1, 0.2, 1.0]).is_err()); // out of range
        assert!(tree.insert(&[0.1, 0.2, 0.3]).is_ok());
        assert_eq!(tree.n_points(), 1);
    }

    #[test]
    fn empty_tree_has_no_cells() {
        let tree = CountingTree::empty(4, 4).unwrap();
        assert_eq!(tree.n_points(), 0);
        assert!(tree.levels().all(|l| l.n_cells() == 0));
        assert!(CountingTree::empty(4, 2).is_err());
        assert!(CountingTree::empty(0, 4).is_err());
    }
}
