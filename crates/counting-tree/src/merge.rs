//! Sharded Counting-tree construction and exact partial-tree merging.
//!
//! The Counting-tree is a **purely additive** count structure: every cell
//! payload (`n`, the half-space vector `P[d]`) is a sum over the points that
//! fall into the cell, and no build-time decision depends on the counts seen
//! so far. Partial trees built over disjoint point shards therefore merge
//! *exactly* — cell by cell, adding `n` and `P[j]` — into the very tree a
//! serial [`CountingTree::build`] over the whole dataset produces.
//!
//! ## Determinism argument
//!
//! Bit-for-bit equality with the serial build — including the **arena order**
//! of every level, which downstream tie-breaking in the β-cluster search can
//! observe — holds because of three facts:
//!
//! 1. shards are **contiguous, index-ordered** point ranges
//!    ([`mrcc_common::parallel::shard_ranges`]);
//! 2. each partial level stores its cells in first-touch order of its own
//!    shard, and [`Level::absorb`] walks the donor's arena **in order**,
//!    appending cells not yet present;
//! 3. partial trees are merged in **ascending shard order**.
//!
//! A cell's position in the serial arena is the rank of the first point that
//! touches it. Since every point of shard `i` precedes every point of shard
//! `i+1`, merging shard arenas in shard order reproduces exactly that rank
//! order. Counts are sums of `u64`s — associative and order-insensitive — so
//! the payloads match bit-for-bit too. The `parallel_equivalence`
//! integration tests and the unit tests below assert both properties.

use mrcc_common::parallel::{effective_workers, shard_ranges};
use mrcc_common::{Dataset, Error, Result};

use crate::level::Level;
use crate::tree::CountingTree;

impl Level {
    /// Adds every cell of `other` (same level number) into this level:
    /// existing cells accumulate `n`/`P[j]` (and OR their `usedCell` flag),
    /// missing cells are appended in the donor's arena order.
    ///
    /// Merging the shard levels of [`CountingTree::build_sharded`] in shard
    /// order reproduces the serial arena order exactly (see the module
    /// docs); absorbing in any other order yields the same cell *contents*
    /// but may permute the arena.
    pub fn absorb(&mut self, other: &Level) {
        debug_assert_eq!(self.h(), other.h(), "absorb requires matching levels");
        for (_, cell) in other.iter() {
            let id = self.get_or_insert(cell.coords());
            self.cell_mut(id).merge_from(cell);
        }
    }
}

impl CountingTree {
    /// Merges another partial tree (same dimensionality and resolution
    /// count) into this one, level by level via [`Level::absorb`].
    ///
    /// # Errors
    /// [`Error::DimensionMismatch`] when the trees index different spaces;
    /// [`Error::InvalidParameter`] when their resolution counts differ.
    pub fn merge_from(&mut self, other: &CountingTree) -> Result<()> {
        if self.dims != other.dims {
            return Err(Error::DimensionMismatch {
                expected: self.dims,
                got: other.dims,
            });
        }
        if self.resolutions != other.resolutions {
            return Err(Error::InvalidParameter {
                name: "resolutions",
                message: format!(
                    "cannot merge trees with H = {} and H = {}",
                    self.resolutions, other.resolutions
                ),
            });
        }
        for (mine, donor) in self.levels.iter_mut().zip(&other.levels) {
            mine.absorb(donor);
        }
        self.n_points += other.n_points;
        Ok(())
    }

    /// Builds the tree over contiguous point shards on `n_threads` scoped
    /// worker threads, then merges the partial trees in shard order.
    ///
    /// The result is **bit-for-bit identical** to [`CountingTree::build`] on
    /// the same dataset — same cells, same counts, same half-space vectors,
    /// same arena order (see the module docs for why) — so callers may
    /// switch thread counts freely without perturbing any downstream result.
    /// `n_threads <= 1` runs the serial build directly. Shards shorter than
    /// the thread count leave the surplus workers with empty shards, which
    /// merge as no-ops.
    ///
    /// # Errors
    /// Exactly the errors of [`CountingTree::build`]: invalid `resolutions`,
    /// an empty dataset, or a coordinate outside `[0, 1)` (the reported
    /// error is the one the serial build would raise first).
    pub fn build_sharded(
        ds: &Dataset,
        resolutions: usize,
        n_threads: usize,
    ) -> Result<CountingTree> {
        if n_threads <= 1 {
            return CountingTree::build(ds, resolutions);
        }
        // Validate resolutions/dims up front so every worker would succeed
        // in constructing its empty partial tree.
        let probe = CountingTree::empty(ds.dims(), resolutions)?;
        if ds.is_empty() {
            return Err(Error::EmptyDataset);
        }
        let workers = effective_workers(n_threads, ds.len());
        let ranges = shard_ranges(ds.len(), workers);

        let mut partials: Vec<Result<CountingTree>> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .cloned()
                .map(|range| {
                    scope.spawn(move || -> Result<CountingTree> {
                        let mut partial = CountingTree::empty(ds.dims(), resolutions)?;
                        for i in range {
                            partial.insert(ds.point(i))?;
                        }
                        Ok(partial)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(result) => result,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        });

        // Reduce in shard order. The first error in shard order is the error
        // the serial build would hit first: workers scan their shard in
        // index order, so the lowest failing shard fails on the globally
        // first offending point.
        let mut merged = probe;
        for partial in partials.drain(..) {
            merged.merge_from(&partial?)?;
        }
        Ok(merged)
    }

    /// Order-**insensitive** structural equality: same shape (`d`, `η`, `H`)
    /// and, per level, the same set of materialized cells with the same
    /// count, half-space vector and `usedCell` flag — irrespective of arena
    /// order. This is the invariant merging shards in *any* order preserves.
    #[must_use]
    pub fn same_contents(&self, other: &CountingTree) -> bool {
        if self.dims != other.dims
            || self.n_points != other.n_points
            || self.resolutions != other.resolutions
        {
            return false;
        }
        self.levels.iter().zip(&other.levels).all(|(a, b)| {
            a.n_cells() == b.n_cells()
                && a.iter().all(|(_, cell)| {
                    b.find(cell.coords()).is_some_and(|id| {
                        let bc = b.cell(id);
                        bc.n() == cell.n()
                            && bc.half_counts() == cell.half_counts()
                            && bc.used() == cell.used()
                    })
                })
        })
    }

    /// Order-**sensitive** equality: [`CountingTree::same_contents`] plus
    /// identical arena order on every level (cell `i` of every level has the
    /// same coordinates in both trees). Two trees that are `identical` are
    /// indistinguishable to any downstream consumer, including consumers
    /// that break ties by [`crate::CellId`]; this is the property
    /// [`CountingTree::build_sharded`] guarantees against the serial build.
    #[must_use]
    pub fn identical(&self, other: &CountingTree) -> bool {
        self.same_contents(other)
            && self.levels.iter().zip(&other.levels).all(|(a, b)| {
                a.iter()
                    .zip(b.iter())
                    .all(|((_, ca), (_, cb))| ca.coords() == cb.coords())
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::Direction;
    use mrcc_common::parallel::shard_ranges;

    /// Deterministic pseudo-random dataset with duplicate cell touches
    /// across shard boundaries.
    fn dataset(n: usize, dims: usize, seed: u64) -> Dataset {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dims).map(|_| next() * 0.999).collect())
            .collect();
        Dataset::from_rows(&rows).unwrap()
    }

    fn partial_trees(ds: &Dataset, shards: usize, resolutions: usize) -> Vec<CountingTree> {
        shard_ranges(ds.len(), shards)
            .into_iter()
            .map(|range| {
                let mut t = CountingTree::empty(ds.dims(), resolutions).unwrap();
                for i in range {
                    t.insert(ds.point(i)).unwrap();
                }
                t
            })
            .collect()
    }

    #[test]
    fn sharded_build_is_identical_to_serial() {
        for &(n, threads) in &[(257usize, 2usize), (300, 3), (1000, 8), (50, 7)] {
            let ds = dataset(n, 3, 0xC0FFEE ^ n as u64);
            let serial = CountingTree::build(&ds, 5).unwrap();
            let sharded = CountingTree::build_sharded(&ds, 5, threads).unwrap();
            assert!(
                sharded.identical(&serial),
                "n={n} threads={threads}: sharded build diverged from serial"
            );
        }
    }

    #[test]
    fn degenerate_shards_merge_exactly() {
        // Fewer points than threads: surplus shards are empty.
        let ds = dataset(3, 2, 42);
        let serial = CountingTree::build(&ds, 4).unwrap();
        let sharded = CountingTree::build_sharded(&ds, 4, 8).unwrap();
        assert!(sharded.identical(&serial));
        assert_eq!(sharded.n_points(), 3);
        // Single point, many threads.
        let one = dataset(1, 2, 43);
        assert!(CountingTree::build_sharded(&one, 4, 16)
            .unwrap()
            .identical(&CountingTree::build(&one, 4).unwrap()));
    }

    #[test]
    fn merge_in_any_shard_order_gives_same_contents() {
        let ds = dataset(400, 3, 7);
        let serial = CountingTree::build(&ds, 5).unwrap();
        let shards = 5;
        // Try several shard permutations, including reversed.
        let orders: Vec<Vec<usize>> = vec![
            (0..shards).collect(),
            (0..shards).rev().collect(),
            vec![2, 0, 4, 1, 3],
            vec![4, 2, 0, 3, 1],
        ];
        for order in orders {
            let partials = partial_trees(&ds, shards, 5);
            let mut merged = CountingTree::empty(ds.dims(), 5).unwrap();
            for &s in &order {
                merged.merge_from(&partials[s]).unwrap();
            }
            assert!(
                merged.same_contents(&serial),
                "shard order {order:?} changed cell contents"
            );
            // In-order merging additionally reproduces the arena order.
            if order.windows(2).all(|w| w[0] < w[1]) {
                assert!(merged.identical(&serial));
            }
        }
    }

    #[test]
    fn out_of_order_merge_may_permute_arena_but_counts_survive() {
        let ds = dataset(200, 2, 99);
        let partials = partial_trees(&ds, 4, 4);
        let mut forward = CountingTree::empty(2, 4).unwrap();
        let mut backward = CountingTree::empty(2, 4).unwrap();
        for p in &partials {
            forward.merge_from(p).unwrap();
        }
        for p in partials.iter().rev() {
            backward.merge_from(p).unwrap();
        }
        assert!(forward.same_contents(&backward));
        for h in 1..=forward.deepest_level() {
            assert_eq!(
                forward.level(h).total_points(),
                backward.level(h).total_points()
            );
        }
    }

    #[test]
    fn used_flag_survives_merge() {
        let ds = dataset(100, 2, 5);
        let mut a = CountingTree::build(&ds, 4).unwrap();
        // Mark one cell used on the receiving tree and one on the donor.
        a.level_mut(2).set_used(0, true);
        let mut donor = CountingTree::build(&ds, 4).unwrap();
        let last = donor.level(2).n_cells() - 1;
        donor
            .level_mut(2)
            .set_used(mrcc_common::num::bounded_to_u32(last), true);
        a.merge_from(&donor).unwrap();
        // Both flags present after the merge (OR semantics)...
        assert!(a.level(2).cell(0).used());
        assert!(a
            .level(2)
            .cell(mrcc_common::num::bounded_to_u32(last))
            .used());
        // ...and counts doubled.
        assert_eq!(a.n_points(), 200);
        assert_eq!(a.level(2).total_points(), 200);
    }

    #[test]
    fn external_face_neighbors_resolve_after_merge() {
        // Two shards whose points land in *adjacent* cells: the neighbor
        // lookup must work across the shard boundary after merging even
        // though neither partial tree contains both cells.
        let rows = [[0.20f64, 0.30], [0.30, 0.30]]; // level-2 cells (0,1), (1,1)
        let ds = Dataset::from_rows(&rows).unwrap();
        let partials = partial_trees(&ds, 2, 4);
        // Each partial holds exactly one level-2 cell, with no neighbor.
        for p in &partials {
            assert_eq!(p.level(2).n_cells(), 1);
            let (id, _) = p.level(2).iter().next().unwrap();
            assert_eq!(p.level(2).neighbor(id, 0, Direction::Upper), None);
            assert_eq!(p.level(2).neighbor(id, 0, Direction::Lower), None);
        }
        let mut merged = CountingTree::empty(2, 4).unwrap();
        for p in &partials {
            merged.merge_from(p).unwrap();
        }
        let l2 = merged.level(2);
        let a = l2.find(&[0, 1]).expect("cell (0,1) present post-merge");
        let b = l2.find(&[1, 1]).expect("cell (1,1) present post-merge");
        assert_eq!(l2.neighbor(a, 0, Direction::Upper), Some(b));
        assert_eq!(l2.neighbor(b, 0, Direction::Lower), Some(a));
        assert_eq!(l2.neighbor_count(a, 0, Direction::Upper), 1);
    }

    #[test]
    fn merge_rejects_mismatched_trees() {
        let ds = dataset(10, 2, 1);
        let other_dims = dataset(10, 3, 1);
        let mut base = CountingTree::build(&ds, 4).unwrap();
        let wrong_d = CountingTree::build(&other_dims, 4).unwrap();
        assert!(matches!(
            base.merge_from(&wrong_d),
            Err(Error::DimensionMismatch { .. })
        ));
        let wrong_h = CountingTree::build(&ds, 5).unwrap();
        assert!(base.merge_from(&wrong_h).is_err());
    }

    #[test]
    fn build_sharded_propagates_serial_errors() {
        let empty = Dataset::new(2).unwrap();
        assert!(matches!(
            CountingTree::build_sharded(&empty, 4, 4),
            Err(Error::EmptyDataset)
        ));
        let ds = dataset(10, 2, 3);
        assert!(CountingTree::build_sharded(&ds, 2, 4).is_err()); // H too small
        assert!(CountingTree::build_sharded(&ds, 4, 0).is_ok()); // 0 → serial
    }

    #[test]
    fn content_comparisons_detect_differences() {
        let ds = dataset(50, 2, 11);
        let a = CountingTree::build(&ds, 4).unwrap();
        let b = CountingTree::build(&ds, 4).unwrap();
        assert!(a.identical(&b));
        let other = dataset(50, 2, 12);
        let c = CountingTree::build(&other, 4).unwrap();
        assert!(!a.same_contents(&c));
        let mut d = CountingTree::build(&ds, 4).unwrap();
        d.level_mut(1).set_used(0, true);
        assert!(!a.same_contents(&d), "used flag must participate");
    }
}
