//! Property-based invariants of the synthetic data generators.

use mrcc_datagen::{generate, rotate_dataset_by, PlaneRotation, SyntheticSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spec_strategy() -> impl Strategy<Value = SyntheticSpec> {
    (2usize..=12, 0usize..=4, 0.0f64..0.4, 0u64..1000, 0usize..=4).prop_map(
        |(dims, clusters, noise, seed, rotations)| {
            let mut s =
                SyntheticSpec::new("prop", dims, 500 + clusters * 200, clusters, noise, seed);
            s.rotations = rotations;
            s
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated datasets match their spec and stay inside the unit cube;
    /// the ground truth is a valid partition with the right noise count.
    #[test]
    fn generation_matches_spec(spec in spec_strategy()) {
        let synth = generate(&spec);
        prop_assert_eq!(synth.dataset.len(), spec.n_points);
        prop_assert_eq!(synth.dataset.dims(), spec.dims);
        prop_assert!(synth.dataset.is_unit_normalized());
        prop_assert_eq!(synth.ground_truth.len(), spec.n_clusters.min(spec.n_points));
        if spec.rotations == 0 && spec.n_clusters > 0 {
            // Without rotations the noise budget is exact.
            prop_assert_eq!(synth.ground_truth.noise().len(), spec.n_noise());
        }
        // Every cluster keeps 1..=6 irrelevant axes.
        for c in synth.ground_truth.clusters() {
            let irr = spec.dims - c.axes.count();
            prop_assert!((1..=6).contains(&irr), "irrelevant = {irr}");
        }
    }

    /// Generation is a pure function of the spec.
    #[test]
    fn generation_is_deterministic(spec in spec_strategy()) {
        let a = generate(&spec);
        let b = generate(&spec);
        prop_assert_eq!(a.dataset, b.dataset);
        prop_assert_eq!(a.ground_truth.labels(), b.ground_truth.labels());
    }

    /// Plane rotations preserve pairwise distances (before renormalization).
    #[test]
    fn rotations_are_isometries(
        seed in 0u64..500,
        theta in -1.5f64..1.5,
        ax in 0usize..4,
    ) {
        prop_assume!(theta.abs() > 1e-6);
        let mut rng = StdRng::seed_from_u64(seed);
        let _ = &mut rng;
        let r = PlaneRotation { i: ax, j: (ax + 1) % 4, theta };
        let a0 = [0.1, 0.7, 0.3, 0.9];
        let b0 = [0.8, 0.2, 0.6, 0.4];
        let dist = |x: &[f64], y: &[f64]| -> f64 {
            x.iter().zip(y).map(|(u, v)| (u - v) * (u - v)).sum::<f64>().sqrt()
        };
        let before = dist(&a0, &b0);
        let mut a = a0.to_vec();
        let mut b = b0.to_vec();
        r.apply(&mut a, 0.5);
        r.apply(&mut b, 0.5);
        prop_assert!((dist(&a, &b) - before).abs() < 1e-12);
    }

    /// Rotating a whole dataset preserves the point count, dimension and
    /// membership structure, and keeps data normalized.
    #[test]
    fn dataset_rotation_preserves_shape(seed in 0u64..200, k in 1usize..=4) {
        let spec = SyntheticSpec::new("rot", 5, 400, 1, 0.1, seed);
        let synth = generate(&spec);
        let mut ds = synth.dataset.clone();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFFFF);
        let rots = rotate_dataset_by(&mut ds, k, 0.3, &mut rng);
        prop_assert_eq!(rots.len(), k);
        prop_assert_eq!(ds.len(), synth.dataset.len());
        prop_assert!(ds.is_unit_normalized());
    }

    /// Scaling a spec scales the point budget proportionally.
    #[test]
    fn spec_scaling(points in 10usize..100_000, factor in 0.01f64..2.0) {
        let s = SyntheticSpec::new("s", 4, points, 0, 0.0, 1).scaled(factor);
        let expect = ((points as f64 * factor).round() as usize).max(1);
        prop_assert_eq!(s.n_points, expect);
    }
}
