//! Random plane rotations (the `*_r` dataset group).
//!
//! "This group contains the data in the first datasets' group rotated 4
//! times in random planes and degrees" (Section IV-B). A plane rotation —
//! a Givens rotation — mixes two axes; composing several of them produces
//! clusters whose subspaces are linear combinations of the original axes,
//! the hard case of Figure 1c/1d. After rotating about the cube centre the
//! data is min–max renormalized back into `[0,1)^d`.

use mrcc_common::Dataset;
use rand::rngs::StdRng;
use rand::Rng;

/// A Givens rotation in the plane of axes `(i, j)` by angle `theta`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaneRotation {
    /// First axis of the rotation plane.
    pub i: usize,
    /// Second axis of the rotation plane.
    pub j: usize,
    /// Rotation angle in radians.
    pub theta: f64,
}

impl PlaneRotation {
    /// Applies the rotation to one point in place, about the given centre.
    pub fn apply(&self, point: &mut [f64], center: f64) {
        let (sin, cos) = self.theta.sin_cos();
        let a = point[self.i] - center;
        let b = point[self.j] - center;
        point[self.i] = center + cos * a - sin * b;
        point[self.j] = center + sin * a + cos * b;
    }

    /// A random plane rotation over `d` axes: a uniformly random axis pair
    /// and an angle uniform in `[−max_angle, max_angle)`.
    pub fn random(d: usize, max_angle: f64, rng: &mut StdRng) -> Self {
        assert!(d >= 2, "rotations need at least two axes");
        assert!(max_angle > 0.0, "max_angle must be positive");
        let i = rng.gen_range(0..d);
        let mut j = rng.gen_range(0..d - 1);
        if j >= i {
            j += 1;
        }
        PlaneRotation {
            i,
            j,
            theta: rng.gen_range(-max_angle..max_angle),
        }
    }
}

/// Default maximum rotation angle: 20°.
///
/// The paper rotates "4 times in random planes and degrees" without giving
/// the angle distribution. Under maximal mixing (angles up to ±π) the
/// rotated clusters interleave so strongly that *no* evaluated method could
/// reach the ≈0.9 Quality the paper reports for MrCC and LAC on the `*_r`
/// group, so the intended rotations must be moderate; ±20° per plane
/// rotation (composed four times) tilts every cluster well away from the
/// original axes while keeping the clustering problem solvable.
pub const DEFAULT_MAX_ANGLE: f64 = 20.0 * std::f64::consts::PI / 180.0;

/// Rotates every dataset point by `k` random plane rotations (angles up to
/// [`DEFAULT_MAX_ANGLE`]) about the cube centre, then renormalizes into
/// `[0,1)^d`. Returns the rotations applied.
pub fn rotate_dataset(ds: &mut Dataset, k: usize, rng: &mut StdRng) -> Vec<PlaneRotation> {
    rotate_dataset_by(ds, k, DEFAULT_MAX_ANGLE, rng)
}

/// [`rotate_dataset`] with an explicit maximum rotation angle.
pub fn rotate_dataset_by(
    ds: &mut Dataset,
    k: usize,
    max_angle: f64,
    rng: &mut StdRng,
) -> Vec<PlaneRotation> {
    let d = ds.dims();
    let rotations: Vec<PlaneRotation> = (0..k)
        .map(|_| PlaneRotation::random(d, max_angle, rng))
        .collect();
    let mut rotated = Dataset::new(d).expect("same dims");
    let mut buf = vec![0.0f64; d];
    for p in ds.iter() {
        buf.copy_from_slice(p);
        for r in &rotations {
            r.apply(&mut buf, 0.5);
        }
        rotated.push(&buf).expect("finite rotation output");
    }
    rotated.normalize_unit().expect("non-empty dataset");
    *ds = rotated;
    rotations
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn single_rotation_preserves_distances() {
        let r = PlaneRotation {
            i: 0,
            j: 2,
            theta: 1.1,
        };
        let mut a = vec![0.1, 0.5, 0.9];
        let mut b = vec![0.7, 0.2, 0.4];
        let dist = |x: &[f64], y: &[f64]| -> f64 {
            x.iter()
                .zip(y)
                .map(|(u, v)| (u - v) * (u - v))
                .sum::<f64>()
                .sqrt()
        };
        let before = dist(&a, &b);
        r.apply(&mut a, 0.5);
        r.apply(&mut b, 0.5);
        assert!((dist(&a, &b) - before).abs() < 1e-12);
    }

    #[test]
    fn rotation_by_zero_is_identity() {
        let r = PlaneRotation {
            i: 0,
            j: 1,
            theta: 0.0,
        };
        let mut p = vec![0.3, 0.8];
        r.apply(&mut p, 0.5);
        assert!((p[0] - 0.3).abs() < 1e-15 && (p[1] - 0.8).abs() < 1e-15);
    }

    #[test]
    fn quarter_turn_swaps_axes_about_center() {
        let r = PlaneRotation {
            i: 0,
            j: 1,
            theta: std::f64::consts::FRAC_PI_2,
        };
        let mut p = vec![0.7, 0.5]; // (0.2, 0.0) about centre
        r.apply(&mut p, 0.5);
        // 90°: (a, b) → (−b, a) → point (0.5, 0.7).
        assert!((p[0] - 0.5).abs() < 1e-12 && (p[1] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn random_rotation_picks_distinct_axes() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let r = PlaneRotation::random(4, DEFAULT_MAX_ANGLE, &mut rng);
            assert_ne!(r.i, r.j);
            assert!(r.i < 4 && r.j < 4);
        }
    }

    #[test]
    fn rotate_dataset_keeps_shape_and_normalization() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut ds = Dataset::from_rows(&[
            [0.1, 0.2, 0.3],
            [0.9, 0.8, 0.7],
            [0.5, 0.5, 0.5],
            [0.2, 0.9, 0.1],
        ])
        .unwrap();
        let n = ds.len();
        let rots = rotate_dataset(&mut ds, 4, &mut rng);
        assert_eq!(rots.len(), 4);
        assert_eq!(ds.len(), n);
        assert!(ds.is_unit_normalized());
    }

    #[test]
    fn rotation_changes_coordinates() {
        let mut rng = StdRng::seed_from_u64(11);
        let original = Dataset::from_rows(&[[0.1, 0.9], [0.9, 0.1], [0.3, 0.3]]).unwrap();
        let mut ds = original.clone();
        rotate_dataset(&mut ds, 2, &mut rng);
        assert_ne!(ds, original);
    }
}
