//! Synthetic surrogate for the KDD Cup 2008 breast-cancer data.
//!
//! The paper's real-data experiment (Section IV-C/IV-G) uses the Siemens KDD
//! Cup 2008 training set: 25 features automatically extracted from 102,294
//! X-ray Regions of Interest (ROIs), split into four ≈25k-point datasets by
//! view (left/right breast × CC/MLO projection), with a binary malignant /
//! normal ground truth (118 malignant cases among 1,712). That data is
//! proprietary; this module generates a surrogate that preserves the
//! properties the experiment actually exercises:
//!
//! * 25 numeric features, ≈25,000 ROIs per view;
//! * a handful of dominant "normal tissue" modes, each correlated in a
//!   different low-dimensional subspace of the features (tissue-type
//!   signatures);
//! * a small, tight "malignant" mode (≈0.6 % of ROIs, matching the ROI-level
//!   positive rate of the challenge data) living in its own subspace;
//! * background ROIs (uniform noise).
//!
//! The binary ground truth (`true` = malignant) is returned alongside the
//! clusters so the harness can score clustering accuracy against it, exactly
//! as the paper scores against the radiologist/biopsy labels.

use mrcc_common::SubspaceClustering;

use crate::generator::{generate, Synthetic};
use crate::spec::SyntheticSpec;

/// The four view-datasets of the KDD Cup 2008 preprocessing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum View {
    /// Left breast, Cranial-Caudal projection.
    LeftCC,
    /// Left breast, Medio-Lateral-Oblique projection (the view whose results
    /// the paper reports in Figure 5t).
    LeftMLO,
    /// Right breast, Cranial-Caudal projection.
    RightCC,
    /// Right breast, Medio-Lateral-Oblique projection.
    RightMLO,
}

impl View {
    /// All four views.
    pub fn all() -> [View; 4] {
        [View::LeftCC, View::LeftMLO, View::RightCC, View::RightMLO]
    }

    fn seed(self) -> u64 {
        match self {
            View::LeftCC => 0x2008_0000,
            View::LeftMLO => 0x2008_0001,
            View::RightCC => 0x2008_0002,
            View::RightMLO => 0x2008_0003,
        }
    }

    /// Dataset name, e.g. `"kdd-left-mlo"`.
    pub fn name(self) -> &'static str {
        match self {
            View::LeftCC => "kdd-left-cc",
            View::LeftMLO => "kdd-left-mlo",
            View::RightCC => "kdd-right-cc",
            View::RightMLO => "kdd-right-mlo",
        }
    }
}

/// A surrogate view-dataset plus its binary malignancy ground truth.
#[derive(Debug, Clone)]
pub struct KddSurrogate {
    /// The feature data and cluster-level ground truth.
    pub synthetic: Synthetic,
    /// Per-ROI malignancy flag (`true` = malignant).
    pub malignant: Vec<bool>,
    /// Index of the malignant cluster within the ground truth.
    pub malignant_cluster: usize,
}

/// Feature count of the KDD Cup 2008 data.
pub const KDD_DIMS: usize = 25;
/// Points per view-dataset (≈102,294 / 4).
pub const KDD_POINTS_PER_VIEW: usize = 25_000;
/// ROI-level malignancy rate (≈623 positive ROIs of 102,294).
pub const KDD_MALIGNANT_RATE: f64 = 0.006;

/// Generates the surrogate for one view at an optional scale factor
/// (1.0 = full 25k points).
pub fn kdd_cup_2008_surrogate(view: View, scale: f64) -> KddSurrogate {
    // 6 normal-tissue modes + 1 malignant mode; ~20 % background ROIs.
    let spec = SyntheticSpec::new(
        view.name(),
        KDD_DIMS,
        KDD_POINTS_PER_VIEW,
        7,
        0.20,
        view.seed(),
    )
    .scaled(scale);
    let mut synthetic = generate(&spec);

    // Re-proportion the last cluster into the small malignant mode: shrink it
    // to the malignancy budget, moving the surplus into noise-like status by
    // rebuilding the ground truth. Simpler and fully faithful to what the
    // experiment measures: designate the *smallest* cluster as malignant and
    // cap it at the malignancy rate.
    let gt = &synthetic.ground_truth;
    let malignant_cluster = (0..gt.len())
        .min_by_key(|&k| gt.clusters()[k].len())
        .expect("surrogate always has clusters");
    let budget = ((synthetic.dataset.len() as f64 * KDD_MALIGNANT_RATE).round() as usize).max(8);

    let mut clusters: Vec<mrcc_common::SubspaceCluster> = gt.clusters().to_vec();
    if clusters[malignant_cluster].len() > budget {
        clusters[malignant_cluster].points.truncate(budget);
    }
    let ground_truth = SubspaceClustering::new(synthetic.dataset.len(), KDD_DIMS, clusters);

    let mut malignant = vec![false; synthetic.dataset.len()];
    for &i in &ground_truth.clusters()[malignant_cluster].points {
        malignant[i] = true;
    }
    synthetic.ground_truth = ground_truth;

    KddSurrogate {
        synthetic,
        malignant,
        malignant_cluster,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_the_challenge_data() {
        let k = kdd_cup_2008_surrogate(View::LeftMLO, 0.1);
        assert_eq!(k.synthetic.dataset.dims(), 25);
        assert_eq!(k.synthetic.dataset.len(), 2_500);
        assert!(k.synthetic.dataset.is_unit_normalized());
    }

    #[test]
    fn malignancy_rate_is_tiny_and_clustered() {
        let k = kdd_cup_2008_surrogate(View::LeftMLO, 0.2);
        let positives = k.malignant.iter().filter(|&&m| m).count();
        let rate = positives as f64 / k.malignant.len() as f64;
        assert!(rate > 0.0 && rate < 0.02, "rate {rate}");
        // All positives belong to the malignant cluster.
        let cluster = &k.synthetic.ground_truth.clusters()[k.malignant_cluster];
        assert_eq!(cluster.len(), positives);
        assert!(cluster.points.iter().all(|&i| k.malignant[i]));
    }

    #[test]
    fn views_differ_but_are_deterministic() {
        let a = kdd_cup_2008_surrogate(View::LeftCC, 0.05);
        let a2 = kdd_cup_2008_surrogate(View::LeftCC, 0.05);
        let b = kdd_cup_2008_surrogate(View::RightMLO, 0.05);
        assert_eq!(a.synthetic.dataset, a2.synthetic.dataset);
        assert_ne!(a.synthetic.dataset, b.synthetic.dataset);
    }

    #[test]
    fn ground_truth_has_dominant_normal_modes() {
        let k = kdd_cup_2008_surrogate(View::LeftMLO, 0.1);
        let gt = &k.synthetic.ground_truth;
        assert_eq!(gt.len(), 7);
        let largest = gt
            .clusters()
            .iter()
            .map(mrcc_common::SubspaceCluster::len)
            .max()
            .unwrap();
        let malignant = gt.clusters()[k.malignant_cluster].len();
        assert!(largest > 20 * malignant, "{largest} vs {malignant}");
    }
}
