//! Gaussian subspace-cluster generation.
//!
//! "Clusters with random sizes were created in subspaces with randomly
//! chosen original axes […] Each cluster follows Gaussian distributions with
//! random means and standard deviations" (Section IV-B). On its relevant
//! axes a cluster is a truncated Gaussian (resampled into `[0,1)`); on every
//! other axis it is uniform — which is exactly what makes it invisible to
//! full-dimensional methods and a correlation cluster in the paper's sense.

use mrcc_common::{AxisMask, Dataset, SubspaceCluster, SubspaceClustering};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rotation::rotate_dataset;
use crate::spec::SyntheticSpec;

/// A generated dataset plus its ground truth.
#[derive(Debug, Clone)]
pub struct Synthetic {
    /// Dataset name (from the spec).
    pub name: String,
    /// The generated points, unit-normalized.
    pub dataset: Dataset,
    /// Ground-truth clusters: point memberships and relevant axes
    /// (the *real clusters* of Section IV-A).
    pub ground_truth: SubspaceClustering,
    /// The spec that produced this dataset.
    pub spec: SyntheticSpec,
}

/// Range of *irrelevant* axes per cluster: at least 1 (otherwise the cluster
/// is full-dimensional, not a subspace cluster), at most `min(6, d − 2)`.
///
/// The paper quotes subspace dimensionalities of 5–17 but leaves the
/// irrelevant-axis count per cluster unspecified. The count is what governs
/// detectability for *any* full-space grid method: a cluster uniform on `m`
/// irrelevant axes spreads its points over `2^m` level-1 cells, and MrCC's
/// binomial test needs a few dozen points per cell neighborhood to reject
/// the null at `α = 1e−10` (the paper says as much: clusters "in
/// low-dimensional subspaces … tend to be extremely sparse in spaces with
/// several dimensions" and can be missed). Bounding `m ≤ 6` keeps the
/// embedded clusters statistically detectable at the paper's dataset sizes,
/// matching the reported Quality levels; see DESIGN.md.
fn n_irrelevant_range(d: usize) -> (usize, usize) {
    let hi = 6.min(d.saturating_sub(2)).max(1);
    (1, hi)
}

/// One standard Gaussian sample via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    // Draw until u1 > 0 to keep ln finite.
    let mut u1: f64 = rng.gen();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.gen();
    }
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Truncated Gaussian in `[0, 1)`: resample until inside (cheap for the
/// means/σ the generator draws), falling back to clamping after 64 tries.
fn truncated_gaussian(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    for _ in 0..64 {
        let v = mean + std * gaussian(rng);
        if (0.0..1.0).contains(&v) {
            return v;
        }
    }
    (mean + std * gaussian(rng)).clamp(0.0, 1.0 - 1e-9)
}

/// Generates the dataset and its ground truth for a spec.
///
/// ```
/// use mrcc_datagen::{generate, SyntheticSpec};
///
/// let synth = generate(&SyntheticSpec::new("demo", 8, 1_000, 2, 0.1, 7));
/// assert_eq!(synth.dataset.len(), 1_000);
/// assert_eq!(synth.ground_truth.len(), 2);
/// assert!(synth.dataset.is_unit_normalized());
/// ```
///
/// # Panics
/// Panics on degenerate specs (0 dims/points, noise fraction outside
/// `[0, 1)`, more clusters than clustered points).
pub fn generate(spec: &SyntheticSpec) -> Synthetic {
    assert!(spec.dims >= 2, "need at least 2 dimensions");
    assert!(spec.n_points > 0, "need at least one point");
    assert!(
        (0.0..1.0).contains(&spec.noise_fraction),
        "noise fraction must be in [0,1)"
    );
    let n_clustered = spec.n_clustered();
    assert!(
        spec.n_clusters == 0 || n_clustered >= spec.n_clusters,
        "fewer clustered points than clusters"
    );

    let mut rng = StdRng::seed_from_u64(spec.seed);
    let d = spec.dims;

    // Random cluster sizes: weights in [0.5, 1.5) normalized over the
    // clustered point budget, remainder to the last cluster.
    let mut sizes = vec![0usize; spec.n_clusters];
    if spec.n_clusters > 0 {
        let weights: Vec<f64> = (0..spec.n_clusters)
            .map(|_| rng.gen_range(0.5..1.5))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut assigned = 0usize;
        for k in 0..spec.n_clusters {
            let s = if k + 1 == spec.n_clusters {
                n_clustered - assigned
            } else {
                // Keep at least one point per remaining cluster.
                let remaining_clusters = spec.n_clusters - k - 1;
                let raw = (weights[k] / total * n_clustered as f64).round() as usize;
                raw.max(1).min(n_clustered - assigned - remaining_clusters)
            };
            sizes[k] = s;
            assigned += s;
        }
    }

    let (lo_irr, hi_irr) = n_irrelevant_range(d);
    let mut ds = Dataset::new(d).expect("valid dims");
    let mut point = vec![0.0f64; d];
    let mut clusters: Vec<SubspaceCluster> = Vec::with_capacity(spec.n_clusters);
    let mut next_index = 0usize;

    for &size in &sizes {
        // Random subspace: δ = d − (irrelevant count) distinct axes.
        let delta = d - rng.gen_range(lo_irr..=hi_irr);
        let mut axes: Vec<usize> = (0..d).collect();
        // Partial Fisher–Yates shuffle to pick δ axes.
        for i in 0..delta {
            let j = rng.gen_range(i..d);
            axes.swap(i, j);
        }
        let axes = &axes[..delta];
        let mask = AxisMask::from_axes(d, axes.iter().copied());
        // Random Gaussian parameters per relevant axis: means keep the
        // ±3σ bulk inside the cube, σ small enough that the cluster is
        // locally dense.
        let means: Vec<f64> = axes.iter().map(|_| rng.gen_range(0.15..0.85)).collect();
        let stds: Vec<f64> = axes.iter().map(|_| rng.gen_range(0.005..0.025)).collect();

        let members: Vec<usize> = (next_index..next_index + size).collect();
        next_index += size;
        for _ in 0..size {
            for slot in &mut point {
                *slot = rng.gen_range(0.0..1.0); // irrelevant axes: uniform
            }
            for (a, (&m, &s)) in axes.iter().zip(means.iter().zip(&stds)) {
                point[*a] = truncated_gaussian(&mut rng, m, s);
            }
            ds.push(&point).expect("generated point in range");
        }
        clusters.push(SubspaceCluster::new(members, mask));
    }

    // Uniform noise: everything the clusters did not claim (equals the
    // spec's noise budget, plus the whole dataset when there are no
    // clusters).
    for _ in 0..(spec.n_points - next_index) {
        for slot in &mut point {
            *slot = rng.gen_range(0.0..1.0);
        }
        ds.push(&point).expect("noise point in range");
    }

    // Optional rotations (cluster memberships survive; subspaces become
    // linear combinations of the original axes, as in the paper's `_r` group).
    if spec.rotations > 0 {
        rotate_dataset(&mut ds, spec.rotations, &mut rng);
    }

    let ground_truth = SubspaceClustering::new(ds.len(), d, clusters);
    Synthetic {
        name: spec.name.clone(),
        dataset: ds,
        ground_truth,
        spec: spec.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SyntheticSpec {
        SyntheticSpec::new("t", 8, 2000, 3, 0.15, 42)
    }

    #[test]
    fn respects_counts_and_range() {
        let s = generate(&spec());
        assert_eq!(s.dataset.len(), 2000);
        assert_eq!(s.dataset.dims(), 8);
        assert!(s.dataset.is_unit_normalized());
        assert_eq!(s.ground_truth.len(), 3);
        assert_eq!(s.ground_truth.noise().len(), 300);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&spec());
        let b = generate(&spec());
        assert_eq!(a.dataset, b.dataset);
        let mut other = spec();
        other.seed = 43;
        let c = generate(&other);
        assert_ne!(a.dataset, c.dataset);
    }

    #[test]
    fn cluster_points_concentrate_on_relevant_axes() {
        let s = generate(&spec());
        for cluster in s.ground_truth.clusters() {
            for j in 0..8 {
                let values: Vec<f64> = cluster
                    .points
                    .iter()
                    .map(|&i| s.dataset.point(i)[j])
                    .collect();
                let std = mrcc_stats_like_std(&values);
                if cluster.axes.contains(j) {
                    assert!(std < 0.10, "relevant axis {j} too spread: σ={std}");
                } else {
                    assert!(std > 0.15, "irrelevant axis {j} too tight: σ={std}");
                }
            }
        }
    }

    /// Local σ helper (avoid a dev-dependency cycle on mrcc-stats).
    fn mrcc_stats_like_std(v: &[f64]) -> f64 {
        let m = v.iter().sum::<f64>() / v.len() as f64;
        (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
    }

    #[test]
    fn irrelevant_axis_count_is_bounded() {
        for d in [3usize, 5, 6, 10, 18, 30] {
            let (lo, hi) = n_irrelevant_range(d);
            assert!(lo >= 1 && lo <= hi);
            assert!(hi <= 6 && hi <= d - 2, "d={d}: hi={hi}");
        }
        // Every generated cluster leaves 1–6 irrelevant axes.
        let s = generate(&SyntheticSpec::new("r", 12, 3000, 4, 0.1, 5));
        for c in s.ground_truth.clusters() {
            let irr = 12 - c.axes.count();
            assert!((1..=6).contains(&irr), "irrelevant count {irr}");
        }
    }

    #[test]
    fn zero_clusters_all_noise() {
        let s = generate(&SyntheticSpec::new("n", 4, 100, 0, 0.0, 1));
        assert_eq!(s.ground_truth.len(), 0);
        assert_eq!(s.dataset.len(), 100);
    }

    #[test]
    fn rotation_keeps_memberships_and_range() {
        let mut sp = spec();
        sp = sp.rotated(4);
        let s = generate(&sp);
        assert!(s.dataset.is_unit_normalized());
        assert_eq!(s.ground_truth.len(), 3);
        assert_eq!(s.dataset.len(), 2000);
    }

    #[test]
    fn sizes_are_random_but_exhaustive() {
        let s = generate(&spec());
        let total: usize = s
            .ground_truth
            .clusters()
            .iter()
            .map(SubspaceCluster::len)
            .sum();
        assert_eq!(total, 1700);
        // Random sizes: not all equal.
        let sizes: Vec<usize> = s
            .ground_truth
            .clusters()
            .iter()
            .map(SubspaceCluster::len)
            .collect();
        assert!(sizes.iter().any(|&x| x != sizes[0]));
    }
}
