//! The named dataset groups of the paper's evaluation (Section IV-B).
//!
//! * **First group** (`6d` … `18d`): axes, points and clusters grow together
//!   from 6 to 18, 12,000 to 120,000 and 2 to 17; 15 % noise.
//! * **Base `14d`**: 14 axes, 90,000 points, 17 clusters, 15 % noise — the
//!   anchor of the four scalability groups.
//! * **Scalability groups**: each varies exactly one characteristic of `14d` —
//!   points 50k → 250k (`Xk`), clusters 5 → 25 (`Xc`), axes 5 → 30 (`Xd_s`),
//!   noise 5 % → 25 % (`Xo`).
//! * **Rotated group** (`6d_r` … `18d_r`): the first group rotated 4 times
//!   in random planes and degrees.
//!
//! Exact per-dataset points/clusters inside the first group are not tabulated
//! in the paper beyond the endpoints and the `14d` quote; we interpolate
//! linearly and pin `14d` to its quoted values.

use crate::spec::SyntheticSpec;

/// Base seed; dataset seeds are derived deterministically from it so every
/// group is reproducible and datasets are mutually independent.
const SEED: u64 = 0x5EED_2010;

/// The first dataset group: 7 datasets named `6d` … `18d`.
pub fn first_group() -> Vec<SyntheticSpec> {
    let dims = [6usize, 8, 10, 12, 14, 16, 18];
    let points = [
        12_000usize,
        30_000,
        48_000,
        66_000,
        90_000,
        105_000,
        120_000,
    ];
    let clusters = [2usize, 5, 7, 10, 17, 17, 17];
    dims.iter()
        .zip(points.iter().zip(&clusters))
        .enumerate()
        .map(|(i, (&d, (&n, &k)))| {
            SyntheticSpec::new(format!("{d}d"), d, n, k, 0.15, SEED + i as u64)
        })
        .collect()
}

/// The `14d` base dataset: 14 axes, 90,000 points, 17 clusters, 15 % noise.
pub fn base_14d() -> SyntheticSpec {
    SyntheticSpec::new("14d", 14, 90_000, 17, 0.15, SEED + 4)
}

/// Scalability group varying the number of points: 50k … 250k.
pub fn points_group() -> Vec<SyntheticSpec> {
    [50_000usize, 100_000, 150_000, 200_000, 250_000]
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let mut s = base_14d();
            s.name = format!("{}k", n / 1000);
            s.n_points = n;
            s.seed = SEED + 100 + i as u64;
            s
        })
        .collect()
}

/// Scalability group varying the number of clusters: 5 … 25.
pub fn clusters_group() -> Vec<SyntheticSpec> {
    [5usize, 10, 15, 20, 25]
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            let mut s = base_14d();
            s.name = format!("{k}c");
            s.n_clusters = k;
            s.seed = SEED + 200 + i as u64;
            s
        })
        .collect()
}

/// Scalability group varying the dimensionality: 5 … 30 axes (`Xd_s`).
pub fn dims_group() -> Vec<SyntheticSpec> {
    [5usize, 10, 15, 20, 25, 30]
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let mut s = base_14d();
            s.name = format!("{d}d_s");
            s.dims = d;
            s.seed = SEED + 300 + i as u64;
            s
        })
        .collect()
}

/// Scalability group varying the noise percentile: 5 % … 25 % (`Xo`).
pub fn noise_group() -> Vec<SyntheticSpec> {
    [5usize, 10, 15, 20, 25]
        .iter()
        .enumerate()
        .map(|(i, &pct)| {
            let mut s = base_14d();
            s.name = format!("{pct}o");
            s.noise_fraction = pct as f64 / 100.0;
            s.seed = SEED + 400 + i as u64;
            s
        })
        .collect()
}

/// The rotated group: the first group with 4 random plane rotations each.
pub fn rotated_group() -> Vec<SyntheticSpec> {
    first_group().into_iter().map(|s| s.rotated(4)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_group_matches_paper_ranges() {
        let g = first_group();
        assert_eq!(g.len(), 7);
        assert_eq!(g[0].name, "6d");
        assert_eq!(g[0].dims, 6);
        assert_eq!(g[0].n_points, 12_000);
        assert_eq!(g[0].n_clusters, 2);
        assert_eq!(g[6].name, "18d");
        assert_eq!(g[6].dims, 18);
        assert_eq!(g[6].n_points, 120_000);
        assert_eq!(g[6].n_clusters, 17);
        assert!(g.iter().all(|s| (s.noise_fraction - 0.15).abs() < 1e-12));
    }

    #[test]
    fn base_14d_is_the_quoted_dataset() {
        let s = base_14d();
        assert_eq!((s.dims, s.n_points, s.n_clusters), (14, 90_000, 17));
        assert!((s.noise_fraction - 0.15).abs() < 1e-12);
        // And it matches the 14d member of the first group.
        let g = first_group();
        let in_group = g.iter().find(|s| s.name == "14d").unwrap();
        assert_eq!(in_group, &s);
    }

    #[test]
    fn scalability_groups_vary_one_knob() {
        let base = base_14d();
        for s in points_group() {
            assert_eq!((s.dims, s.n_clusters), (base.dims, base.n_clusters));
            assert!((s.noise_fraction - base.noise_fraction).abs() < 1e-12);
        }
        for s in clusters_group() {
            assert_eq!((s.dims, s.n_points), (base.dims, base.n_points));
        }
        for s in dims_group() {
            assert_eq!((s.n_points, s.n_clusters), (base.n_points, base.n_clusters));
        }
        for s in noise_group() {
            assert_eq!((s.dims, s.n_points), (base.dims, base.n_points));
        }
    }

    #[test]
    fn group_endpoints_match_the_paper() {
        assert_eq!(points_group().first().unwrap().n_points, 50_000);
        assert_eq!(points_group().last().unwrap().n_points, 250_000);
        assert_eq!(dims_group().first().unwrap().dims, 5);
        assert_eq!(dims_group().last().unwrap().dims, 30);
        assert_eq!(clusters_group().first().unwrap().n_clusters, 5);
        assert_eq!(clusters_group().last().unwrap().n_clusters, 25);
        assert!((noise_group().first().unwrap().noise_fraction - 0.05).abs() < 1e-12);
        assert!((noise_group().last().unwrap().noise_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rotated_group_mirrors_first_group() {
        let r = rotated_group();
        assert_eq!(r.len(), 7);
        assert!(r.iter().all(|s| s.rotations == 4));
        assert_eq!(r[2].name, "10d_r");
        assert_eq!(r[2].dims, 10);
    }

    #[test]
    fn seeds_are_pairwise_distinct() {
        let mut seeds: Vec<u64> = first_group()
            .into_iter()
            .chain(points_group())
            .chain(clusters_group())
            .chain(dims_group())
            .chain(noise_group())
            .map(|s| s.seed)
            .collect();
        let n = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        // `14d` of the first group and the base of each scalability group
        // share a seed by design; everything else is distinct.
        assert!(seeds.len() >= n - 4);
    }
}
