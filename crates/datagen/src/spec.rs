//! Declarative description of a synthetic dataset.

/// Specification of one synthetic dataset, mirroring the knobs the paper
/// varies: dimensionality, number of points, number of correlation clusters,
/// noise percentile and (for the `*_r` group) rotations.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// Dataset name as used in the paper (e.g. `"14d"`, `"250k"`, `"10d_r"`).
    pub name: String,
    /// Space dimensionality `d`.
    pub dims: usize,
    /// Total number of points `η` (clusters + noise).
    pub n_points: usize,
    /// Number of correlation clusters embedded.
    pub n_clusters: usize,
    /// Fraction of points drawn uniformly as noise, in `[0, 1)`.
    pub noise_fraction: f64,
    /// Number of random plane rotations applied after generation
    /// (0 = axis-parallel subspaces; the paper's rotated group uses 4).
    pub rotations: usize,
    /// RNG seed — generation is fully deterministic.
    pub seed: u64,
}

impl SyntheticSpec {
    /// A compact constructor with no rotations.
    pub fn new(
        name: impl Into<String>,
        dims: usize,
        n_points: usize,
        n_clusters: usize,
        noise_fraction: f64,
        seed: u64,
    ) -> Self {
        SyntheticSpec {
            name: name.into(),
            dims,
            n_points,
            n_clusters,
            noise_fraction,
            rotations: 0,
            seed,
        }
    }

    /// Same spec with `rotations` random plane rotations and a `_r` suffix.
    pub fn rotated(mut self, rotations: usize) -> Self {
        self.rotations = rotations;
        self.name.push_str("_r");
        self
    }

    /// Scales the number of points by `factor` (≥ 0), keeping at least one
    /// point; used by the experiment harness to run paper-shaped workloads
    /// at laptop scale.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        self.n_points = ((self.n_points as f64 * factor).round() as usize).max(1);
        self
    }

    /// Number of noise points implied by the spec.
    pub fn n_noise(&self) -> usize {
        (self.n_points as f64 * self.noise_fraction).round() as usize
    }

    /// Number of clustered points implied by the spec.
    pub fn n_clustered(&self) -> usize {
        self.n_points - self.n_noise()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_split_adds_up() {
        let s = SyntheticSpec::new("t", 10, 1000, 5, 0.15, 7);
        assert_eq!(s.n_noise(), 150);
        assert_eq!(s.n_clustered(), 850);
        assert_eq!(s.n_noise() + s.n_clustered(), s.n_points);
    }

    #[test]
    fn rotated_renames() {
        let s = SyntheticSpec::new("10d", 10, 100, 2, 0.1, 7).rotated(4);
        assert_eq!(s.name, "10d_r");
        assert_eq!(s.rotations, 4);
    }

    #[test]
    fn scaling_rounds_and_clamps() {
        let s = SyntheticSpec::new("t", 5, 100, 2, 0.0, 7).scaled(0.25);
        assert_eq!(s.n_points, 25);
        let tiny = SyntheticSpec::new("t", 5, 1, 1, 0.0, 7).scaled(0.01);
        assert_eq!(tiny.n_points, 1);
    }
}
