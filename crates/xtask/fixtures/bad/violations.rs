//! Fixture: one violation per lint. The driver must report all four slugs
//! for this file.

pub fn takes_the_panic_shortcut(values: &[u32]) -> u32 {
    *values.first().unwrap()
}

pub fn expects_without_reason(values: &[u32]) -> u32 {
    *values.first().expect("should not happen")
}

pub fn raw_float_comparison(x: f64) -> bool {
    x == 0.3
}

pub fn silent_lossy_cast(x: f64) -> usize {
    x as usize
}

pub fn undocumented_unsafe(p: *const u8) -> u8 {
    unsafe { *p }
}
