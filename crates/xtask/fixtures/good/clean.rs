//! Fixture: code that follows every repo convention. The lint driver must
//! report nothing for this file.

/// Propagates instead of unwrapping.
pub fn first_or_err(values: &[u32]) -> Result<u32, String> {
    values
        .first()
        .copied()
        .ok_or_else(|| "empty input".to_string())
}

/// A documented infallible access.
pub fn head(values: &[u32]) -> u32 {
    *values
        .first()
        .expect("callers validate non-emptiness: len > 0 invariant")
}

/// Epsilon comparison instead of raw `==`.
pub fn near_zero(x: f64) -> bool {
    x.abs() < 1e-12
}

/// Lossless widening via `From`.
pub fn widen(x: u32) -> u64 {
    u64::from(x)
}

/// A justified lossy cast carries an allow annotation.
pub fn grid_index(x: f64) -> usize {
    // xtask-allow: as-cast — x is clamped to [0, grid) by the caller
    x as usize
}

/// A documented unsafe block.
pub fn read_first(p: *const u8) -> u8 {
    // SAFETY: callers pass a pointer to at least one initialized byte.
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    // Test code may unwrap and compare floats exactly.
    #[test]
    fn unwrap_is_fine_here() {
        assert_eq!(Some(3).unwrap(), 3);
        assert!(0.5_f64 == 0.5);
        let _ = 7u32 as u64;
    }
}
