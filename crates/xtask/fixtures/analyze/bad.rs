//! Analyze fixture: public panic paths the audit must flag — a direct
//! `panic!`, a transitive `.unwrap()` through a private helper, an assertion
//! and unannotated slice indexing.

/// Direct panic.
pub fn boom() {
    panic!("fixture panic");
}

fn helper(x: Option<u32>) -> u32 {
    x.unwrap()
}

/// Panics transitively via `helper`.
pub fn outer() -> u32 {
    helper(None)
}

/// Unchecked indexing without an `xtask-allow: indexing` note.
pub fn index(v: &[u32]) -> u32 {
    v[1]
}

/// Assertion macro in non-test code.
pub fn checked(x: u32) -> u32 {
    assert!(x > 0, "fixture assert");
    x - 1
}
