//! Analyze fixture: a clean library surface. Every public function is
//! infallible — the panic-path audit must report nothing here.

/// Safe head lookup: no panic on empty input.
pub fn first(v: &[u32]) -> u32 {
    v.first().copied().unwrap_or(0)
}

/// Indexing with a documented bounds invariant.
pub fn pick(v: &[u32]) -> u32 {
    if v.is_empty() {
        return 0;
    }
    // xtask-allow: indexing — emptiness checked above
    v[0]
}

/// Calls only infallible helpers.
pub fn total(v: &[u32]) -> u32 {
    first(v).wrapping_add(pick(v))
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_assert_freely() {
        assert_eq!(super::first(&[3, 4]), 3);
        assert_eq!(super::pick(&[]), 0);
    }
}
