//! Paper-constant conformance: the code must still say what the paper says.
//!
//! MrCC's statistical guarantees hinge on a handful of exact constants
//! (Sections III–IV of Cordeiro et al., ICDE 2010): the `Binomial(nP_j, 1/6)`
//! null hypothesis over six half-cell regions, the integer Laplacian mask
//! weights (`2d` centre / `−1` faces; `3^d − 1` centre for the full mask),
//! the default significance level `α = 1e−10`, `H = 4` resolutions with
//! `H ≥ 3`. A silent drift in any of them — a refactor replacing `1/6` with
//! a parameter default of `0.15`, say — would keep every unit test green
//! while quietly changing what the library computes.
//!
//! Each [`Check`] below names a crate, a file, and a code pattern. Matching
//! is deliberately dumb: all whitespace is stripped from both the pattern and
//! the file's *masked* code view (comments and string-literal contents
//! blanked — prose cannot satisfy a check), then a substring search runs.
//! Dumb matching is robust against formatting and precise enough for
//! constants. There is no `--bless` for this table: if the paper-derived code
//! must change, change the table here in the same commit, visibly.

use crate::lints::Finding;

use super::CrateAst;

/// One paper-conformance rule.
#[derive(Debug, Clone, Copy)]
pub struct Check {
    /// Package name the rule applies to.
    pub crate_name: &'static str,
    /// Repo-relative path suffix of the file that must hold the pattern.
    pub file_suffix: &'static str,
    /// Code pattern; whitespace-insensitive substring of the masked source.
    pub pattern: &'static str,
    /// What the pattern pins down, for the failure message.
    pub what: &'static str,
}

/// The conformance table.
pub const CHECKS: [Check; 9] = [
    Check {
        crate_name: "mrcc",
        file_suffix: "core/src/search.rs",
        pattern: "pub const NEIGHBORHOOD_REGIONS: u64 = 6;",
        what: "six half-cell regions per axis (Sec. III-B)",
    },
    Check {
        crate_name: "mrcc",
        file_suffix: "core/src/search.rs",
        pattern: "pub const NULL_REGION_SHARE: f64 = 1.0 / 6.0;",
        what: "uniform null share p = 1/6 (Sec. III-B)",
    },
    Check {
        crate_name: "mrcc",
        file_suffix: "core/src/search.rs",
        pattern: "binomial_critical_value(neighborhood, NULL_REGION_SHARE, alpha)",
        what: "the β-cluster test draws its critical value from Binomial(nP_j, 1/6)",
    },
    Check {
        crate_name: "mrcc",
        file_suffix: "core/src/convolution.rs",
        pattern: "2 * dims as i64 * center",
        what: "face-only Laplacian centre weight 2d (Sec. III-A, Fig. 2)",
    },
    Check {
        crate_name: "mrcc",
        file_suffix: "core/src/convolution.rs",
        pattern: "3i64.pow(dims as u32) - 1",
        what: "full Laplacian centre weight 3^d − 1 (Sec. III-A)",
    },
    Check {
        crate_name: "mrcc",
        file_suffix: "core/src/config.rs",
        pattern: "alpha: 1e-10,",
        what: "paper default significance level α = 1e−10 (Sec. IV-D)",
    },
    Check {
        crate_name: "mrcc",
        file_suffix: "core/src/config.rs",
        pattern: "resolutions: 4,",
        what: "paper default resolution count H = 4 (Sec. IV-D)",
    },
    Check {
        crate_name: "mrcc-counting-tree",
        file_suffix: "counting-tree/src/tree.rs",
        pattern: "pub const MIN_RESOLUTIONS: usize = 3;",
        what: "the method requires H ≥ 3 resolutions (Sec. III)",
    },
    Check {
        crate_name: "mrcc-stats",
        file_suffix: "stats/src/binomial.rs",
        pattern: "inc_beta(count_to_f64(k), count_to_f64(self.n - k + 1), self.p)",
        what: "exact binomial tail via the incomplete-beta identity P(X ≥ k) = I_p(k, n−k+1)",
    },
];

/// Strips every whitespace character.
fn squash(text: &str) -> String {
    text.chars().filter(|c| !c.is_whitespace()).collect()
}

/// Evaluates one check against the loaded crates. `None` means conforming.
pub fn evaluate(crates: &[CrateAst], check: &Check) -> Option<Finding> {
    let Some(krate) = crates.iter().find(|c| c.name == check.crate_name) else {
        return Some(Finding {
            path: check.file_suffix.to_string(),
            line: 0,
            slug: "paper-constant",
            message: format!(
                "crate `{}` not found in the workspace — cannot verify {}",
                check.crate_name, check.what
            ),
        });
    };
    let Some(src) = krate
        .files
        .iter()
        .find(|s| s.file.path.ends_with(check.file_suffix))
    else {
        return Some(Finding {
            path: check.file_suffix.to_string(),
            line: 0,
            slug: "paper-constant",
            message: format!(
                "file `…{}` not found in crate `{}` — cannot verify {}",
                check.file_suffix, check.crate_name, check.what
            ),
        });
    };
    let code = squash(&src.file.code.join("\n"));
    if code.contains(&squash(check.pattern)) {
        None
    } else {
        Some(Finding {
            path: src.file.path.clone(),
            line: 0,
            slug: "paper-constant",
            message: format!(
                "paper constant drifted: expected `{}` ({}); if this change is \
                 deliberate, update the table in crates/xtask/src/analyze/constants.rs",
                check.pattern, check.what
            ),
        })
    }
}

/// Runs the whole table.
pub fn check(crates: &[CrateAst]) -> Vec<Finding> {
    CHECKS.iter().filter_map(|c| evaluate(crates, c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHECK: Check = Check {
        crate_name: "mrcc",
        file_suffix: "core/src/search.rs",
        pattern: "pub const NULL_REGION_SHARE: f64 = 1.0 / 6.0;",
        what: "uniform null share",
    };

    fn core_crate(src: &str) -> Vec<CrateAst> {
        vec![CrateAst::from_sources(
            "mrcc",
            &[("crates/core/src/search.rs", src)],
        )]
    }

    #[test]
    fn whitespace_differences_do_not_matter() {
        let crates = core_crate("pub const NULL_REGION_SHARE:f64   =\n    1.0/6.0;\n");
        assert!(evaluate(&crates, &CHECK).is_none());
    }

    #[test]
    fn a_deleted_constant_is_reported() {
        let crates = core_crate("pub const NULL_REGION_SHARE: f64 = 0.15;\n");
        let finding = evaluate(&crates, &CHECK).expect("drift must be flagged");
        assert_eq!(finding.slug, "paper-constant");
        assert_eq!(finding.path, "crates/core/src/search.rs");
    }

    #[test]
    fn a_comment_cannot_satisfy_a_check() {
        // The pattern appears only in prose; the masked code view blanks it.
        let crates = core_crate("// pub const NULL_REGION_SHARE: f64 = 1.0 / 6.0;\n");
        assert!(evaluate(&crates, &CHECK).is_some());
    }

    #[test]
    fn missing_crate_or_file_is_reported() {
        assert!(evaluate(&[], &CHECK).is_some());
        let crates = vec![CrateAst::from_sources(
            "mrcc",
            &[("crates/core/src/lib.rs", "pub fn f() {}\n")],
        )];
        assert!(evaluate(&crates, &CHECK).is_some());
    }

    #[test]
    fn the_committed_table_targets_only_audited_paths() {
        for c in &CHECKS {
            assert!(
                c.file_suffix.contains("/src/"),
                "{} is not a library source path",
                c.file_suffix
            );
        }
    }
}
