//! The semantic (cross-file) analysis layer: `cargo run -p xtask -- analyze`.
//!
//! Three analyses run over the parsed item structure of the workspace's
//! library crates (see [`crate::ast`]):
//!
//! | slug             | analysis                                                |
//! |------------------|---------------------------------------------------------|
//! | `panic-path`     | call-graph panic audit: no *new* public function of the |
//! |                  | four core crates may transitively reach a panic source  |
//! |                  | (`panic!`, `unwrap`/`expect`, `assert*`, unchecked `[]` |
//! |                  | indexing); known paths live in the committed baseline   |
//! |                  | `crates/xtask/panic-baseline.txt`                       |
//! | `paper-constant` | conformance of the code to the paper's exact constants  |
//! |                  | (binomial `p = 1/6`, six half-cell regions, Laplacian   |
//! |                  | mask weights, default `α`/`H`) via a declarative table  |
//! | `api-drift`      | each crate's `pub` surface vs the committed snapshot in |
//! |                  | `api/<crate>.txt`; changes require `analyze --bless`    |
//!
//! `--bless` rewrites the panic baseline and the API snapshots from current
//! state; the paper-constant table cannot be blessed (edit the table in
//! [`constants`] deliberately if the paper-derived code must change).

pub mod api;
pub mod constants;
pub mod panics;

use crate::ast::{self, ParsedFile};
use crate::lints::Finding;
use crate::source::SourceFile;
use std::path::Path;

/// One parsed source file of a crate.
#[derive(Debug)]
pub struct ParsedSource {
    /// The masked source views (path is repo-relative).
    pub file: SourceFile,
    /// The parsed item structure.
    pub parsed: ParsedFile,
}

/// One workspace crate, parsed.
#[derive(Debug)]
pub struct CrateAst {
    /// Package name from `Cargo.toml` (e.g. `mrcc-counting-tree`).
    pub name: String,
    /// Library sources (`src/**/*.rs`, excluding `src/bin/`), sorted by path.
    pub files: Vec<ParsedSource>,
}

impl CrateAst {
    /// Builds a crate AST directly from `(path, text)` pairs — the unit the
    /// fixture tests use.
    #[cfg(test)]
    pub fn from_sources(name: &str, sources: &[(&str, &str)]) -> CrateAst {
        let files = sources
            .iter()
            .map(|(path, text)| {
                let file = SourceFile::parse(path, text);
                let parsed = ast::parse_file(&file);
                ParsedSource { file, parsed }
            })
            .collect();
        CrateAst {
            name: name.to_string(),
            files,
        }
    }
}

/// Loads and parses every library crate under `crates/` (the vendored shims
/// and the xtask binary itself are not analyzed).
pub fn load_workspace(repo: &Path) -> Result<Vec<CrateAst>, String> {
    let crates_dir = repo.join("crates");
    let entries =
        std::fs::read_dir(&crates_dir).map_err(|e| format!("{}: {e}", crates_dir.display()))?;
    let mut dirs: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    let mut crates = Vec::new();
    for dir in dirs {
        if dir.file_name().is_some_and(|n| n == "xtask") {
            continue;
        }
        let manifest = dir.join("Cargo.toml");
        let Ok(toml) = std::fs::read_to_string(&manifest) else {
            continue;
        };
        let Some(name) = package_name(&toml) else {
            continue;
        };
        let src = dir.join("src");
        let mut paths = Vec::new();
        collect_lib_rs(&src, &mut paths);
        paths.sort();
        let mut files = Vec::new();
        for path in paths {
            let rel = path
                .strip_prefix(repo)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("{rel}: unreadable: {e}"))?;
            let file = SourceFile::parse(&rel, &text);
            let parsed = ast::parse_file(&file);
            files.push(ParsedSource { file, parsed });
        }
        crates.push(CrateAst { name, files });
    }
    Ok(crates)
}

/// Extracts `name = "…"` from a `[package]` section.
fn package_name(toml: &str) -> Option<String> {
    for line in toml.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let v = rest.trim().trim_matches('"');
                if !v.is_empty() {
                    return Some(v.to_string());
                }
            }
        }
        if line.starts_with('[') && line != "[package]" {
            break;
        }
    }
    None
}

/// Recursively collects `.rs` files under `dir`, skipping `bin/` (binary
/// targets are not library surface).
fn collect_lib_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<_> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n != "bin") {
                collect_lib_rs(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Runs all three analyses over the repository. With `bless`, rewrites the
/// panic baseline and API snapshots instead of failing on drift.
pub fn run(repo: &Path, bless: bool) -> Vec<Finding> {
    let crates = match load_workspace(repo) {
        Ok(crates) => crates,
        Err(err) => {
            return vec![Finding {
                path: "crates".to_string(),
                line: 0,
                slug: "io",
                message: err,
            }]
        }
    };
    let mut findings = Vec::new();
    findings.extend(panics::audit_repo(repo, &crates, bless));
    findings.extend(constants::check(&crates));
    findings.extend(api::check_repo(repo, &crates, bless));
    findings
}
