//! Panic-path audit: which public functions can transitively panic?
//!
//! Per audited crate, every parsed function body is scanned for *direct*
//! panic sources:
//!
//! * panic-family macros — `panic!`, `unreachable!`, `todo!`,
//!   `unimplemented!`;
//! * assertion macros — `assert!`, `assert_eq!`, `assert_ne!`
//!   (`debug_assert*` is deliberately excluded: it compiles out of release
//!   builds, which are what this audit models);
//! * the unwrap family — `.unwrap()`, `.expect()`, `.unwrap_err()`,
//!   `.expect_err()` (an `.expect("… invariant …")` is still a panic path —
//!   deliberate, documented ones live in the baseline until burned down);
//! * slice/array indexing `x[…]` without an `// xtask-allow: indexing`
//!   annotation documenting the bounds invariant.
//!
//! A call graph is then built by name resolution against the audited crates'
//! own functions (`Type::method(…)` exactly; bare calls against free
//! functions, same crate first; `.method(…)` against every known method of
//! that name — a deliberate over-approximation: a false edge can only make
//! the audit stricter, never let a real panic path through). Panic-ness
//! propagates to a fixed point, and every *public* function of the audited
//! crates that can panic must be listed in the committed baseline
//! `crates/xtask/panic-baseline.txt`: new paths fail the build, stale
//! entries fail too (burn-down is enforced), `--bless` rewrites the file.
//!
//! Test code (`#[cfg(test)]`) and the `strict-invariants` verification layer
//! are outside the audit: both exist to panic.

use crate::ast::{Token, Vis};
use crate::lints::Finding;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use super::CrateAst;

/// The crates whose public surface must not grow new panic paths.
pub const AUDITED_CRATES: [&str; 4] = ["mrcc-common", "mrcc-stats", "mrcc-counting-tree", "mrcc"];

/// Repo-relative path of the committed allowlist.
pub const BASELINE_PATH: &str = "crates/xtask/panic-baseline.txt";

/// A direct panic source inside one function body.
#[derive(Debug, Clone)]
pub struct PanicSource {
    /// Human-readable description (`` `panic!` ``, `` `.unwrap()` ``, …).
    pub what: &'static str,
    /// 1-based line.
    pub line: usize,
}

/// One call site extracted from a function body.
#[derive(Debug, Clone)]
struct Call {
    /// Path qualifier immediately before the name (`Binomial::new` → `Binomial`).
    qualifier: Option<String>,
    /// Called name.
    name: String,
    /// `true` for `.name(…)` method-call syntax.
    method: bool,
}

/// A call-graph node.
#[derive(Debug)]
struct Node {
    crate_name: String,
    key: String,
    self_ty: Option<String>,
    file: String,
    line: usize,
    gated: bool,
    sources: Vec<PanicSource>,
    calls: Vec<Call>,
}

/// Why a node panics (for witness-path reporting).
#[derive(Debug, Clone, Copy)]
enum Why {
    Direct,
    Calls(usize),
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const ASSERT_MACROS: [&str; 3] = ["assert", "assert_eq", "assert_ne"];
const UNWRAP_FAMILY: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];

/// Keywords that can directly precede `(`/`[` without forming a call/index.
fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "if" | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "in"
            | "move"
            | "as"
            | "let"
            | "mut"
            | "ref"
            | "break"
            | "continue"
            | "unsafe"
            | "where"
            | "use"
            | "pub"
            | "fn"
            | "impl"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "const"
            | "static"
            | "crate"
            | "super"
            | "dyn"
            | "box"
            | "await"
    )
}

/// Scans a function body for direct panic sources. `allows` suppresses
/// indexing findings annotated `// xtask-allow: indexing`.
fn direct_sources(body: &[Token], file: &crate::source::SourceFile) -> Vec<PanicSource> {
    let mut out = Vec::new();
    for (i, tok) in body.iter().enumerate() {
        let next = body.get(i + 1);
        if tok.is_ident && next.is_some_and(|n| n.text == "!") {
            // `name !` — macro invocation (a trailing `!=` never parses this
            // way: `!` followed by `=` belongs to an expression where the
            // preceding token is not an invocation head; the distinction
            // does not matter for these macro names).
            let followed_by_delim = body
                .get(i + 2)
                .is_some_and(|d| d.text == "(" || d.text == "[" || d.text == "{");
            if followed_by_delim {
                if PANIC_MACROS.contains(&tok.text.as_str()) {
                    out.push(PanicSource {
                        what: "panic-family macro",
                        line: tok.line + 1,
                    });
                } else if ASSERT_MACROS.contains(&tok.text.as_str()) {
                    out.push(PanicSource {
                        what: "assertion macro",
                        line: tok.line + 1,
                    });
                }
            }
        }
        if tok.is_ident
            && UNWRAP_FAMILY.contains(&tok.text.as_str())
            && i > 0
            && body[i - 1].text == "."
            && next.is_some_and(|n| n.text == "(")
        {
            out.push(PanicSource {
                what: "unwrap-family call",
                line: tok.line + 1,
            });
        }
        if tok.text == "[" && i > 0 {
            let prev = &body[i - 1];
            let indexes_place =
                (prev.is_ident && !is_keyword(&prev.text)) || prev.text == ")" || prev.text == "]";
            if indexes_place && !file.allows(tok.line, "indexing") {
                out.push(PanicSource {
                    what: "unchecked slice indexing",
                    line: tok.line + 1,
                });
            }
        }
    }
    out
}

/// Extracts the call sites of a function body.
fn body_calls(body: &[Token]) -> Vec<Call> {
    let mut out = Vec::new();
    for (i, tok) in body.iter().enumerate() {
        if tok.text != "(" || i == 0 {
            continue;
        }
        let prev = &body[i - 1];
        if !prev.is_ident || is_keyword(&prev.text) {
            continue;
        }
        let before = i.checked_sub(2).map(|j| &body[j]);
        match before.map(|t| t.text.as_str()) {
            Some(".") => out.push(Call {
                qualifier: None,
                name: prev.text.clone(),
                method: true,
            }),
            Some("fn") | Some("!") => {} // nested fn decl / macro head
            _ => {
                // Path qualifier: `ident :: name (`.
                let qualifier = (i >= 4
                    && body[i - 2].text == ":"
                    && body[i - 3].text == ":"
                    && body[i - 4].is_ident)
                    .then(|| body[i - 4].text.clone());
                out.push(Call {
                    qualifier,
                    name: prev.text.clone(),
                    method: false,
                });
            }
        }
    }
    out
}

/// Builds the call-graph nodes for the audited crates.
fn build_nodes(crates: &[CrateAst]) -> Vec<Node> {
    let mut nodes = Vec::new();
    for c in crates {
        if !AUDITED_CRATES.contains(&c.name.as_str()) {
            continue;
        }
        for src in &c.files {
            for f in &src.parsed.fns {
                if f.is_test || f.strict_invariants {
                    continue;
                }
                nodes.push(Node {
                    crate_name: c.name.clone(),
                    key: f.key(),
                    self_ty: f.self_ty.clone(),
                    file: src.file.path.clone(),
                    line: f.line + 1,
                    gated: f.vis == Vis::Pub && !f.in_trait_impl,
                    sources: direct_sources(&f.body, &src.file),
                    calls: body_calls(&f.body),
                });
            }
        }
    }
    nodes
}

/// Resolves every call of every node to callee indices by name.
fn resolve_edges(nodes: &[Node]) -> Vec<Vec<usize>> {
    let mut assoc: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        match &n.self_ty {
            Some(ty) => {
                assoc
                    .entry((ty.as_str(), n.key_name()))
                    .or_default()
                    .push(i);
                methods.entry(n.key_name()).or_default().push(i);
            }
            None => free.entry(n.key_name()).or_default().push(i),
        }
    }
    nodes
        .iter()
        .map(|n| {
            let mut edges = BTreeSet::new();
            for call in &n.calls {
                if call.method {
                    if let Some(ids) = methods.get(call.name.as_str()) {
                        edges.extend(ids.iter().copied());
                    }
                    continue;
                }
                match call.qualifier.as_deref() {
                    Some("Self") => {
                        if let Some(ty) = &n.self_ty {
                            if let Some(ids) = assoc.get(&(ty.as_str(), call.name.as_str())) {
                                edges.extend(ids.iter().copied());
                            }
                        }
                    }
                    Some(q) => {
                        if let Some(ids) = assoc.get(&(q, call.name.as_str())) {
                            edges.extend(ids.iter().copied());
                        } else if q.chars().next().is_some_and(char::is_lowercase) {
                            // Module-qualified free call (`search::find(…)`).
                            if let Some(ids) = free.get(call.name.as_str()) {
                                edges.extend(ids.iter().copied());
                            }
                        }
                    }
                    None => {
                        if let Some(ids) = free.get(call.name.as_str()) {
                            // Same-crate candidates win; otherwise any crate
                            // (cross-crate imports like `mdl_cut`).
                            let same: Vec<usize> = ids
                                .iter()
                                .copied()
                                .filter(|&j| nodes[j].crate_name == n.crate_name)
                                .collect();
                            edges.extend(if same.is_empty() { ids.clone() } else { same });
                        }
                    }
                }
            }
            edges.into_iter().collect()
        })
        .collect()
}

impl Node {
    /// The bare function name (`Type::name` → `name`).
    fn key_name(&self) -> &str {
        self.key.rsplit("::").next().unwrap_or(&self.key)
    }
}

/// Fixed-point panic propagation; returns per-node `Option<Why>`.
fn propagate(nodes: &[Node], edges: &[Vec<usize>]) -> Vec<Option<Why>> {
    let mut why: Vec<Option<Why>> = nodes
        .iter()
        .map(|n| (!n.sources.is_empty()).then_some(Why::Direct))
        .collect();
    loop {
        let mut changed = false;
        for i in 0..nodes.len() {
            if why[i].is_some() {
                continue;
            }
            if let Some(&callee) = edges[i].iter().find(|&&j| why[j].is_some()) {
                why[i] = Some(Why::Calls(callee));
                changed = true;
            }
        }
        if !changed {
            return why;
        }
    }
}

/// Reconstructs a readable witness path `f → g → h: <source> at file:line`.
fn witness(nodes: &[Node], why: &[Option<Why>], start: usize) -> String {
    let mut path = Vec::new();
    let mut at = start;
    for _ in 0..8 {
        path.push(nodes[at].key.clone());
        match why[at] {
            Some(Why::Calls(next)) if next != at => at = next,
            _ => break,
        }
    }
    let terminal = &nodes[at];
    let source = terminal.sources.first().map_or_else(String::new, |s| {
        format!("{} at {}:{}", s.what, terminal.file, s.line)
    });
    format!("{} — {source}", path.join(" → "))
}

/// The result of one audit pass.
pub struct Audit {
    /// Baseline-shaped `crate key` lines for every panicking public function.
    pub current: BTreeMap<String, String>,
    /// Findings against the given baseline.
    pub findings: Vec<Finding>,
}

/// Audits `crates` against `baseline` text (lines of `crate fn-key`;
/// `#` comments and blanks ignored).
pub fn audit(crates: &[CrateAst], baseline: &str) -> Audit {
    let nodes = build_nodes(crates);
    let edges = resolve_edges(&nodes);
    let why = propagate(&nodes, &edges);

    // `crate key` → witness message, for every panicking public function.
    let mut current: BTreeMap<String, String> = BTreeMap::new();
    let mut location: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        if n.gated && why[i].is_some() {
            let entry = format!("{} {}", n.crate_name, n.key);
            current
                .entry(entry.clone())
                .or_insert_with(|| witness(&nodes, &why, i));
            location.entry(entry).or_insert((n.file.clone(), n.line));
        }
    }

    let allowed: BTreeSet<&str> = baseline
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();

    let mut findings = Vec::new();
    for (entry, path) in &current {
        if !allowed.contains(entry.as_str()) {
            let (file, line) = location.get(entry).cloned().unwrap_or_default();
            findings.push(Finding {
                path: file,
                line,
                slug: "panic-path",
                message: format!(
                    "new panic path from public function: {path}; make it infallible \
                     or accept it with `analyze --bless`"
                ),
            });
        }
    }
    for entry in &allowed {
        if !current.contains_key(*entry) {
            findings.push(Finding {
                path: BASELINE_PATH.to_string(),
                line: 0,
                slug: "panic-baseline",
                message: format!(
                    "stale baseline entry `{entry}` — this function no longer panics; \
                     remove the line (or run `analyze --bless`)"
                ),
            });
        }
    }
    Audit { current, findings }
}

/// Renders the committed baseline file from an audit.
pub fn render_baseline(audit: &Audit) -> String {
    let mut out = String::from(
        "# Panic-path baseline — public functions of the audited crates that can\n\
         # transitively reach a panic source (see crates/xtask/src/analyze/panics.rs).\n\
         # Every line is `<crate> <function-key>`. New panic paths must NOT be added\n\
         # here casually: fix the code, or justify the entry in the PR. Burned-down\n\
         # entries are removed by `cargo run -p xtask -- analyze --bless`.\n",
    );
    for entry in audit.current.keys() {
        out.push_str(entry);
        out.push('\n');
    }
    out
}

/// Filesystem wrapper: audits against the committed baseline, rewriting it
/// under `--bless`.
pub fn audit_repo(repo: &Path, crates: &[CrateAst], bless: bool) -> Vec<Finding> {
    let path = repo.join(BASELINE_PATH);
    let baseline = std::fs::read_to_string(&path).unwrap_or_default();
    let result = audit(crates, &baseline);
    if bless {
        if let Err(err) = std::fs::write(&path, render_baseline(&result)) {
            return vec![Finding {
                path: BASELINE_PATH.to_string(),
                line: 0,
                slug: "io",
                message: format!("cannot write baseline: {err}"),
            }];
        }
        return Vec::new();
    }
    result.findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_crate(src: &str) -> Vec<CrateAst> {
        vec![CrateAst::from_sources(
            "mrcc-stats",
            &[("crates/stats/src/lib.rs", src)],
        )]
    }

    #[test]
    fn direct_panic_in_public_fn_is_reported() {
        let crates = one_crate("pub fn boom() { panic!(\"no\"); }\n");
        let a = audit(&crates, "");
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.findings[0].slug, "panic-path");
        assert!(a.current.contains_key("mrcc-stats boom"));
    }

    #[test]
    fn transitive_panic_propagates_to_public_callers() {
        let src = "fn inner(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   pub fn outer() -> u32 { inner(None) }\n";
        let a = audit(&one_crate(src), "");
        assert!(
            a.current.contains_key("mrcc-stats outer"),
            "{:?}",
            a.current
        );
        // The private inner fn is a source but not itself gated.
        assert!(!a.current.contains_key("mrcc-stats inner"));
        assert!(a.current["mrcc-stats outer"].contains("inner"));
    }

    #[test]
    fn baseline_suppresses_known_paths_and_flags_stale_ones() {
        let crates = one_crate("pub fn boom() { panic!(\"no\"); }\n");
        let a = audit(&crates, "# comment\nmrcc-stats boom\n");
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        let a = audit(&crates, "mrcc-stats boom\nmrcc-stats gone\n");
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.findings[0].slug, "panic-baseline");
    }

    #[test]
    fn indexing_is_a_source_unless_annotated() {
        let bad = "pub fn pick(v: &[u32]) -> u32 { v[0] }\n";
        assert!(!audit(&one_crate(bad), "").findings.is_empty());
        let good = "pub fn pick(v: &[u32]) -> u32 {\n\
                    \x20   // xtask-allow: indexing — caller guarantees non-empty\n\
                    \x20   v[0]\n}\n";
        assert!(audit(&one_crate(good), "").findings.is_empty());
        let get = "pub fn pick(v: &[u32]) -> u32 { v.first().copied().unwrap_or(0) }\n";
        assert!(audit(&one_crate(get), "").findings.is_empty());
    }

    #[test]
    fn tests_and_strict_invariants_are_exempt() {
        let src = "#[cfg(feature = \"strict-invariants\")]\n\
                   pub fn check(&self) { assert!(false); }\n\
                   #[cfg(test)]\nmod tests {\n    pub fn t() { panic!(); }\n}\n";
        let a = audit(&one_crate(src), "");
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn method_resolution_links_across_crates() {
        let tree = CrateAst::from_sources(
            "mrcc-counting-tree",
            &[(
                "crates/counting-tree/src/lib.rs",
                "pub struct Level;\nimpl Level {\n    pub fn cell(&self, i: usize) -> u32 { self.cells[i] }\n}\n",
            )],
        );
        let core = CrateAst::from_sources(
            "mrcc",
            &[(
                "crates/core/src/lib.rs",
                "pub fn probe(l: &Level) -> u32 { l.cell(3) }\n",
            )],
        );
        let a = audit(&[tree, core], "");
        assert!(a.current.contains_key("mrcc probe"), "{:?}", a.current);
        assert!(a.current.contains_key("mrcc-counting-tree Level::cell"));
    }

    #[test]
    fn assert_counts_but_debug_assert_does_not() {
        let src = "pub fn a(x: u32) { assert!(x > 0); }\n\
                   pub fn d(x: u32) { debug_assert!(x > 0); }\n";
        let a = audit(&one_crate(src), "");
        assert!(a.current.contains_key("mrcc-stats a"));
        assert!(!a.current.contains_key("mrcc-stats d"));
    }

    #[test]
    fn unaudited_crates_are_ignored() {
        let crates = vec![CrateAst::from_sources(
            "mrcc-eval",
            &[("crates/eval/src/lib.rs", "pub fn boom() { panic!(); }\n")],
        )];
        assert!(audit(&crates, "").findings.is_empty());
    }
}
