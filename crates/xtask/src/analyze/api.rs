//! Public-API snapshot: the `pub` surface of every library crate, diffed
//! against a committed baseline.
//!
//! Each crate's surface is rendered into sorted, whitespace-normalized lines
//! (`api/<crate>.txt` at the repo root): public functions with their full
//! signatures (associated functions keyed `Type::name`), structs with their
//! `pub` fields only, enums with every variant, traits, constants, statics,
//! type aliases and `pub use` re-exports. Any difference between the rendered
//! surface and the committed snapshot — a changed signature, a removed
//! variant, a new export — fails `analyze` until the change is accepted with
//! `analyze --bless`, which makes API drift an explicit, reviewable part of
//! every refactor PR.
//!
//! Known over-approximation: module privacy is ignored — a `pub fn` inside a
//! private `mod` is snapshotted even though it is not nameable from outside.
//! That errs toward tracking *more* surface, never less, and this workspace's
//! crates expose their modules publicly anyway.

use crate::ast::{TypeKind, Vis};
use crate::lints::Finding;
use std::path::Path;

use super::CrateAst;

/// Repo-relative directory holding the committed snapshots.
pub const SNAPSHOT_DIR: &str = "api";

/// Renders one crate's public surface as sorted snapshot lines.
pub fn render(krate: &CrateAst) -> String {
    let mut lines = vec![format!("# public API surface of `{}`", krate.name)];
    let mut body = Vec::new();
    for src in &krate.files {
        for f in &src.parsed.fns {
            if f.vis != Vis::Pub || f.is_test || f.in_trait_impl {
                continue;
            }
            // `fn name (…)` → `fn Type::name (…)` for associated functions.
            let tail = f
                .signature
                .strip_prefix(&format!("fn {}", f.name))
                .unwrap_or(&f.signature);
            body.push(format!("{}fn {}{tail}", prefix(&f.module), f.key()));
        }
        for t in &src.parsed.types {
            if t.vis != Vis::Pub || t.is_test {
                continue;
            }
            let decl = match t.kind {
                TypeKind::Reexport => format!("pub {}", t.decl),
                _ => t.decl.clone(),
            };
            body.push(format!("{}{decl}", prefix(&t.module)));
        }
    }
    body.sort();
    body.dedup();
    lines.extend(body);
    lines.join("\n") + "\n"
}

/// `outer::inner::` prefix for items in inline modules.
fn prefix(module: &[String]) -> String {
    if module.is_empty() {
        String::new()
    } else {
        format!("{}::", module.join("::"))
    }
}

/// Diffs a rendered surface against the committed snapshot text.
pub fn diff(crate_name: &str, committed: &str, current: &str) -> Vec<Finding> {
    let path = format!("{SNAPSHOT_DIR}/{crate_name}.txt");
    let lines = |text: &str| -> Vec<String> {
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect()
    };
    let old = lines(committed);
    let new = lines(current);
    if committed.is_empty() {
        return vec![Finding {
            path,
            line: 0,
            slug: "api-drift",
            message: format!(
                "no committed API snapshot for crate `{crate_name}`; \
                 run `cargo run -p xtask -- analyze --bless` and commit it"
            ),
        }];
    }
    let mut findings = Vec::new();
    for line in &new {
        if !old.contains(line) {
            findings.push(Finding {
                path: path.clone(),
                line: 0,
                slug: "api-drift",
                message: format!("public API added or changed: `{line}`; accept with `--bless`"),
            });
        }
    }
    for line in &old {
        if !new.contains(line) {
            findings.push(Finding {
                path: path.clone(),
                line: 0,
                slug: "api-drift",
                message: format!("public API removed or changed: `{line}`; accept with `--bless`"),
            });
        }
    }
    findings
}

/// Filesystem wrapper: diffs every crate against `api/<crate>.txt`, rewriting
/// the snapshots (and pruning stale ones) under `--bless`.
pub fn check_repo(repo: &Path, crates: &[CrateAst], bless: bool) -> Vec<Finding> {
    let dir = repo.join(SNAPSHOT_DIR);
    let mut findings = Vec::new();
    if bless {
        if let Err(err) = std::fs::create_dir_all(&dir) {
            return vec![io_finding(SNAPSHOT_DIR, &err.to_string())];
        }
    }
    for krate in crates {
        let current = render(krate);
        let path = dir.join(format!("{}.txt", krate.name));
        if bless {
            if let Err(err) = std::fs::write(&path, &current) {
                findings.push(io_finding(SNAPSHOT_DIR, &err.to_string()));
            }
            continue;
        }
        let committed = std::fs::read_to_string(&path).unwrap_or_default();
        findings.extend(diff(&krate.name, &committed, &current));
    }
    // Snapshots for crates that no longer exist.
    if let Ok(entries) = std::fs::read_dir(&dir) {
        for entry in entries.filter_map(Result::ok) {
            let name = entry.file_name().to_string_lossy().to_string();
            let Some(stem) = name.strip_suffix(".txt") else {
                continue;
            };
            if crates.iter().any(|c| c.name == stem) {
                continue;
            }
            if bless {
                let _ = std::fs::remove_file(entry.path());
            } else {
                findings.push(Finding {
                    path: format!("{SNAPSHOT_DIR}/{name}"),
                    line: 0,
                    slug: "api-drift",
                    message: format!(
                        "snapshot for unknown crate `{stem}`; remove it (or run `--bless`)"
                    ),
                });
            }
        }
    }
    findings
}

fn io_finding(path: &str, message: &str) -> Finding {
    Finding {
        path: path.to_string(),
        line: 0,
        slug: "io",
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_crate() -> CrateAst {
        CrateAst::from_sources(
            "mrcc-demo",
            &[(
                "crates/demo/src/lib.rs",
                "pub struct Pt { pub x: f64, y: f64 }\n\
                 impl Pt {\n\
                 \x20   pub fn x(&self) -> f64 { self.x }\n\
                 \x20   fn hidden(&self) {}\n\
                 }\n\
                 impl Clone for Pt { fn clone(&self) -> Pt { Pt { x: self.x, y: self.y } } }\n\
                 pub fn free(a: u32) -> u32 { a }\n\
                 pub const MAX: usize = 64;\n\
                 #[cfg(test)]\nmod tests {\n    pub fn t() {}\n}\n",
            )],
        )
    }

    #[test]
    fn render_lists_only_public_non_test_surface() {
        let s = render(&demo_crate());
        assert!(s.contains("fn Pt::x"), "{s}");
        assert!(s.contains("fn free"), "{s}");
        assert!(s.contains("const MAX : usize"), "{s}");
        assert!(s.contains("pub x : f64"), "{s}");
        assert!(!s.contains("y : f64 }"), "private field leaked: {s}");
        assert!(!s.contains("hidden"), "{s}");
        assert!(!s.contains("clone"), "trait impl leaked: {s}");
        assert!(!s.contains("fn t"), "test fn leaked: {s}");
    }

    #[test]
    fn unchanged_surface_diffs_clean() {
        let s = render(&demo_crate());
        assert!(diff("mrcc-demo", &s, &s).is_empty());
    }

    #[test]
    fn changed_signature_is_both_added_and_removed() {
        let old = render(&demo_crate());
        let new = old.replace("fn free ( a : u32 ) - > u32", "fn free ( a : u64 ) - > u64");
        assert_ne!(old, new, "replacement must hit");
        let findings = diff("mrcc-demo", &old, &new);
        assert_eq!(findings.len(), 2, "{findings:#?}");
        assert!(findings.iter().all(|f| f.slug == "api-drift"));
    }

    #[test]
    fn missing_snapshot_is_one_clear_finding() {
        let findings = diff("mrcc-demo", "", &render(&demo_crate()));
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("--bless"));
    }

    #[test]
    fn render_is_stable_and_sorted() {
        let a = render(&demo_crate());
        let b = render(&demo_crate());
        assert_eq!(a, b);
        let body: Vec<&str> = a.lines().filter(|l| !l.starts_with('#')).collect();
        let mut sorted = body.clone();
        sorted.sort_unstable();
        assert_eq!(body, sorted);
    }
}
