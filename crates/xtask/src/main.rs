//! `xtask` — the repository's static-analysis and verification driver.
//!
//! ```text
//! cargo run -p xtask -- lint             # repo-specific source lints
//! cargo run -p xtask -- lint <paths>     # same lints over explicit files/dirs
//! cargo run -p xtask -- analyze          # semantic analyses (see `analyze`)
//! cargo run -p xtask -- analyze --bless  # accept API/panic baseline changes
//! cargo run -p xtask -- fmt-check        # cargo fmt --all --check
//! cargo run -p xtask -- invariants      # per-crate tests with strict-invariants
//! ```
//!
//! `lint` walks the workspace's own source (`crates/*/src`, the facade
//! `src/`, benches and bins — never `vendor/` or `target/`) and applies the
//! token-level lints in [`lints`] with per-lint path scopes. `analyze` parses
//! the library crates into their item structure ([`ast`]) and runs the
//! cross-file analyses in [`analyze`]: the panic-path audit, the
//! paper-constant conformance table and the public-API drift gate. Both
//! commands accept `--format text|json|github` (JSON records for tooling,
//! GitHub Actions annotations for CI). Exit status is nonzero when any
//! finding survives, so CI can gate on it.

#![forbid(unsafe_code)]

mod analyze;
mod ast;
mod lints;
mod source;

use lints::Finding;
use source::SourceFile;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// Output format for findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    /// Human-readable `path:line: [slug] message` lines (default).
    Text,
    /// JSON array of `{file, line, lint, message}` records.
    Json,
    /// GitHub Actions `::error …` workflow annotations.
    Github,
}

/// Flags shared by `lint` and `analyze`.
struct Flags {
    format: Format,
    bless: bool,
    /// Non-flag arguments, in order.
    positional: Vec<String>,
}

/// Splits `--format <f>` / `--format=<f>` / `--bless` from positional args.
fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        format: Format::Text,
        bless: false,
        positional: Vec::new(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let format_value = if arg == "--format" {
            Some(
                iter.next()
                    .ok_or_else(|| "--format requires a value".to_string())?
                    .clone(),
            )
        } else {
            arg.strip_prefix("--format=").map(str::to_string)
        };
        if let Some(value) = format_value {
            flags.format = match value.as_str() {
                "text" => Format::Text,
                "json" => Format::Json,
                "github" => Format::Github,
                other => {
                    return Err(format!(
                        "unknown format `{other}`; expected text|json|github"
                    ))
                }
            };
        } else if arg == "--bless" {
            flags.bless = true;
        } else if arg.starts_with("--") {
            return Err(format!("unknown flag `{arg}`"));
        } else {
            flags.positional.push(arg.clone());
        }
    }
    Ok(flags)
}

/// Prints findings in the chosen format and maps them to an exit code. The
/// summary goes to stderr in machine formats so stdout stays parseable.
fn emit(label: &str, findings: &[Finding], format: Format) -> ExitCode {
    match format {
        Format::Text => {
            for f in findings {
                println!("{f}");
            }
            if findings.is_empty() {
                println!("xtask {label}: clean");
            } else {
                println!("xtask {label}: {} finding(s)", findings.len());
            }
        }
        Format::Json => {
            println!("{}", lints::to_json(findings));
            eprintln!("xtask {label}: {} finding(s)", findings.len());
        }
        Format::Github => {
            for f in findings {
                println!("{}", lints::github_annotation(f));
            }
            eprintln!("xtask {label}: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Crates whose library code must be panic-free (`no-unwrap` scope).
const PANIC_FREE_CRATES: [&str; 4] = ["common", "stats", "counting-tree", "core"];

/// Crates whose arithmetic must avoid bare `as` casts (`as-cast` scope).
const CAST_STRICT_CRATES: [&str; 2] = ["counting-tree", "stats"];

/// Files allowed to use raw float `==`: the epsilon helpers themselves.
const FLOAT_EQ_APPROVED: [&str; 1] = ["crates/common/src/float.rs"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => {
            eprintln!(
                "usage: cargo run -p xtask -- \
                 <lint [paths..] | analyze [--bless] | fmt-check | invariants> \
                 [--format text|json|github]"
            );
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "lint" => run_lint(rest),
        "analyze" => run_analyze(rest),
        "fmt-check" => run_fmt_check(),
        "invariants" => run_invariants(),
        other => {
            eprintln!(
                "unknown subcommand `{other}`; expected lint | analyze | fmt-check | invariants"
            );
            ExitCode::FAILURE
        }
    }
}

/// Recursively collects `.rs` files under `dir`, skipping `target/`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name != "target" && name != ".git" {
                collect_rs(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The workspace's own lintable source roots (vendored shims excluded:
/// they mirror external API surfaces and are not held to repo conventions).
fn workspace_roots(repo: &Path) -> Vec<PathBuf> {
    let mut roots = vec![repo.join("src"), repo.join("tests"), repo.join("examples")];
    if let Ok(entries) = std::fs::read_dir(repo.join("crates")) {
        let mut crate_dirs: Vec<PathBuf> =
            entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            for sub in ["src", "benches", "bin", "tests", "examples"] {
                let p = dir.join(sub);
                if p.is_dir() {
                    roots.push(p);
                }
            }
        }
    }
    roots.into_iter().filter(|p| p.is_dir()).collect()
}

/// `true` when `rel` (repo-relative, `/`-separated) lies in the library
/// source of one of `crates` — benches/bins/tests are exempt from the
/// panic-free and cast-strict scopes.
fn in_crate_src(rel: &str, crates: &[&str]) -> bool {
    crates
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/src/")))
}

/// Applies every lint (respecting path scopes) to one file.
fn lint_file(rel: &str, file: &SourceFile, scoped: bool, out: &mut Vec<Finding>) {
    if !scoped || in_crate_src(rel, &PANIC_FREE_CRATES) {
        lints::no_unwrap(file, out);
    }
    if !scoped || !FLOAT_EQ_APPROVED.contains(&rel) {
        lints::float_eq(file, out);
    }
    if !scoped || in_crate_src(rel, &CAST_STRICT_CRATES) {
        lints::as_cast(file, out);
    }
    lints::safety_comment(file, out);
}

fn lint_paths(repo: &Path, roots: &[PathBuf], scoped: bool) -> Vec<Finding> {
    let mut files = Vec::new();
    let mut findings = Vec::new();
    for root in roots {
        if root.is_file() {
            files.push(root.clone());
        } else if root.is_dir() {
            collect_rs(root, &mut files);
        } else {
            // A typo'd explicit path must fail loudly, not lint zero files.
            findings.push(Finding {
                path: root.to_string_lossy().replace('\\', "/"),
                line: 0,
                slug: "io",
                message: "path does not exist".to_string(),
            });
        }
    }
    for path in files {
        let rel = path
            .strip_prefix(repo)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let file = SourceFile::parse(&rel, &text);
                lint_file(&rel, &file, scoped, &mut findings);
            }
            Err(err) => findings.push(Finding {
                path: rel,
                line: 0,
                slug: "io",
                message: format!("unreadable: {err}"),
            }),
        }
    }
    findings
}

fn run_lint(extra: &[String]) -> ExitCode {
    let flags = match parse_flags(extra) {
        Ok(f) => f,
        Err(err) => {
            eprintln!("xtask lint: {err}");
            return ExitCode::FAILURE;
        }
    };
    if flags.bless {
        eprintln!("xtask lint: --bless only applies to `analyze`");
        return ExitCode::FAILURE;
    }
    let repo = repo_root();
    let (roots, scoped) = if flags.positional.is_empty() {
        (workspace_roots(&repo), true)
    } else {
        // Explicit paths (fixtures, ad-hoc checks): every lint applies.
        (flags.positional.iter().map(PathBuf::from).collect(), false)
    };
    let findings = lint_paths(&repo, &roots, scoped);
    emit("lint", &findings, flags.format)
}

fn run_analyze(extra: &[String]) -> ExitCode {
    let flags = match parse_flags(extra) {
        Ok(f) => f,
        Err(err) => {
            eprintln!("xtask analyze: {err}");
            return ExitCode::FAILURE;
        }
    };
    if !flags.positional.is_empty() {
        eprintln!(
            "xtask analyze: unexpected argument `{}` (analyze always runs on the workspace)",
            flags.positional[0]
        );
        return ExitCode::FAILURE;
    }
    let findings = analyze::run(&repo_root(), flags.bless);
    if flags.bless && findings.is_empty() {
        println!("xtask analyze: baselines blessed (panic-baseline.txt, api/*.txt)");
        return ExitCode::SUCCESS;
    }
    emit("analyze", &findings, flags.format)
}

fn run_fmt_check() -> ExitCode {
    run_step("cargo fmt --all --check", &["fmt", "--all", "--check"])
}

/// Crates that gain runtime checks under `--features strict-invariants`.
const INVARIANT_CRATES: [&str; 5] = [
    "mrcc-common",
    "mrcc-counting-tree",
    "mrcc-stats",
    "mrcc",
    "mrcc-repro",
];

fn run_invariants() -> ExitCode {
    for pkg in INVARIANT_CRATES {
        let label = format!("cargo test -p {pkg} --features strict-invariants");
        let status = run_step(
            &label,
            &["test", "-q", "-p", pkg, "--features", "strict-invariants"],
        );
        if status != ExitCode::SUCCESS {
            return status;
        }
    }
    ExitCode::SUCCESS
}

fn run_step(label: &str, args: &[&str]) -> ExitCode {
    println!("xtask: {label}");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    match Command::new(cargo).args(args).status() {
        Ok(status) if status.success() => ExitCode::SUCCESS,
        Ok(status) => {
            eprintln!("xtask: `{label}` failed with {status}");
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("xtask: could not spawn `{label}`: {err}");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR` is `crates/xtask`.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or(manifest.clone(), Path::to_path_buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str) -> PathBuf {
        repo_root().join("crates/xtask/fixtures").join(name)
    }

    #[test]
    fn good_fixtures_are_clean() {
        let repo = repo_root();
        let findings = lint_paths(&repo, &[fixture("good")], false);
        assert!(findings.is_empty(), "unexpected findings: {findings:#?}");
    }

    #[test]
    fn bad_fixtures_trip_every_lint() {
        let repo = repo_root();
        let findings = lint_paths(&repo, &[fixture("bad")], false);
        for slug in ["no-unwrap", "float-eq", "as-cast", "safety-comment"] {
            assert!(
                findings.iter().any(|f| f.slug == slug),
                "lint `{slug}` did not fire on the bad fixtures; got {findings:#?}"
            );
        }
    }

    #[test]
    fn scopes_route_lints_to_the_right_crates() {
        let src = "fn f(x: Option<u32>) -> u64 { x.unwrap() as u64 }\n";
        let file = SourceFile::parse("crates/eval/src/lib.rs", src);
        let mut findings = Vec::new();
        lint_file("crates/eval/src/lib.rs", &file, true, &mut findings);
        // eval is outside both the panic-free and cast-strict scopes.
        assert!(findings.is_empty(), "{findings:#?}");

        let file = SourceFile::parse("crates/counting-tree/src/tree.rs", src);
        let mut findings = Vec::new();
        lint_file(
            "crates/counting-tree/src/tree.rs",
            &file,
            true,
            &mut findings,
        );
        let slugs: Vec<_> = findings.iter().map(|f| f.slug).collect();
        assert!(slugs.contains(&"no-unwrap"), "{findings:#?}");
        assert!(slugs.contains(&"as-cast"), "{findings:#?}");
    }

    #[test]
    fn float_eq_approved_paths_are_exempt() {
        let src = "pub fn approx(a: f64) -> bool { a == 0.0 }\n";
        let rel = "crates/common/src/float.rs";
        let file = SourceFile::parse(rel, src);
        let mut findings = Vec::new();
        lint_file(rel, &file, true, &mut findings);
        assert!(
            findings.iter().all(|f| f.slug != "float-eq"),
            "{findings:#?}"
        );
    }

    #[test]
    fn flag_parsing_covers_formats_and_bless() {
        let args = |list: &[&str]| list.iter().map(|s| (*s).to_string()).collect::<Vec<_>>();
        let f = parse_flags(&args(&["--format", "json", "a.rs", "--bless"])).unwrap();
        assert_eq!(f.format, Format::Json);
        assert!(f.bless);
        assert_eq!(f.positional, vec!["a.rs".to_string()]);
        let f = parse_flags(&args(&["--format=github"])).unwrap();
        assert_eq!(f.format, Format::Github);
        assert!(parse_flags(&args(&["--format", "yaml"])).is_err());
        assert!(parse_flags(&args(&["--format"])).is_err());
        assert!(parse_flags(&args(&["--frobnicate"])).is_err());
    }

    #[test]
    fn analyze_good_fixture_is_clean() {
        let text = std::fs::read_to_string(fixture("analyze/good.rs")).unwrap();
        let crates = vec![analyze::CrateAst::from_sources(
            "mrcc-common",
            &[("crates/common/src/lib.rs", text.as_str())],
        )];
        let audit = analyze::panics::audit(&crates, "");
        assert!(audit.findings.is_empty(), "{:#?}", audit.findings);
    }

    #[test]
    fn analyze_bad_fixture_trips_the_panic_audit() {
        let text = std::fs::read_to_string(fixture("analyze/bad.rs")).unwrap();
        let crates = vec![analyze::CrateAst::from_sources(
            "mrcc-common",
            &[("crates/common/src/lib.rs", text.as_str())],
        )];
        let audit = analyze::panics::audit(&crates, "");
        for key in [
            "mrcc-common boom",
            "mrcc-common outer",
            "mrcc-common index",
            "mrcc-common checked",
        ] {
            assert!(
                audit.current.contains_key(key),
                "`{key}` missing from {:#?}",
                audit.current
            );
        }
        // The private helper is a source but not itself a gated entry.
        assert!(!audit.current.contains_key("mrcc-common helper"));
    }

    #[test]
    fn workspace_analyze_is_clean() {
        // The committed baselines (panic-baseline.txt, api/*.txt) must match
        // the tree this test runs against — the analyze self-test.
        let findings = analyze::run(&repo_root(), false);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn workspace_roots_skip_vendor() {
        let roots = workspace_roots(&repo_root());
        assert!(roots
            .iter()
            .all(|r| !r.to_string_lossy().contains("vendor")));
        assert!(roots
            .iter()
            .any(|r| r.ends_with("crates/counting-tree/src")));
    }
}
