//! A lightweight recursive-descent parser for Rust's *item* structure.
//!
//! The token-level lints in [`crate::lints`] see one line at a time; the
//! semantic analyses in [`crate::analyze`] need to see across statements and
//! files: which functions exist, what their visibility and signatures are,
//! which impl block they belong to, and what their bodies call. This module
//! provides exactly that — no more. It parses the *masked* code view built by
//! [`crate::source`] (string/comment contents already blanked), so it never
//! has to reason about literals, and it deliberately does not build a full
//! expression tree: function bodies are kept as flat token slices that the
//! analyses scan for call and panic-source patterns.
//!
//! Coverage is the item grammar this workspace actually uses: `fn`, `struct`,
//! `enum`, `trait`, `impl` (inherent and trait), `mod` (inline and
//! out-of-line), `use`, `const`, `static`, `type` and `macro_rules!`.
//! Anything unrecognized is skipped one token at a time, so a new construct
//! degrades to "not analyzed", never to a parse abort.

use crate::source::SourceFile;

/// One lexical token of the masked code view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token text: an identifier/number run, or a single punctuation char.
    pub text: String,
    /// 0-based source line the token starts on.
    pub line: usize,
    /// `true` for identifier/number tokens.
    pub is_ident: bool,
}

impl Token {
    fn is(&self, text: &str) -> bool {
        self.text == text
    }
}

/// Lexes the masked code view into tokens. Comment and literal contents are
/// already blanked by [`SourceFile::parse`], so the stream contains only real
/// code structure (plus bare `"`/`'` delimiters, which the parser ignores).
pub fn tokenize(file: &SourceFile) -> Vec<Token> {
    let mut toks = Vec::new();
    for (line, code) in file.code.iter().enumerate() {
        let chars: Vec<char> = code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Token {
                    text: chars[start..i].iter().collect(),
                    line,
                    is_ident: true,
                });
            } else {
                toks.push(Token {
                    text: c.to_string(),
                    line,
                    is_ident: false,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Declared visibility of an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// No modifier.
    Private,
    /// `pub(crate)`, `pub(super)`, `pub(in …)`.
    Scoped,
    /// Plain `pub`.
    Pub,
}

/// A parsed function (free, inherent method, trait method or trait-impl
/// method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Inline-module path from the crate file root (empty at file top level).
    pub module: Vec<String>,
    /// The `impl`/`trait` self type the function belongs to, if any.
    pub self_ty: Option<String>,
    /// Function name.
    pub name: String,
    /// Declared visibility (trait items count as the trait's visibility).
    pub vis: Vis,
    /// Whitespace-normalized signature, `fn name (…) -> …`.
    pub signature: String,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// `true` when the function sits in a `#[cfg(test)]` region.
    pub is_test: bool,
    /// `true` when gated behind `#[cfg(feature = "strict-invariants")]`.
    pub strict_invariants: bool,
    /// `true` for methods of `impl Trait for Type` blocks.
    pub in_trait_impl: bool,
    /// Body tokens (between the outer braces; empty for bodyless items).
    pub body: Vec<Token>,
}

impl FnItem {
    /// Stable key used by the call graph and baselines: `Type::name` for
    /// associated functions, `name` for free functions.
    pub fn key(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Kind of a non-function item captured for the API snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeKind {
    /// `struct`.
    Struct,
    /// `enum`.
    Enum,
    /// `trait`.
    Trait,
    /// `const`.
    Const,
    /// `static`.
    Static,
    /// `type` alias.
    TypeAlias,
    /// `pub use` re-export.
    Reexport,
}

/// A parsed non-function item.
#[derive(Debug, Clone)]
pub struct TypeItem {
    /// Inline-module path from the crate file root.
    pub module: Vec<String>,
    /// Item kind.
    pub kind: TypeKind,
    /// Declared visibility.
    pub vis: Vis,
    /// Whitespace-normalized declaration (starts with the item's keyword and
    /// name). Struct declarations list only the `pub` fields (private fields
    /// are not API surface); enum declarations list every variant.
    pub decl: String,
    /// `true` when the item sits in a `#[cfg(test)]` region.
    pub is_test: bool,
}

/// Everything extracted from one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Functions, in source order.
    pub fns: Vec<FnItem>,
    /// Non-function items, in source order.
    pub types: Vec<TypeItem>,
}

/// Parses one analyzed source file into its item structure.
pub fn parse_file(file: &SourceFile) -> ParsedFile {
    let toks = tokenize(file);
    let mut p = Parser {
        file,
        toks,
        pos: 0,
        out: ParsedFile::default(),
    };
    let mut module = Vec::new();
    p.parse_items(&mut module, None, false, false);
    p.out
}

/// Joins token texts with single spaces — the canonical normalized form used
/// for signatures, declarations and baselines (stable under reformatting).
fn join(toks: &[Token]) -> String {
    toks.iter()
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join(" ")
}

struct Parser<'a> {
    file: &'a SourceFile,
    toks: Vec<Token>,
    pos: usize,
    out: ParsedFile,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.toks.get(self.pos + offset)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_is(&self, text: &str) -> bool {
        self.peek().is_some_and(|t| t.is(text))
    }

    /// Skips a balanced `open … close` group, assuming the cursor is on
    /// `open`. Returns the token range covered (inclusive of delimiters).
    fn skip_balanced(&mut self, open: &str, close: &str) -> (usize, usize) {
        let start = self.pos;
        let mut depth = 0i32;
        while let Some(t) = self.bump() {
            if t.is(open) {
                depth += 1;
            } else if t.is(close) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
        (start, self.pos)
    }

    /// Skips a balanced generic parameter list `<…>`, tolerating `->` inside
    /// (e.g. `impl<F: Fn() -> usize>`): a `>` preceded by `-` is an arrow,
    /// not a closing bracket.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        let mut prev_dash = false;
        while let Some(t) = self.bump() {
            if t.is("<") {
                depth += 1;
            } else if t.is(">") && !prev_dash {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            prev_dash = t.is("-");
        }
    }

    /// Consumes the run of `#[…]` / `#![…]` attributes at the cursor and
    /// returns their *raw* line text (the masked view blanks string contents,
    /// so `feature = "…"` values are only visible in the raw lines).
    fn parse_attrs(&mut self) -> String {
        let mut raw = String::new();
        while self.peek_is("#") {
            let line_from = self.peek().map_or(0, |t| t.line);
            self.bump(); // '#'
            if self.peek_is("!") {
                self.bump();
            }
            if self.peek_is("[") {
                let _ = self.skip_balanced("[", "]");
            }
            let line_to = self
                .toks
                .get(self.pos.saturating_sub(1))
                .map_or(line_from, |t| t.line);
            for l in line_from..=line_to.min(self.file.lines.len().saturating_sub(1)) {
                raw.push_str(&self.file.lines[l]);
                raw.push('\n');
            }
        }
        raw
    }

    fn parse_vis(&mut self) -> Vis {
        if !self.peek_is("pub") {
            return Vis::Private;
        }
        self.bump();
        if self.peek_is("(") {
            let _ = self.skip_balanced("(", ")");
            Vis::Scoped
        } else {
            Vis::Pub
        }
    }

    /// Parses items until end of input or an unmatched `}` (the caller's
    /// closing brace, which is left unconsumed).
    fn parse_items(
        &mut self,
        module: &mut Vec<String>,
        self_ty: Option<&str>,
        in_trait_impl: bool,
        default_pub: bool,
    ) {
        loop {
            let Some(tok) = self.peek() else { return };
            if tok.is("}") {
                return;
            }
            let attrs = self.parse_attrs();
            let declared = self.parse_vis();
            let vis = if declared == Vis::Private && default_pub {
                Vis::Pub
            } else {
                declared
            };
            let Some(tok) = self.peek() else { return };
            let text = tok.text.clone();
            match text.as_str() {
                // `const fn` / `unsafe fn` / `async fn` / `extern "C" fn`
                // qualifiers: skip the qualifier and loop back around only
                // when a `fn` actually follows.
                "const" if self.peek_at(1).is_some_and(|t| !t.is("fn")) => {
                    self.parse_const_or_static(module, vis, &attrs, TypeKind::Const);
                }
                "static" => {
                    self.parse_const_or_static(module, vis, &attrs, TypeKind::Static);
                }
                "const" | "unsafe" | "async" | "extern" | "default" => {
                    self.bump();
                    // `extern "C"` — the quote delimiters survive masking.
                    while self.peek().is_some_and(|t| t.is("\"")) {
                        self.bump();
                    }
                    if self.peek_is("fn") {
                        self.parse_fn(module, self_ty, in_trait_impl, vis, &attrs);
                    }
                }
                "fn" => self.parse_fn(module, self_ty, in_trait_impl, vis, &attrs),
                "struct" => self.parse_struct(module, vis, &attrs),
                "enum" => self.parse_enum_or_trait(module, vis, &attrs, TypeKind::Enum),
                "trait" => self.parse_enum_or_trait(module, vis, &attrs, TypeKind::Trait),
                "union" => self.parse_enum_or_trait(module, vis, &attrs, TypeKind::Struct),
                "impl" => self.parse_impl(module),
                "mod" => self.parse_mod(module),
                "use" => self.parse_use(module, vis),
                "type" => self.parse_type_alias(module, vis, &attrs),
                "macro_rules" => {
                    self.bump();
                    if self.peek_is("!") {
                        self.bump();
                    }
                    self.bump(); // macro name
                    if self.peek_is("{") {
                        let _ = self.skip_balanced("{", "}");
                    }
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn parse_fn(
        &mut self,
        module: &[String],
        self_ty: Option<&str>,
        in_trait_impl: bool,
        vis: Vis,
        attrs: &str,
    ) {
        let fn_line = self.peek().map_or(0, |t| t.line);
        self.bump(); // `fn`
        let Some(name_tok) = self.bump() else { return };
        if !name_tok.is_ident {
            return;
        }
        // Signature: everything up to the body `{` or declaration `;` at
        // paren/bracket depth 0.
        let sig_start = self.pos;
        let mut depth = 0i32;
        let mut has_body = false;
        while let Some(t) = self.peek() {
            if t.is("(") || t.is("[") {
                depth += 1;
            } else if t.is(")") || t.is("]") {
                depth -= 1;
            } else if depth == 0 && t.is("{") {
                has_body = true;
                break;
            } else if depth == 0 && t.is(";") {
                break;
            }
            self.bump();
        }
        let signature = format!(
            "fn {} {}",
            name_tok.text,
            join(&self.toks[sig_start..self.pos])
        );
        let mut body = Vec::new();
        if has_body {
            let (from, to) = self.skip_balanced("{", "}");
            // Contents between the outer braces.
            body = self.toks[from + 1..to.saturating_sub(1)].to_vec();
        } else {
            self.bump(); // `;`
        }
        self.out.fns.push(FnItem {
            module: module.to_vec(),
            self_ty: self_ty.map(str::to_string),
            name: name_tok.text,
            vis,
            signature: signature.trim().to_string(),
            line: fn_line,
            is_test: self.file.in_test.get(fn_line).copied().unwrap_or(false),
            strict_invariants: attrs.contains("strict-invariants"),
            in_trait_impl,
            body,
        });
    }

    fn parse_struct(&mut self, module: &[String], vis: Vis, _attrs: &str) {
        let line = self.peek().map_or(0, |t| t.line);
        self.bump(); // `struct`
        let Some(name_tok) = self.bump() else { return };
        // Generics + where clause, up to the field list or `;`.
        let head_start = self.pos;
        while let Some(t) = self.peek() {
            if t.is("<") {
                self.skip_angles();
            } else if t.is("{") || t.is("(") || t.is(";") {
                break;
            } else {
                self.bump();
            }
        }
        let head = join(&self.toks[head_start..self.pos]);
        let fields = if self.peek_is("{") {
            let (from, to) = self.skip_balanced("{", "}");
            let inner = &self.toks[from + 1..to.saturating_sub(1)].to_vec();
            format!("{{ {} }}", pub_named_fields(inner))
        } else if self.peek_is("(") {
            let (from, to) = self.skip_balanced("(", ")");
            let inner = &self.toks[from + 1..to.saturating_sub(1)].to_vec();
            let f = pub_tuple_fields(inner);
            if self.peek_is(";") {
                self.bump();
            }
            format!("( {f} )")
        } else {
            if self.peek_is(";") {
                self.bump();
            }
            String::new()
        };
        let decl = format!("struct {} {head} {fields}", name_tok.text);
        self.out.types.push(TypeItem {
            module: module.to_vec(),
            kind: TypeKind::Struct,
            vis,
            decl: normalize_ws(&decl),
            is_test: self.file.in_test.get(line).copied().unwrap_or(false),
        });
    }

    /// Enums and traits: the whole body is captured verbatim — every enum
    /// variant is public API, and trait items are parsed separately below for
    /// the call graph.
    fn parse_enum_or_trait(&mut self, module: &[String], vis: Vis, _attrs: &str, kind: TypeKind) {
        let line = self.peek().map_or(0, |t| t.line);
        self.bump(); // keyword
        let Some(name_tok) = self.bump() else { return };
        let head_start = self.pos;
        while let Some(t) = self.peek() {
            if t.is("<") {
                self.skip_angles();
            } else if t.is("{") || t.is(";") {
                break;
            } else {
                self.bump();
            }
        }
        let head = join(&self.toks[head_start..self.pos]);
        let keyword = match kind {
            TypeKind::Enum => "enum",
            TypeKind::Trait => "trait",
            _ => "struct",
        };
        let mut decl = format!("{keyword} {} {head}", name_tok.text);
        if self.peek_is("{") {
            if kind == TypeKind::Trait {
                // Parse trait items as functions attached to the trait name.
                self.bump(); // `{`
                let trait_pub = vis == Vis::Pub;
                self.parse_trait_items(module, &name_tok.text, trait_pub);
                if self.peek_is("}") {
                    self.bump();
                }
            } else {
                let (from, to) = self.skip_balanced("{", "}");
                let inner = join(&self.toks[from + 1..to.saturating_sub(1)]);
                decl = format!("{decl} {{ {inner} }}");
            }
        } else if self.peek_is(";") {
            self.bump();
        }
        self.out.types.push(TypeItem {
            module: module.to_vec(),
            kind,
            vis,
            decl: normalize_ws(&decl),
            is_test: self.file.in_test.get(line).copied().unwrap_or(false),
        });
    }

    fn parse_trait_items(&mut self, module: &[String], trait_name: &str, trait_pub: bool) {
        let ty = trait_name.to_string();
        let mut inner_module = module.to_vec();
        self.parse_items(&mut inner_module, Some(&ty), false, trait_pub);
    }

    fn parse_impl(&mut self, module: &[String]) {
        self.bump(); // `impl`
        if self.peek_is("<") {
            self.skip_angles();
        }
        // Self-type (and optional `Trait for`) tokens up to the body brace.
        let head_start = self.pos;
        while let Some(t) = self.peek() {
            if t.is("<") {
                self.skip_angles();
            } else if t.is("{") {
                break;
            } else if t.is("(") || t.is("[") {
                let open = t.text.clone();
                let close = if open == "(" { ")" } else { "]" };
                let _ = self.skip_balanced(&open, close);
            } else {
                self.bump();
            }
        }
        let head: Vec<Token> = self.toks[head_start..self.pos].to_vec();
        let for_pos = head.iter().position(|t| t.is("for"));
        let in_trait_impl = for_pos.is_some();
        let ty_part = match for_pos {
            Some(i) => &head[i + 1..],
            None => &head[..],
        };
        let self_ty = last_path_ident(ty_part);
        if self.peek_is("{") {
            self.bump();
            let ty = self_ty.unwrap_or_default();
            let mut inner_module = module.to_vec();
            self.parse_items(
                &mut inner_module,
                if ty.is_empty() { None } else { Some(&ty) },
                in_trait_impl,
                false,
            );
            if self.peek_is("}") {
                self.bump();
            }
        }
    }

    fn parse_mod(&mut self, module: &mut Vec<String>) {
        self.bump(); // `mod`
        let Some(name_tok) = self.bump() else { return };
        if self.peek_is("{") {
            self.bump();
            module.push(name_tok.text);
            self.parse_items(module, None, false, false);
            module.pop();
            if self.peek_is("}") {
                self.bump();
            }
        } else if self.peek_is(";") {
            self.bump();
        }
    }

    fn parse_use(&mut self, module: &[String], vis: Vis) {
        let line = self.peek().map_or(0, |t| t.line);
        let start = self.pos;
        self.bump(); // `use`
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.is("{") {
                depth += 1;
            } else if t.is("}") {
                depth -= 1;
            } else if t.is(";") && depth == 0 {
                break;
            }
            self.bump();
        }
        let decl = join(&self.toks[start..self.pos]);
        self.bump(); // `;`
        if vis == Vis::Pub {
            self.out.types.push(TypeItem {
                module: module.to_vec(),
                kind: TypeKind::Reexport,
                vis,
                decl,
                is_test: self.file.in_test.get(line).copied().unwrap_or(false),
            });
        }
    }

    fn parse_const_or_static(&mut self, module: &[String], vis: Vis, _attrs: &str, kind: TypeKind) {
        let line = self.peek().map_or(0, |t| t.line);
        let keyword = self.bump().map(|t| t.text).unwrap_or_default();
        if self.peek_is("mut") {
            self.bump();
        }
        let Some(name_tok) = self.bump() else { return };
        // Type: between `:` and `=`/`;` at depth 0.
        let ty_start = self.pos;
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.is("(") || t.is("[") || t.is("{") {
                depth += 1;
            } else if t.is(")") || t.is("]") || t.is("}") {
                depth -= 1;
            } else if depth == 0 && (t.is("=") || t.is(";")) {
                break;
            }
            self.bump();
        }
        let ty = join(&self.toks[ty_start..self.pos]);
        // Skip the value to the terminating `;`.
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.is("(") || t.is("[") || t.is("{") {
                depth += 1;
            } else if t.is(")") || t.is("]") || t.is("}") {
                depth -= 1;
            } else if depth == 0 && t.is(";") {
                self.bump();
                break;
            }
            self.bump();
        }
        self.out.types.push(TypeItem {
            module: module.to_vec(),
            kind,
            vis,
            decl: normalize_ws(&format!("{keyword} {} {ty}", name_tok.text)),
            is_test: self.file.in_test.get(line).copied().unwrap_or(false),
        });
    }

    fn parse_type_alias(&mut self, module: &[String], vis: Vis, _attrs: &str) {
        let line = self.peek().map_or(0, |t| t.line);
        let start = self.pos;
        self.bump(); // `type`
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.is("(") || t.is("[") || t.is("{") {
                depth += 1;
            } else if t.is(")") || t.is("]") || t.is("}") {
                depth -= 1;
            } else if depth == 0 && t.is(";") {
                break;
            }
            self.bump();
        }
        let decl = join(&self.toks[start..self.pos]);
        self.bump(); // `;`
        self.out.types.push(TypeItem {
            module: module.to_vec(),
            kind: TypeKind::TypeAlias,
            vis,
            decl,
            is_test: self.file.in_test.get(line).copied().unwrap_or(false),
        });
    }
}

/// The final path-segment identifier of a type expression, generics and
/// references stripped: `std :: fmt :: Display` → `Display`,
/// `& mut Foo < T >` → `Foo`.
fn last_path_ident(toks: &[Token]) -> Option<String> {
    let cut = toks.iter().position(|t| t.is("<")).unwrap_or(toks.len());
    toks[..cut]
        .iter()
        .rev()
        .find(|t| t.is_ident && !t.is("dyn") && !t.is("mut"))
        .map(|t| t.text.clone())
}

/// Collapses whitespace runs to single spaces.
fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Extracts `pub name : Type` fields from a named-struct body token slice.
fn pub_named_fields(toks: &[Token]) -> String {
    let mut fields = Vec::new();
    let mut i = 0usize;
    let mut depth = 0i32;
    let mut field_start = 0usize;
    while i <= toks.len() {
        let at_end = i == toks.len();
        let is_sep = !at_end && toks[i].is(",") && depth == 0;
        if at_end || is_sep {
            let field = &toks[field_start..i];
            // Drop leading attributes `# [ … ]`.
            let mut j = 0usize;
            while j < field.len() && field[j].is("#") {
                j += 1;
                if j < field.len() && field[j].is("[") {
                    let mut d = 0i32;
                    while j < field.len() {
                        if field[j].is("[") {
                            d += 1;
                        } else if field[j].is("]") {
                            d -= 1;
                            if d == 0 {
                                j += 1;
                                break;
                            }
                        }
                        j += 1;
                    }
                }
            }
            let field = &field[j..];
            if field.first().is_some_and(|t| t.is("pub")) {
                fields.push(join(field));
            }
            field_start = i + 1;
            if at_end {
                break;
            }
        } else if toks[i].is("(") || toks[i].is("[") || toks[i].is("{") || toks[i].is("<") {
            depth += 1;
        } else if toks[i].is(")")
            || toks[i].is("]")
            || toks[i].is("}")
            || (toks[i].is(">") && i > 0 && !toks[i - 1].is("-"))
        {
            depth -= 1;
        }
        i += 1;
    }
    fields.join(" , ")
}

/// Extracts the `pub` positional fields of a tuple struct.
fn pub_tuple_fields(toks: &[Token]) -> String {
    // Same splitting logic; a tuple field is `pub Type` or `Type`.
    pub_named_fields(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&SourceFile::parse("t.rs", src))
    }

    #[test]
    fn free_and_method_functions_are_found() {
        let src = "pub fn free(a: u32) -> u32 { a }\n\
                   struct S;\n\
                   impl S {\n    pub fn method(&self) {}\n    fn private(&self) {}\n}\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 3);
        assert_eq!(p.fns[0].key(), "free");
        assert_eq!(p.fns[0].vis, Vis::Pub);
        assert_eq!(p.fns[1].key(), "S::method");
        assert_eq!(p.fns[2].vis, Vis::Private);
        assert!(p.fns[0].signature.contains("fn free"));
    }

    #[test]
    fn trait_impls_are_flagged() {
        let src = "impl std::fmt::Display for Finding {\n\
                       fn fmt(&self) -> u8 { 0 }\n\
                   }\n\
                   impl Finding {\n    pub fn own(&self) {}\n}\n";
        let p = parse(src);
        assert_eq!(p.fns[0].key(), "Finding::fmt");
        assert!(p.fns[0].in_trait_impl);
        assert!(!p.fns[1].in_trait_impl);
    }

    #[test]
    fn cfg_test_and_feature_gates_are_detected() {
        let src = "#[cfg(feature = \"strict-invariants\")]\n\
                   pub fn check(&self) {}\n\
                   #[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let p = parse(src);
        assert!(p.fns[0].strict_invariants);
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
        assert_eq!(p.fns[1].module, vec!["tests".to_string()]);
    }

    #[test]
    fn struct_decl_keeps_only_pub_fields() {
        let src = "pub struct Mixed {\n    pub shown: u32,\n    hidden: Vec<u8>,\n}\n";
        let p = parse(src);
        assert_eq!(p.types.len(), 1);
        assert!(p.types[0].decl.contains("pub shown : u32"));
        assert!(!p.types[0].decl.contains("hidden"));
    }

    #[test]
    fn enum_variants_are_all_captured() {
        let src = "pub enum E {\n    A,\n    B(u32),\n    C { x: f64 },\n}\n";
        let p = parse(src);
        let d = &p.types[0].decl;
        assert!(
            d.contains('A') && d.contains("B ( u32 )") && d.contains('C'),
            "{d}"
        );
    }

    #[test]
    fn consts_uses_and_aliases_are_captured() {
        let src = "pub const MAX: usize = 64;\n\
                   pub use crate::tree::CountingTree;\n\
                   pub type CellId = u32;\n\
                   use std::fmt;\n";
        let p = parse(src);
        let kinds: Vec<TypeKind> = p.types.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![TypeKind::Const, TypeKind::Reexport, TypeKind::TypeAlias]
        );
        assert!(p.types[0].decl.contains("const MAX : usize"));
    }

    #[test]
    fn bodies_are_token_slices() {
        let src = "fn f() { let v = vec![1]; v.len() }\n";
        let p = parse(src);
        let texts: Vec<&str> = p.fns[0].body.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"len"));
        assert!(texts.contains(&"vec"));
    }

    #[test]
    fn generic_functions_parse_past_arrows_in_bounds() {
        let src = "pub fn apply<F: Fn(u32) -> u32>(f: F) -> u32 { f(1) }\n\
                   pub fn after() {}\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[1].name, "after");
    }

    #[test]
    fn nested_modules_build_paths() {
        let src = "pub mod outer {\n    pub mod inner {\n        pub fn deep() {}\n    }\n}\n";
        let p = parse(src);
        assert_eq!(
            p.fns[0].module,
            vec!["outer".to_string(), "inner".to_string()]
        );
    }

    #[test]
    fn masked_strings_do_not_confuse_items() {
        let src = "fn f() -> &'static str { \"pub fn fake() {}\" }\npub fn real() {}\n";
        let p = parse(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["f", "real"]);
    }
}
