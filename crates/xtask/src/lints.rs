//! The repo-specific source lints.
//!
//! Four lints, each keyed by a slug that also names its
//! `// xtask-allow: <slug>` suppression annotation:
//!
//! | slug             | rule                                                       |
//! |------------------|------------------------------------------------------------|
//! | `no-unwrap`      | no `.unwrap()`; `.expect("…")` only with an *invariant*    |
//! |                  | message, in non-test library code of the four core crates  |
//! | `float-eq`       | no raw `==`/`!=` against float operands outside the        |
//! |                  | approved epsilon-helper files                              |
//! | `as-cast`        | no bare `as` numeric casts in `counting-tree`/`stats`      |
//! |                  | library code — use `try_from`/the `mrcc_common::num`       |
//! |                  | helpers                                                    |
//! | `safety-comment` | every `unsafe` keyword needs a `// SAFETY:` comment on or  |
//! |                  | just above it                                              |
//!
//! All lints run on the masked views built by [`crate::source`], so string
//! and comment contents can never trigger them.

use crate::source::SourceFile;

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File path as reported.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Lint slug (also the allow-annotation key).
    pub slug: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.slug, self.message
        )
    }
}

/// Renders findings as a JSON array of `{file, line, lint, message}` records
/// (hand-rolled: xtask stays dependency-free, and the vendored `serde_json`
/// shim is a workspace library, not available to this binary-only crate).
pub fn to_json(findings: &[Finding]) -> String {
    let records: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "{{\"file\":{},\"line\":{},\"lint\":{},\"message\":{}}}",
                json_string(&f.path),
                f.line,
                json_string(f.slug),
                json_string(&f.message)
            )
        })
        .collect();
    if records.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n  {}\n]", records.join(",\n  "))
    }
}

/// Escapes and quotes a JSON string value.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders one finding as a GitHub Actions workflow annotation
/// (`::error file=…,line=…::…`), which the Actions runner turns into an
/// inline PR comment.
pub fn github_annotation(f: &Finding) -> String {
    // Property values escape `%`, `\r`, `\n`, `:` and `,`; the message
    // escapes `%`, `\r`, `\n` (GitHub's documented command syntax).
    let prop = |s: &str| {
        s.replace('%', "%25")
            .replace('\r', "%0D")
            .replace('\n', "%0A")
            .replace(':', "%3A")
            .replace(',', "%2C")
    };
    let msg = f
        .message
        .replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A");
    format!(
        "::error file={},line={},title={}::{msg}",
        prop(&f.path),
        f.line.max(1),
        prop(f.slug)
    )
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Records `finding` unless suppressed by an `xtask-allow` annotation.
fn push_unless_allowed(
    file: &SourceFile,
    line_idx: usize,
    slug: &'static str,
    message: String,
    out: &mut Vec<Finding>,
) {
    if !file.allows(line_idx, slug) {
        out.push(Finding {
            path: file.path.clone(),
            line: line_idx + 1,
            slug,
            message,
        });
    }
}

/// `no-unwrap`: forbids `.unwrap()` and undocumented `.expect(...)` in
/// non-test library code.
///
/// `.expect` is the escape hatch for conditions the surrounding code has
/// made impossible — the message must say so by containing the word
/// `invariant` (e.g. `.expect("resolutions validated: H >= 3 invariant")`).
pub fn no_unwrap(file: &SourceFile, out: &mut Vec<Finding>) {
    for (idx, code) in file.code.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        for (col, _) in code.match_indices(".unwrap") {
            let rest = &code[col + ".unwrap".len()..];
            // `.unwrap_or(...)` etc. continue with an identifier char.
            if rest.chars().next().is_some_and(is_ident_char) {
                continue;
            }
            push_unless_allowed(
                file,
                idx,
                "no-unwrap",
                "`.unwrap()` in library code; propagate a Result or use \
                 `.expect(\"... invariant ...\")` stating why this cannot fail"
                    .to_string(),
                out,
            );
        }
        for (col, _) in code.match_indices(".expect") {
            let rest = &code[col + ".expect".len()..];
            if rest.chars().next().is_some_and(is_ident_char) {
                continue;
            }
            // The masked view blanks string contents, so read the expect
            // message from the raw line (multi-line messages: scan ahead).
            let window_end = (idx + 3).min(file.lines.len());
            let raw_window = file.lines[idx..window_end].join(" ");
            if !raw_window.contains("invariant") {
                push_unless_allowed(
                    file,
                    idx,
                    "no-unwrap",
                    "`.expect()` message must state the invariant that makes \
                     this infallible (include the word \"invariant\")"
                        .to_string(),
                    out,
                );
            }
        }
    }
}

/// `true` when `operand` textually contains a float literal or a float
/// constant path (`f64::NAN`, `EPSILON`, …).
fn looks_float(operand: &str) -> bool {
    if operand.contains("f64::") || operand.contains("f32::") {
        return true;
    }
    let chars: Vec<char> = operand.chars().collect();
    for i in 0..chars.len() {
        if !chars[i].is_ascii_digit() {
            continue;
        }
        // A digit preceded by an identifier char or `.` is part of a larger
        // token (`x2`, `v.0` tuple access) — not a literal start.
        if i > 0 && (is_ident_char(chars[i - 1]) || chars[i - 1] == '.') {
            continue;
        }
        // Walk the number.
        let mut j = i;
        while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
            j += 1;
        }
        // `1.5`, `1.` — but not `1..3` (range) or `1.method()`.
        if j < chars.len() && chars[j] == '.' {
            let after = chars.get(j + 1);
            if after != Some(&'.') && !after.is_some_and(char::is_ascii_alphabetic) {
                return true;
            }
        }
        // `1e9`, `2.5e-3` handled above; `1f64` / `1f32` suffix form.
        let rest: String = chars[j..].iter().collect();
        if rest.starts_with("f64") || rest.starts_with("f32") {
            return true;
        }
        if chars.get(j) == Some(&'e')
            && chars
                .get(j + 1)
                .is_some_and(|c| c.is_ascii_digit() || *c == '-' || *c == '+')
        {
            return true;
        }
    }
    false
}

/// Extracts the textual operands on both sides of the operator at `pos`.
fn operands_around(code: &str, pos: usize, op_len: usize) -> (String, String) {
    let stop = |c: char| {
        matches!(
            c,
            '(' | ')' | ',' | ';' | '{' | '}' | '[' | ']' | '&' | '|' | '<' | '>' | '='
        )
    };
    let left: String = code[..pos]
        .chars()
        .rev()
        .take_while(|&c| !stop(c))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    let right: String = code[pos + op_len..]
        .chars()
        .take_while(|&c| !stop(c))
        .collect();
    (left, right)
}

/// `float-eq`: forbids raw `==` / `!=` where either operand is textually a
/// float (literal or `f64::`/`f32::` constant).
///
/// Type-driven cases (`x == y` with both sides `f64` variables) are out of
/// reach for a source-level lint and are left to review; the lint's job is
/// the common case of comparing against a float constant. Comparisons in
/// test code and in the approved epsilon-helper files are exempt.
pub fn float_eq(file: &SourceFile, out: &mut Vec<Finding>) {
    for (idx, code) in file.code.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        let bytes: Vec<char> = code.chars().collect();
        let mut search = 0usize;
        while let Some(rel) = code[search..].find(['=', '!']) {
            let pos = search + rel;
            search = pos + 1;
            let two: String = bytes.iter().skip(pos).take(2).collect();
            if two != "==" && two != "!=" {
                continue;
            }
            // Exclude `<=`, `>=`, `=>`, `===`-like runs and `!=` tails.
            if pos > 0 && matches!(bytes[pos - 1], '=' | '!' | '<' | '>') {
                continue;
            }
            if bytes.get(pos + 2) == Some(&'=') {
                continue;
            }
            search = pos + 2;
            let (left, right) = operands_around(code, pos, 2);
            if looks_float(&left) || looks_float(&right) {
                push_unless_allowed(
                    file,
                    idx,
                    "float-eq",
                    format!(
                        "raw float {two} comparison (`{}{two}{}`); compare \
                         with an epsilon helper or justify with an allow",
                        left.trim(),
                        right.trim()
                    ),
                    out,
                );
            }
        }
    }
}

const NUMERIC_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// `as-cast`: forbids bare `as <numeric type>` casts in library code of the
/// counting-tree and stats crates (the exact-arithmetic hot paths).
///
/// Use `From`/`TryFrom` or the documented helpers in `mrcc_common::num`;
/// genuinely intentional lossy casts carry an `// xtask-allow: as-cast`
/// annotation next to the justification.
pub fn as_cast(file: &SourceFile, out: &mut Vec<Finding>) {
    for (idx, code) in file.code.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        for (col, _) in code.match_indices(" as ") {
            // Confirm `as` is a standalone word (not part of an ident —
            // guaranteed by the spaces) and the target is a numeric type.
            let target = code[col + 4..]
                .trim_start()
                .chars()
                .take_while(|&c| is_ident_char(c))
                .collect::<String>();
            if NUMERIC_TYPES.contains(&target.as_str()) {
                push_unless_allowed(
                    file,
                    idx,
                    "as-cast",
                    format!(
                        "bare `as {target}` cast in a counting/stats hot path; \
                         use From/TryFrom or an `mrcc_common::num` helper"
                    ),
                    out,
                );
            }
        }
    }
}

/// `safety-comment`: every `unsafe` keyword (block, fn, impl or trait) must
/// carry a `// SAFETY:` comment on its own line or within the three lines
/// above it.
pub fn safety_comment(file: &SourceFile, out: &mut Vec<Finding>) {
    for (idx, code) in file.code.iter().enumerate() {
        let mut from = 0usize;
        while let Some(rel) = code[from..].find("unsafe") {
            let col = from + rel;
            from = col + "unsafe".len();
            let before_ok =
                col == 0 || !is_ident_char(code[..col].chars().next_back().unwrap_or(' '));
            let after_ok = !code[col + "unsafe".len()..]
                .chars()
                .next()
                .is_some_and(is_ident_char);
            if !(before_ok && after_ok) {
                continue;
            }
            let lo = idx.saturating_sub(3);
            let documented = file.comments[lo..=idx]
                .iter()
                .any(|c| c.contains("SAFETY:"));
            if !documented {
                push_unless_allowed(
                    file,
                    idx,
                    "safety-comment",
                    "`unsafe` without a `// SAFETY:` comment on or above it".to_string(),
                    out,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(lint: fn(&SourceFile, &mut Vec<Finding>), src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("fixture.rs", src);
        let mut out = Vec::new();
        lint(&file, &mut out);
        out
    }

    #[test]
    fn json_output_escapes_and_shapes_records() {
        assert_eq!(to_json(&[]), "[]");
        let findings = vec![Finding {
            path: "crates/core/src/lib.rs".to_string(),
            line: 7,
            slug: "no-unwrap",
            message: "uses `.unwrap()` with \"quotes\"\nand a newline".to_string(),
        }];
        let json = to_json(&findings);
        assert!(
            json.contains("\"file\":\"crates/core/src/lib.rs\""),
            "{json}"
        );
        assert!(json.contains("\"line\":7"), "{json}");
        assert!(json.contains("\\\"quotes\\\"\\nand"), "{json}");
    }

    #[test]
    fn github_annotations_escape_command_syntax() {
        let f = Finding {
            path: "a,b.rs".to_string(),
            line: 0,
            slug: "float-eq",
            message: "50% bad\nsecond line".to_string(),
        };
        let a = github_annotation(&f);
        assert_eq!(
            a,
            "::error file=a%2Cb.rs,line=1,title=float-eq::50%25 bad%0Asecond line"
        );
    }

    #[test]
    fn no_unwrap_fires_on_unwrap() {
        let bad = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let findings = run(no_unwrap, bad);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].slug, "no-unwrap");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn no_unwrap_spares_unwrap_or_variants_and_tests() {
        let good = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n\
                    fn g(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 1) }\n\
                    fn h(x: Option<u32>) -> u32 { x.unwrap_or_default() }\n\
                    #[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert!(run(no_unwrap, good).is_empty());
    }

    #[test]
    fn no_unwrap_polices_expect_messages() {
        let bad = "fn f(x: Option<u32>) -> u32 { x.expect(\"value\") }\n";
        assert_eq!(run(no_unwrap, bad).len(), 1);
        let good =
            "fn f(x: Option<u32>) -> u32 { x.expect(\"validated above: len > 0 invariant\") }\n";
        assert!(run(no_unwrap, good).is_empty());
    }

    #[test]
    fn no_unwrap_respects_allow() {
        let allowed = "// xtask-allow: no-unwrap\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(run(no_unwrap, allowed).is_empty());
    }

    #[test]
    fn no_unwrap_ignores_strings_and_comments() {
        let good =
            "// this mentions .unwrap() in prose\nfn f() -> &'static str { \".unwrap()\" }\n";
        assert!(run(no_unwrap, good).is_empty());
    }

    #[test]
    fn float_eq_fires_on_float_literal_comparison() {
        let bad = "fn f(x: f64) -> bool { x == 0.0 }\n";
        let findings = run(float_eq, bad);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].slug, "float-eq");
        let bad2 = "fn f(x: f64) -> bool { x != 1e-9 }\n";
        assert_eq!(run(float_eq, bad2).len(), 1);
        let bad3 = "fn f(x: f64) -> bool { f64::NAN == x }\n";
        assert_eq!(run(float_eq, bad3).len(), 1);
    }

    #[test]
    fn float_eq_spares_integers_ranges_and_ordering() {
        let good = "fn f(x: usize) -> bool { x == 0 }\n\
                    fn g(x: f64) -> bool { x <= 1.0 && x >= 0.0 }\n\
                    fn r() -> std::ops::Range<usize> { 1..3 }\n\
                    fn m(v: &[f64]) -> bool { v.len() != 2 }\n";
        assert!(run(float_eq, good).is_empty());
    }

    #[test]
    fn float_eq_respects_allow_and_tests() {
        let allowed = "fn f(x: f64) -> bool { x == 0.5 } // xtask-allow: float-eq\n\
             #[cfg(test)]\nmod tests {\n    fn t(x: f64) -> bool { x == 0.5 }\n}\n";
        assert!(run(float_eq, allowed).is_empty());
    }

    #[test]
    fn as_cast_fires_on_numeric_casts_only() {
        let bad = "fn f(x: usize) -> u64 { x as u64 }\n";
        let findings = run(as_cast, bad);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].slug, "as-cast");
        let good = "fn f(x: &dyn std::any::Any) { let _ = x as &dyn std::any::Any; }\n\
                    fn g(b: Box<dyn std::error::Error>) { let _ = b as Box<dyn std::error::Error>; }\n";
        assert!(run(as_cast, good).is_empty());
    }

    #[test]
    fn as_cast_respects_allow_and_tests() {
        let src = "// xtask-allow: as-cast — bounded by grid extent\n\
                   fn f(x: f64) -> usize { x as usize }\n\
                   #[cfg(test)]\nmod tests {\n    fn t(x: usize) -> u64 { x as u64 }\n}\n";
        assert!(run(as_cast, src).is_empty());
    }

    #[test]
    fn safety_comment_required_for_unsafe() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let findings = run(safety_comment, bad);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].slug, "safety-comment");
        let good = "// SAFETY: caller guarantees p is valid and aligned.\n\
                    fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert!(run(safety_comment, good).is_empty());
    }

    #[test]
    fn safety_comment_ignores_unsafe_in_prose() {
        let good = "// this code is not unsafe at all\nfn f() {}\n";
        assert!(run(safety_comment, good).is_empty());
    }
}
