//! Source-file model for the lint driver.
//!
//! Lints never see raw file text directly. Each file is pre-processed into a
//! [`SourceFile`]: a *masked* view where string/char-literal contents and
//! comments are replaced by spaces (so token scans cannot false-positive on
//! text inside literals), a parallel *comments* view holding only comment
//! text (for `// SAFETY:` and `xtask-allow` detection), and a per-line flag
//! marking `#[cfg(test)]` regions (most lints only police non-test code).
//!
//! The masking pass is a hand-rolled scanner covering the token forms this
//! repository actually uses: line/block comments (nested), string literals
//! with escapes, raw strings `r#".."#`, byte strings, char literals and
//! lifetimes. It intentionally does not parse Rust — it only needs to be
//! right about *where code is*.

/// One analyzed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path as shown in findings.
    pub path: String,
    /// Original text, split into lines.
    pub lines: Vec<String>,
    /// Code with comments and literal *contents* blanked to spaces
    /// (delimiters like `"` are preserved), one entry per line.
    pub code: Vec<String>,
    /// Comment text only (everything else blanked), one entry per line.
    pub comments: Vec<String>,
    /// `true` for lines inside a `#[cfg(test)]`-gated item.
    pub in_test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u8),
    ByteStr,
    Char,
}

impl SourceFile {
    /// Analyzes `text` (typically read from `path`).
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let (code_text, comment_text) = mask(text);
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        let code: Vec<String> = code_text.lines().map(str::to_string).collect();
        let comments: Vec<String> = comment_text.lines().map(str::to_string).collect();
        let in_test = test_regions(&code);
        SourceFile {
            path: path.to_string(),
            lines,
            code,
            comments,
            in_test,
        }
    }

    /// `true` when a finding of `slug` at `line` (0-based) is suppressed by
    /// an `// xtask-allow: slug` annotation on the same line, or on the
    /// previous line when that line is a standalone comment (a trailing
    /// annotation only covers its own line).
    pub fn allows(&self, line: usize, slug: &str) -> bool {
        let annotated = |idx: usize| -> bool {
            self.comments.get(idx).is_some_and(|c| {
                c.split("xtask-allow:")
                    .skip(1)
                    .any(|rest| rest.split(&[',', ' '][..]).any(|w| w.trim() == slug))
            })
        };
        let comment_only =
            |idx: usize| -> bool { self.code.get(idx).is_some_and(|c| c.trim().is_empty()) };
        annotated(line) || (line > 0 && comment_only(line - 1) && annotated(line - 1))
    }
}

/// Splits `text` into (code-only, comments-only) views of identical shape.
#[allow(clippy::too_many_lines)]
fn mask(text: &str) -> (String, String) {
    let bytes: Vec<char> = text.chars().collect();
    let mut code = String::with_capacity(text.len());
    let mut comments = String::with_capacity(text.len());
    let mut state = State::Normal;
    let mut i = 0usize;

    // Pushes to one stream and a blank to the other; newlines go to both so
    // the line structure stays aligned.
    let push = |code: &mut String, comments: &mut String, c: char, is_code: bool| {
        if c == '\n' {
            code.push('\n');
            comments.push('\n');
        } else if is_code {
            code.push(c);
            comments.push(' ');
        } else {
            code.push(' ');
            comments.push(c);
        }
    };

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Normal => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    push(&mut code, &mut comments, c, false);
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    push(&mut code, &mut comments, c, false);
                }
                '"' => {
                    state = State::Str;
                    push(&mut code, &mut comments, c, true);
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string: r"..." or r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0u8;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        for &opener in bytes.iter().take(j + 1).skip(i) {
                            push(&mut code, &mut comments, opener, true);
                        }
                        i = j;
                        state = State::RawStr(hashes);
                    } else {
                        push(&mut code, &mut comments, c, true);
                    }
                }
                'b' if next == Some('"') => {
                    push(&mut code, &mut comments, c, true);
                    push(&mut code, &mut comments, '"', true);
                    i += 1;
                    state = State::ByteStr;
                }
                '\'' => {
                    // Distinguish char literal from lifetime: a lifetime is
                    // `'ident` NOT followed by a closing quote.
                    let is_lifetime = next.is_some_and(|n| n.is_alphanumeric() || n == '_')
                        && bytes.get(i + 2) != Some(&'\'');
                    push(&mut code, &mut comments, c, true);
                    if !is_lifetime {
                        state = State::Char;
                    }
                }
                _ => push(&mut code, &mut comments, c, true),
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Normal;
                }
                push(&mut code, &mut comments, c, false);
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    push(&mut code, &mut comments, c, false);
                    push(&mut code, &mut comments, '/', false);
                    i += 1;
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                } else if c == '/' && next == Some('*') {
                    push(&mut code, &mut comments, c, false);
                    push(&mut code, &mut comments, '*', false);
                    i += 1;
                    state = State::BlockComment(depth + 1);
                } else {
                    push(&mut code, &mut comments, c, false);
                }
            }
            State::Str | State::ByteStr => {
                if c == '\\' {
                    // Skip the escaped character entirely.
                    push(&mut code, &mut comments, ' ', true);
                    if let Some(n) = next {
                        push(
                            &mut code,
                            &mut comments,
                            if n == '\n' { '\n' } else { ' ' },
                            true,
                        );
                        i += 1;
                    }
                } else if c == '"' {
                    push(&mut code, &mut comments, c, true);
                    state = State::Normal;
                } else {
                    push(
                        &mut code,
                        &mut comments,
                        if c == '\n' { '\n' } else { ' ' },
                        true,
                    );
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if bytes.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        push(&mut code, &mut comments, c, true);
                        for _ in 0..hashes {
                            push(&mut code, &mut comments, '#', true);
                            i += 1;
                        }
                        state = State::Normal;
                    } else {
                        push(&mut code, &mut comments, ' ', true);
                    }
                } else {
                    push(
                        &mut code,
                        &mut comments,
                        if c == '\n' { '\n' } else { ' ' },
                        true,
                    );
                }
            }
            State::Char => {
                if c == '\\' {
                    push(&mut code, &mut comments, ' ', true);
                    if next.is_some() {
                        push(&mut code, &mut comments, ' ', true);
                        i += 1;
                    }
                } else if c == '\'' {
                    push(&mut code, &mut comments, c, true);
                    state = State::Normal;
                } else {
                    push(&mut code, &mut comments, ' ', true);
                }
            }
        }
        i += 1;
    }
    (code, comments)
}

/// Marks every line covered by a `#[cfg(test)]`-gated item (attribute line
/// through the matching closing brace).
fn test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut line = 0usize;
    while line < code.len() {
        if code[line].contains("#[cfg(test)]") {
            // Find the opening brace of the gated item, then match braces.
            let mut depth = 0i32;
            let mut opened = false;
            let start = line;
            let mut end = line;
            'scan: for (offset, text) in code[start..].iter().enumerate() {
                for c in text.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth -= 1;
                            if opened && depth == 0 {
                                end = start + offset;
                                break 'scan;
                            }
                        }
                        ';' if !opened && depth == 0 => {
                            // `#[cfg(test)] mod tests;` — out-of-line module.
                            end = start + offset;
                            break 'scan;
                        }
                        _ => {}
                    }
                }
                end = start + offset;
            }
            for flag in &mut in_test[start..=end] {
                *flag = true;
            }
            line = end + 1;
        } else {
            line += 1;
        }
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_strings_and_comments() {
        let src = "let x = \"a == b\"; // trailing == note\nlet y = 1;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.code[0].contains("=="), "{}", f.code[0]);
        assert!(f.comments[0].contains("trailing == note"));
        assert_eq!(f.code[1], "let y = 1;");
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let src = "let s = r#\"as u64\"#;\nlet c = '\"';\nlet l: &'static str = \"x\";\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.code[0].contains("as u64"));
        assert!(!f.code[1].contains('"') || f.code[1].matches('"').count() == 0);
        assert!(f.code[2].contains("'static"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ let z = 3;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.code[0].contains("let z = 3;"));
        assert!(!f.code[0].contains("outer"));
    }

    #[test]
    fn cfg_test_regions_are_flagged() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn lib2() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.in_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn allow_annotations_match_same_and_previous_line() {
        let src = "// xtask-allow: no-unwrap\nlet a = x.unwrap();\nlet b = y.unwrap(); // xtask-allow: no-unwrap, float-eq\nlet c = z.unwrap();\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.allows(1, "no-unwrap"));
        assert!(f.allows(2, "no-unwrap"));
        assert!(f.allows(2, "float-eq"));
        assert!(!f.allows(3, "no-unwrap"));
        assert!(!f.allows(1, "float-eq"));
    }
}
