//! Property-based invariants shared by every baseline: whatever the input,
//! the output must be a valid disjoint clustering of the right shape, and
//! fitting must be deterministic.

use mrcc_baselines::{
    Clique, Doc, DocConfig, Epch, EpchConfig, Harp, HarpConfig, Lac, LacConfig, P3c, Proclus,
    ProclusConfig, SubspaceClusterer,
};
use mrcc_common::NOISE;
use mrcc_datagen::{generate, SyntheticSpec};
use proptest::prelude::*;

fn methods(k: usize, noise: f64, dims: usize) -> Vec<Box<dyn SubspaceClusterer>> {
    vec![
        Box::new(Clique::default()),
        Box::new(Doc::new(DocConfig::new(k))),
        Box::new(Epch::new(EpchConfig::new(k))),
        Box::new(Harp::new(HarpConfig::new(k, noise))),
        Box::new(Lac::new(LacConfig::new(k))),
        Box::new(P3c::default()),
        Box::new(Proclus::new(ProclusConfig::new(k, 2.min(dims)))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every method returns a partition with in-range labels and masks of
    /// the right dimensionality, and is deterministic.
    #[test]
    fn all_methods_emit_valid_partitions(
        dims in 3usize..=8,
        k in 1usize..=3,
        seed in 0u64..100,
    ) {
        let spec = SyntheticSpec::new("bl-prop", dims, 1_200, k, 0.15, seed);
        let synth = generate(&spec);
        for method in methods(k, 0.15, dims) {
            let a = method.fit(&synth.dataset).unwrap();
            prop_assert_eq!(a.n_points(), synth.dataset.len(), "{}", method.name());
            prop_assert_eq!(a.dims(), dims);
            let labels = a.labels();
            let kk = a.len() as i32;
            for &l in &labels {
                prop_assert!(l == NOISE || (0..kk).contains(&l), "{}", method.name());
            }
            for cluster in a.clusters() {
                prop_assert!(!cluster.is_empty());
                prop_assert_eq!(cluster.axes.dims(), dims);
            }
            let b = method.fit(&synth.dataset).unwrap();
            prop_assert_eq!(a.labels(), b.labels(), "{} not deterministic", method.name());
        }
    }
}
