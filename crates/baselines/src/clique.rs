//! CLIQUE — automatic subspace clustering (Agrawal et al., SIGMOD 1998).
//!
//! The canonical bottom-up method: partition every axis into `ξ` equal
//! intervals, call a grid unit *dense* when it holds at least a `τ` fraction
//! of the points, and grow dense units Apriori-style — a unit in a
//! `q`-dimensional subspace can only be dense if all its `(q−1)`-dimensional
//! projections are. Clusters are connected components of dense units inside
//! each maximal dense subspace.
//!
//! CLIQUE's clusters may overlap across subspaces; the shared output type
//! requires a partition, so points are assigned greedily to the cluster of
//! the highest-dimensional subspace (ties: larger cluster) that contains
//! them. The exponential growth in subspace dimensionality the MrCC paper
//! criticizes is bounded here by `max_subspace_dim`.

use std::collections::{HashMap, HashSet};

use mrcc_common::{AxisMask, Dataset, Error, Result, SubspaceCluster, SubspaceClustering};

use crate::SubspaceClusterer;

/// Configuration for [`Clique`].
#[derive(Debug, Clone, PartialEq)]
pub struct CliqueConfig {
    /// Intervals per axis `ξ`.
    pub xi: usize,
    /// Density threshold `τ`: a unit is dense when it holds `≥ τ·η` points.
    pub tau: f64,
    /// Cap on the dimensionality of explored subspaces (tractability guard
    /// for the Apriori lattice).
    pub max_subspace_dim: usize,
}

impl Default for CliqueConfig {
    fn default() -> Self {
        CliqueConfig {
            // A uniform axis puts 1/ξ of the mass in every bin; τ must sit
            // above that or every 1-d unit is "dense" (the fixed-threshold
            // weakness the MrCC paper criticizes).
            xi: 20,
            tau: 0.08,
            max_subspace_dim: 4,
        }
    }
}

/// The CLIQUE method.
#[derive(Debug, Clone, Default)]
pub struct Clique {
    config: CliqueConfig,
}

impl Clique {
    /// Creates the method.
    pub fn new(config: CliqueConfig) -> Self {
        Clique { config }
    }
}

/// Dense units of one subspace: unit key (bin per subspace dim) → count.
type Units = HashMap<Vec<u32>, usize>;

/// Counts dense units of `subspace` in one pass over the points.
fn dense_units(ds: &Dataset, subspace: &[usize], xi: usize, min_count: usize) -> Units {
    let mut counts: Units = HashMap::new();
    let mut key = vec![0u32; subspace.len()];
    for p in ds.iter() {
        for (slot, &j) in key.iter_mut().zip(subspace) {
            *slot = ((p[j] * xi as f64) as usize).min(xi - 1) as u32;
        }
        *counts.entry(key.clone()).or_insert(0) += 1;
    }
    counts.retain(|_, &mut c| c >= min_count);
    counts
}

/// Connected components of dense units (adjacent = differ by one in exactly
/// one coordinate).
fn components(units: &Units) -> Vec<Vec<Vec<u32>>> {
    // Sorted traversal: HashMap iteration order is randomized per instance,
    // and cluster ids must be deterministic.
    let mut keys: Vec<&Vec<u32>> = units.keys().collect();
    keys.sort();
    let index: HashMap<&Vec<u32>, usize> = keys.iter().enumerate().map(|(i, &k)| (k, i)).collect();
    let mut seen = vec![false; keys.len()];
    let mut comps = Vec::new();
    for start in 0..keys.len() {
        if seen[start] {
            continue;
        }
        let mut stack = vec![start];
        seen[start] = true;
        let mut comp = Vec::new();
        while let Some(u) = stack.pop() {
            comp.push(keys[u].clone());
            let base = keys[u];
            for dim in 0..base.len() {
                for delta in [-1i64, 1] {
                    let nb = base[dim] as i64 + delta;
                    if nb < 0 {
                        continue;
                    }
                    let mut neighbor = base.clone();
                    neighbor[dim] = nb as u32;
                    if let Some(&ni) = index.get(&neighbor) {
                        if !seen[ni] {
                            seen[ni] = true;
                            stack.push(ni);
                        }
                    }
                }
            }
        }
        comps.push(comp);
    }
    comps
}

impl SubspaceClusterer for Clique {
    fn name(&self) -> &'static str {
        "CLIQUE"
    }

    fn fit(&self, ds: &Dataset) -> Result<SubspaceClustering> {
        if ds.is_empty() {
            return Err(Error::EmptyDataset);
        }
        let cfg = &self.config;
        if cfg.xi < 2 {
            return Err(Error::InvalidParameter {
                name: "xi",
                message: format!("need at least 2 intervals, got {}", cfg.xi),
            });
        }
        if !(cfg.tau > 0.0 && cfg.tau < 1.0) {
            return Err(Error::InvalidParameter {
                name: "tau",
                message: format!("tau must be in (0,1), got {}", cfg.tau),
            });
        }
        let (n, d) = (ds.len(), ds.dims());
        let min_count = ((cfg.tau * n as f64).ceil() as usize).max(2);

        // Level 1: dense units per single axis.
        let mut dense: HashMap<Vec<usize>, Units> = HashMap::new();
        for j in 0..d {
            let units = dense_units(ds, &[j], cfg.xi, min_count);
            if !units.is_empty() {
                dense.insert(vec![j], units);
            }
        }

        // Apriori growth.
        let mut frontier: Vec<Vec<usize>> = dense.keys().cloned().collect();
        frontier.sort();
        let mut level = 1usize;
        while !frontier.is_empty() && level < cfg.max_subspace_dim.min(d) {
            level += 1;
            let mut next: Vec<Vec<usize>> = Vec::new();
            let frontier_set: HashSet<&Vec<usize>> = frontier.iter().collect();
            for a in 0..frontier.len() {
                for b in (a + 1)..frontier.len() {
                    let (sa, sb) = (&frontier[a], &frontier[b]);
                    // Join on a shared (level−2)-prefix.
                    if sa[..level - 2] != sb[..level - 2] {
                        continue;
                    }
                    let mut candidate = sa.clone();
                    candidate.push(sb[level - 2]);
                    candidate.sort_unstable();
                    candidate.dedup();
                    if candidate.len() != level {
                        continue;
                    }
                    // All (level−1)-subsets must be dense subspaces.
                    let all_subsets_dense = (0..level).all(|skip| {
                        let sub: Vec<usize> = candidate
                            .iter()
                            .enumerate()
                            .filter(|&(i, _)| i != skip)
                            .map(|(_, &v)| v)
                            .collect();
                        frontier_set.contains(&sub)
                    });
                    if !all_subsets_dense || next.contains(&candidate) {
                        continue;
                    }
                    let units = dense_units(ds, &candidate, cfg.xi, min_count);
                    if !units.is_empty() {
                        next.push(candidate.clone());
                        dense.insert(candidate, units);
                    }
                }
            }
            next.sort();
            frontier = next;
        }

        // Maximal dense subspaces: not a subset of another dense subspace.
        let subspaces: Vec<&Vec<usize>> = dense.keys().collect();
        let maximal: Vec<Vec<usize>> = subspaces
            .iter()
            .filter(|s| {
                !subspaces
                    .iter()
                    .any(|t| t.len() > s.len() && s.iter().all(|j| t.contains(j)))
            })
            .map(|s| (*s).clone())
            .collect();

        // Clusters: components per maximal subspace, assigned greedily by
        // subspace dimensionality (desc), then component unit count (desc).
        let mut candidates: Vec<(Vec<usize>, Vec<Vec<u32>>)> = Vec::new();
        for s in &maximal {
            for comp in components(&dense[s]) {
                candidates.push((s.clone(), comp));
            }
        }
        for (_, comp) in &mut candidates {
            comp.sort();
        }
        candidates.sort_by(|a, b| {
            b.0.len()
                .cmp(&a.0.len())
                .then(b.1.len().cmp(&a.1.len()))
                .then(a.0.cmp(&b.0))
                .then(a.1.cmp(&b.1))
        });

        let mut taken = vec![false; n];
        let mut clusters: Vec<SubspaceCluster> = Vec::new();
        let mut key = Vec::new();
        for (subspace, comp) in candidates {
            let unit_set: HashSet<&Vec<u32>> = comp.iter().collect();
            let mut members = Vec::new();
            for (i, p) in ds.iter().enumerate() {
                if taken[i] {
                    continue;
                }
                key.clear();
                key.extend(
                    subspace
                        .iter()
                        .map(|&j| ((p[j] * cfg.xi as f64) as usize).min(cfg.xi - 1) as u32),
                );
                if unit_set.contains(&key) {
                    members.push(i);
                }
            }
            if members.len() >= min_count {
                for &i in &members {
                    taken[i] = true;
                }
                clusters.push(SubspaceCluster::new(
                    members,
                    AxisMask::from_axes(d, subspace.iter().copied()),
                ));
            }
        }
        Ok(SubspaceClustering::new(n, d, clusters))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Dataset {
        let mut state = 0x51u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut rows = Vec::new();
        for _ in 0..300 {
            rows.push([
                0.22 + 0.04 * (next() - 0.5),
                0.62 + 0.04 * (next() - 0.5),
                next() * 0.99,
            ]);
        }
        for _ in 0..100 {
            rows.push([next() * 0.99, next() * 0.99, next() * 0.99]);
        }
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn finds_the_dense_subspace_cluster() {
        let ds = blobs();
        let c = Clique::default().fit(&ds).unwrap();
        assert!(!c.is_empty());
        // The dominant cluster should live in the {0,1} subspace and grab
        // most of the 300 blob points.
        let big = c
            .clusters()
            .iter()
            .max_by_key(|cl| cl.len())
            .expect("non-empty");
        assert!(big.axes.contains(0) && big.axes.contains(1));
        let blob_members = big.points.iter().filter(|&&i| i < 300).count();
        assert!(blob_members > 250, "only {blob_members} blob points");
    }

    #[test]
    fn uniform_axis_is_not_relevant() {
        let ds = blobs();
        let c = Clique::default().fit(&ds).unwrap();
        let big = c.clusters().iter().max_by_key(|cl| cl.len()).unwrap();
        assert!(!big.axes.contains(2));
    }

    #[test]
    fn tau_too_high_finds_nothing() {
        let ds = blobs();
        let c = Clique::new(CliqueConfig {
            tau: 0.9,
            ..Default::default()
        })
        .fit(&ds)
        .unwrap();
        assert!(c.is_empty());
    }

    #[test]
    fn output_is_a_partition() {
        let ds = blobs();
        let c = Clique::default().fit(&ds).unwrap();
        // SubspaceClustering::new enforces disjointness; also check noise
        // accounting closes.
        assert_eq!(c.n_clustered() + c.noise().len(), ds.len());
    }

    #[test]
    fn rejects_bad_parameters() {
        let ds = blobs();
        assert!(Clique::new(CliqueConfig {
            xi: 1,
            ..Default::default()
        })
        .fit(&ds)
        .is_err());
        assert!(Clique::new(CliqueConfig {
            tau: 0.0,
            ..Default::default()
        })
        .fit(&ds)
        .is_err());
    }
}
