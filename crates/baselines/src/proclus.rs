//! PROCLUS — projected clustering by k-medoids (Aggarwal et al., SIGMOD '99).
//!
//! Three phases, as in the original paper:
//!
//! 1. **Initialization** — draw a sample, greedily pick a well-scattered
//!    candidate medoid set (each new candidate maximizes its distance to the
//!    ones already chosen).
//! 2. **Iteration** — from the current k medoids, compute each medoid's
//!    locality (points within its distance to the nearest other medoid),
//!    derive per-medoid dimension sets by z-scored average distances (l·k
//!    dimensions total, at least 2 per medoid), assign every point by
//!    Manhattan *segmental* distance in the medoid's dimensions, and replace
//!    the worst medoid with a random candidate whenever that improves the
//!    objective (average within-cluster dispersion).
//! 3. **Refinement** — recompute the dimension sets from the final clusters,
//!    reassign, and mark as noise every point farther from its medoid than
//!    that medoid's sphere of influence.
//!
//! The paper supplies the true number of clusters `k` and the average
//! cluster dimensionality `l` (its two required user parameters).

use mrcc_common::{AxisMask, Dataset, Error, Result, SubspaceCluster, SubspaceClustering, NOISE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::SubspaceClusterer;

/// Configuration for [`Proclus`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProclusConfig {
    /// Number of clusters `k`.
    pub k: usize,
    /// Average cluster dimensionality `l` (dimensions picked = `l·k`).
    pub avg_dims: usize,
    /// Candidate medoid pool size factor (`B = pool_factor · k`).
    pub pool_factor: usize,
    /// Iteration budget of the hill-climbing phase.
    pub max_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ProclusConfig {
    /// Defaults mirroring the original paper's suggestions.
    pub fn new(k: usize, avg_dims: usize) -> Self {
        ProclusConfig {
            k,
            avg_dims,
            pool_factor: 4,
            max_iters: 30,
            seed: 0x5EED,
        }
    }
}

/// The PROCLUS method.
#[derive(Debug, Clone)]
pub struct Proclus {
    config: ProclusConfig,
}

impl Proclus {
    /// Creates the method.
    pub fn new(config: ProclusConfig) -> Self {
        Proclus { config }
    }
}

fn l1(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Manhattan segmental distance over a dimension subset.
fn segmental(a: &[f64], b: &[f64], dims: &AxisMask) -> f64 {
    let c = dims.count();
    if c == 0 {
        return f64::INFINITY;
    }
    dims.iter().map(|j| (a[j] - b[j]).abs()).sum::<f64>() / c as f64
}

/// Greedy far-apart candidate selection from the index pool.
fn greedy_candidates(ds: &Dataset, pool: &[usize], count: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut chosen = Vec::with_capacity(count);
    chosen.push(pool[rng.gen_range(0..pool.len())]);
    let mut dist: Vec<f64> = pool
        .iter()
        .map(|&i| l1(ds.point(i), ds.point(chosen[0])))
        .collect();
    while chosen.len() < count.min(pool.len()) {
        let (arg, _) = dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty pool");
        let next = pool[arg];
        if chosen.contains(&next) {
            break; // all remaining are duplicates / zero-distance
        }
        chosen.push(next);
        for (slot, &i) in dist.iter_mut().zip(pool) {
            let d = l1(ds.point(i), ds.point(next));
            if d < *slot {
                *slot = d;
            }
        }
    }
    chosen
}

/// Per-medoid dimension selection: smallest z-scored average locality
/// distances, `l·k` picks in total, at least 2 per medoid.
fn find_dimensions(
    ds: &Dataset,
    medoids: &[usize],
    localities: &[Vec<usize>],
    total_dims: usize,
) -> Vec<AxisMask> {
    let d = ds.dims();
    let k = medoids.len();
    // X[i][j]: average |x_j − m_j| over the locality of medoid i.
    let mut scores: Vec<(f64, usize, usize)> = Vec::with_capacity(k * d); // (z, i, j)
    for (i, &m) in medoids.iter().enumerate() {
        let mp = ds.point(m);
        let mut x = vec![0.0f64; d];
        let count = localities[i].len().max(1);
        for &p in &localities[i] {
            let pp = ds.point(p);
            for (slot, (a, b)) in x.iter_mut().zip(pp.iter().zip(mp)) {
                *slot += (a - b).abs();
            }
        }
        for v in &mut x {
            *v /= count as f64;
        }
        let mean = x.iter().sum::<f64>() / d as f64;
        let var = x.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / d as f64;
        let sd = var.sqrt().max(1e-12);
        for (j, &xv) in x.iter().enumerate() {
            scores.push(((xv - mean) / sd, i, j));
        }
    }
    scores.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite z-scores"));

    let mut masks = vec![AxisMask::empty(d); k];
    let mut picked = vec![0usize; k];
    // Two guaranteed picks per medoid (smallest z first).
    for &(_, i, j) in &scores {
        if picked[i] < 2 {
            masks[i].insert(j);
            picked[i] += 1;
        }
    }
    let mut total = picked.iter().sum::<usize>();
    for &(_, i, j) in &scores {
        if total >= total_dims.max(2 * k) {
            break;
        }
        if !masks[i].contains(j) {
            masks[i].insert(j);
            picked[i] += 1;
            total += 1;
        }
    }
    masks
}

/// Assigns every point to its closest medoid by segmental distance.
fn assign(ds: &Dataset, medoids: &[usize], masks: &[AxisMask]) -> Vec<usize> {
    ds.iter()
        .map(|p| {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (i, &m) in medoids.iter().enumerate() {
                let dist = segmental(p, ds.point(m), &masks[i]);
                if dist < best_d {
                    best_d = dist;
                    best = i;
                }
            }
            best
        })
        .collect()
}

/// Objective: average segmental dispersion of points around their medoid.
fn evaluate(ds: &Dataset, medoids: &[usize], masks: &[AxisMask], assignment: &[usize]) -> f64 {
    let mut total = 0.0;
    for (i, p) in ds.iter().enumerate() {
        let c = assignment[i];
        total += segmental(p, ds.point(medoids[c]), &masks[c]);
    }
    total / ds.len() as f64
}

/// Localities: points within each medoid's distance to its nearest fellow
/// medoid (full-dimensional L1).
fn localities(ds: &Dataset, medoids: &[usize]) -> Vec<Vec<usize>> {
    let k = medoids.len();
    let mut delta = vec![f64::INFINITY; k];
    for i in 0..k {
        for j in 0..k {
            if i != j {
                let d = l1(ds.point(medoids[i]), ds.point(medoids[j]));
                if d < delta[i] {
                    delta[i] = d;
                }
            }
        }
    }
    let mut loc = vec![Vec::new(); k];
    for (p, point) in ds.iter().enumerate() {
        for i in 0..k {
            if l1(point, ds.point(medoids[i])) <= delta[i] {
                loc[i].push(p);
            }
        }
    }
    loc
}

impl SubspaceClusterer for Proclus {
    fn name(&self) -> &'static str {
        "PROCLUS"
    }

    fn fit(&self, ds: &Dataset) -> Result<SubspaceClustering> {
        if ds.is_empty() {
            return Err(Error::EmptyDataset);
        }
        let (n, d, k) = (ds.len(), ds.dims(), self.config.k);
        if k == 0 || k > n {
            return Err(Error::InvalidParameter {
                name: "k",
                message: format!("k={k} invalid for {n} points"),
            });
        }
        if self.config.avg_dims == 0 || self.config.avg_dims > d {
            return Err(Error::InvalidParameter {
                name: "avg_dims",
                message: format!("l={} invalid for {d} dims", self.config.avg_dims),
            });
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let total_dims = self.config.avg_dims * k;

        // Initialization: candidate pool from a sample.
        let pool: Vec<usize> = (0..n).collect();
        let candidates =
            greedy_candidates(ds, &pool, (self.config.pool_factor * k).min(n), &mut rng);
        let mut medoids: Vec<usize> = candidates[..k.min(candidates.len())].to_vec();
        while medoids.len() < k {
            medoids.push(rng.gen_range(0..n)); // degenerate tiny inputs
        }

        // Hill climbing: replace the worst medoid with a random candidate.
        let mut best_obj = f64::INFINITY;
        let mut best_state: Option<(Vec<usize>, Vec<AxisMask>, Vec<usize>)> = None;
        for _ in 0..self.config.max_iters {
            let loc = localities(ds, &medoids);
            let masks = find_dimensions(ds, &medoids, &loc, total_dims);
            let assignment = assign(ds, &medoids, &masks);
            let obj = evaluate(ds, &medoids, &masks, &assignment);
            if obj < best_obj {
                best_obj = obj;
                best_state = Some((medoids.clone(), masks, assignment.clone()));
            } else if let Some((m, _, _)) = &best_state {
                medoids = m.clone(); // revert to the best known set
            }
            // Replace the medoid of the smallest cluster.
            let mut counts = vec![0usize; k];
            for &c in &assignment {
                counts[c] += 1;
            }
            let worst = counts
                .iter()
                .enumerate()
                .min_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .expect("k >= 1");
            let replacement = candidates[rng.gen_range(0..candidates.len())];
            if !medoids.contains(&replacement) {
                medoids[worst] = replacement;
            }
        }
        let (medoids, _masks, _) = best_state.expect("at least one iteration ran");

        // Refinement: dimensions from the formed clusters, one reassignment,
        // then outlier marking by each medoid's sphere of influence.
        let loc = localities(ds, &medoids);
        let masks = find_dimensions(ds, &medoids, &loc, total_dims);
        let assignment = assign(ds, &medoids, &masks);

        // Sphere of influence: the medoid's segmental distance to the
        // nearest other medoid (in its own dimensions).
        let mut influence = vec![f64::INFINITY; k];
        for i in 0..k {
            for j in 0..k {
                if i != j {
                    let dd = segmental(ds.point(medoids[i]), ds.point(medoids[j]), &masks[i]);
                    if dd < influence[i] {
                        influence[i] = dd;
                    }
                }
            }
        }
        let mut labels = vec![NOISE; n];
        for (i, p) in ds.iter().enumerate() {
            let c = assignment[i];
            if segmental(p, ds.point(medoids[c]), &masks[c]) <= influence[c] {
                labels[i] = c as i32;
            }
        }

        let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, &l) in labels.iter().enumerate() {
            if l != NOISE {
                members[l as usize].push(i);
            }
        }
        let clusters: Vec<SubspaceCluster> = members
            .into_iter()
            .zip(masks)
            .filter(|(pts, _)| !pts.is_empty())
            .map(|(pts, mask)| SubspaceCluster::new(pts, mask))
            .collect();
        Ok(SubspaceClustering::new(n, d, clusters))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 2-of-4-dimensional projected clusters plus noise.
    fn projected_blobs() -> Dataset {
        let mut state = 0x9E37_79B9u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut rows = Vec::new();
        for _ in 0..150 {
            rows.push([
                0.25 + 0.02 * (next() - 0.5),
                0.70 + 0.02 * (next() - 0.5),
                next() * 0.99,
                next() * 0.99,
            ]);
            rows.push([
                next() * 0.99,
                next() * 0.99,
                0.30 + 0.02 * (next() - 0.5),
                0.80 + 0.02 * (next() - 0.5),
            ]);
        }
        for _ in 0..60 {
            rows.push([next() * 0.99, next() * 0.99, next() * 0.99, next() * 0.99]);
        }
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn finds_two_projected_clusters() {
        let ds = projected_blobs();
        let c = Proclus::new(ProclusConfig::new(2, 2)).fit(&ds).unwrap();
        assert_eq!(c.len(), 2);
        // The two clusters split the even/odd construction with decent
        // purity.
        let labels = c.labels();
        let mut even = [0usize; 2];
        let mut odd = [0usize; 2];
        for (i, &l) in labels.iter().enumerate() {
            if l >= 0 {
                if i % 2 == 0 {
                    even[l as usize] += 1;
                } else {
                    odd[l as usize] += 1;
                }
            }
        }
        let purity = (even[0].max(even[1]) + odd[0].max(odd[1])) as f64
            / (even[0] + even[1] + odd[0] + odd[1]) as f64;
        assert!(purity > 0.85, "purity {purity:.3}");
    }

    #[test]
    fn dimension_sets_have_at_least_two_dims() {
        let ds = projected_blobs();
        let c = Proclus::new(ProclusConfig::new(2, 2)).fit(&ds).unwrap();
        for cl in c.clusters() {
            assert!(cl.axes.count() >= 2);
        }
    }

    #[test]
    fn deterministic() {
        let ds = projected_blobs();
        let a = Proclus::new(ProclusConfig::new(2, 2)).fit(&ds).unwrap();
        let b = Proclus::new(ProclusConfig::new(2, 2)).fit(&ds).unwrap();
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn rejects_bad_parameters() {
        let ds = projected_blobs();
        assert!(Proclus::new(ProclusConfig::new(0, 2)).fit(&ds).is_err());
        assert!(Proclus::new(ProclusConfig::new(2, 0)).fit(&ds).is_err());
        assert!(Proclus::new(ProclusConfig::new(2, 5)).fit(&ds).is_err());
    }

    #[test]
    fn segmental_distance_averages_over_dims() {
        let a = [0.0, 0.0, 0.0];
        let b = [0.3, 0.6, 0.9];
        let mask = AxisMask::from_axes(3, [0, 2]);
        assert!((segmental(&a, &b, &mask) - 0.6).abs() < 1e-12);
        assert_eq!(segmental(&a, &b, &AxisMask::empty(3)), f64::INFINITY);
    }
}
