#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Clean-room Rust implementations of the subspace / projected clustering
//! methods MrCC is evaluated against (paper Section IV), plus the plain
//! k-means substrate two of them build on.
//!
//! | Module | Algorithm | Original paper |
//! |--------|-----------|----------------|
//! | [`kmeans`] | Lloyd's k-means with k-means++ seeding | substrate |
//! | [`clique`] | CLIQUE: bottom-up dense-unit mining | Agrawal et al., SIGMOD 1998 |
//! | [`proclus`] | PROCLUS: k-medoid projected clustering | Aggarwal et al., SIGMOD 1999 |
//! | [`lac`] | LAC: locally adaptive (weighted) clustering | Domeniconi et al., DMKD 2007 |
//! | [`doc`] | DOC / FastDOC: Monte-Carlo projective clustering (the CFPC core) | Procopiuc et al., SIGMOD 2002 |
//! | [`epch`] | EPCH: projective clustering by histograms | Ng, Fu, Wong, TKDE 2005 |
//! | [`p3c`] | P3C: projected clustering via cluster cores | Moise, Sander, Ester, KAIS 2008 |
//! | [`harp`] | HARP: hierarchical projected clustering | Yip, Cheung, Ng, TKDE 2004 |
//! | [`sting`] | STING: statistical information grid (the paper's cited basis) | Wang, Yang, Muntz, VLDB 1997 |
//!
//! Every method implements [`SubspaceClusterer`], producing the same
//! [`SubspaceClustering`] output MrCC does, so the evaluation harness scores
//! all of them identically. These are reimplementations from the original
//! papers, not ports of the authors' binaries (which the MrCC authors
//! obtained privately); absolute constants differ, asymptotics and
//! qualitative behaviour match.

pub mod clique;
pub mod doc;
pub mod epch;
pub mod harp;
pub mod kmeans;
pub mod lac;
pub mod p3c;
pub mod proclus;
pub mod sting;

pub use clique::{Clique, CliqueConfig};
pub use doc::{Doc, DocConfig};
pub use epch::{Epch, EpchConfig};
pub use harp::{Harp, HarpConfig};
pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
pub use lac::{Lac, LacConfig};
pub use p3c::{P3c, P3cConfig};
pub use proclus::{Proclus, ProclusConfig};
pub use sting::{Sting, StingConfig};

use mrcc_common::{Dataset, Result, SubspaceClustering};

/// Common interface for every clustering method in the comparison.
///
/// `Send + Sync` so the harness can run methods on budgeted worker threads.
pub trait SubspaceClusterer: Send + Sync {
    /// Short display name (as used in the paper's figures).
    fn name(&self) -> &'static str;

    /// Clusters a unit-normalized dataset.
    ///
    /// # Errors
    /// Implementation-specific validation failures.
    fn fit(&self, dataset: &Dataset) -> Result<SubspaceClustering>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_objects_are_usable() {
        let methods: Vec<Box<dyn SubspaceClusterer>> = vec![
            Box::new(Lac::new(LacConfig::new(2))),
            Box::new(Doc::new(DocConfig::new(2))),
        ];
        assert_eq!(methods[0].name(), "LAC");
        assert_eq!(methods[1].name(), "CFPC");
    }
}
