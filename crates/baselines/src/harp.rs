//! HARP — hierarchical projected clustering (Yip, Cheung, Ng, TKDE 2004).
//!
//! HARP agglomerates clusters bottom-up, guided by per-axis *relevance
//! indices* (how much tighter a cluster is on an axis than the data as a
//! whole), loosening its internal thresholds as it goes; it needs the target
//! cluster count and the expected noise percentage (both supplied in the
//! MrCC paper's runs) and inherits the quadratic cost of hierarchical
//! clustering.
//!
//! This reimplementation keeps the hierarchical core and the relevance-based
//! subspace selection but bounds the quadratic part to stay runnable: the
//! agglomeration (nearest-neighbor-chain, Ward linkage over the normalized
//! axes) runs on a deterministic sample of at most `sample_cap` points, the
//! resulting `k` clusters absorb the full dataset by relevance-weighted
//! nearest-centroid assignment, and the known noise fraction of worst-fitting
//! points is released as noise. The original's full-singleton start on 100k+
//! points (the source of its 1,400× slowdowns in the paper) is therefore
//! *not* reproduced — EXPERIMENTS.md discusses the impact on the time and
//! memory shapes.

use mrcc_common::{AxisMask, Dataset, Error, Result, SubspaceClustering, NOISE};

use crate::SubspaceClusterer;

/// Configuration for [`Harp`].
#[derive(Debug, Clone, PartialEq)]
pub struct HarpConfig {
    /// Target number of clusters (the paper supplies the true value).
    pub k: usize,
    /// Expected noise fraction (the paper supplies the true value).
    pub noise_fraction: f64,
    /// Maximum points agglomerated hierarchically.
    pub sample_cap: usize,
    /// Relevance index threshold for an axis to count as relevant in the
    /// final subspace selection (`R_j = 1 − σ²_C(j)/σ²(j) ≥ threshold`).
    pub relevance_threshold: f64,
}

impl HarpConfig {
    /// Defaults.
    pub fn new(k: usize, noise_fraction: f64) -> Self {
        HarpConfig {
            k,
            noise_fraction,
            sample_cap: 2_000,
            relevance_threshold: 0.5,
        }
    }
}

/// The HARP method.
#[derive(Debug, Clone)]
pub struct Harp {
    config: HarpConfig,
}

impl Harp {
    /// Creates the method.
    pub fn new(config: HarpConfig) -> Self {
        Harp { config }
    }
}

/// Sufficient statistics of one hierarchical cluster.
#[derive(Debug, Clone)]
struct Agg {
    count: usize,
    sum: Vec<f64>,
    sumsq: Vec<f64>,
}

impl Agg {
    fn singleton(p: &[f64]) -> Self {
        Agg {
            count: 1,
            sum: p.to_vec(),
            sumsq: p.iter().map(|&v| v * v).collect(),
        }
    }

    fn merge(&self, other: &Agg) -> Agg {
        Agg {
            count: self.count + other.count,
            sum: self
                .sum
                .iter()
                .zip(&other.sum)
                .map(|(a, b)| a + b)
                .collect(),
            sumsq: self
                .sumsq
                .iter()
                .zip(&other.sumsq)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    fn mean(&self, j: usize) -> f64 {
        self.sum[j] / self.count as f64
    }

    fn variance(&self, j: usize) -> f64 {
        let m = self.mean(j);
        (self.sumsq[j] / self.count as f64 - m * m).max(0.0)
    }
}

/// Ward linkage: increase in total within-cluster variance when merging.
fn ward(a: &Agg, b: &Agg) -> f64 {
    let factor = (a.count * b.count) as f64 / (a.count + b.count) as f64;
    let d2: f64 = (0..a.sum.len())
        .map(|j| {
            let diff = a.mean(j) - b.mean(j);
            diff * diff
        })
        .sum();
    factor * d2
}

impl SubspaceClusterer for Harp {
    fn name(&self) -> &'static str {
        "HARP"
    }

    fn fit(&self, ds: &Dataset) -> Result<SubspaceClustering> {
        if ds.is_empty() {
            return Err(Error::EmptyDataset);
        }
        let cfg = &self.config;
        let (n, d) = (ds.len(), ds.dims());
        if cfg.k == 0 || cfg.k > n {
            return Err(Error::InvalidParameter {
                name: "k",
                message: format!("k={} invalid for {n} points", cfg.k),
            });
        }
        if !(0.0..1.0).contains(&cfg.noise_fraction) {
            return Err(Error::InvalidParameter {
                name: "noise_fraction",
                message: format!("must be in [0,1), got {}", cfg.noise_fraction),
            });
        }

        // Deterministic sample: every ⌈n/cap⌉-th point.
        let stride = n.div_ceil(cfg.sample_cap).max(1);
        let sample: Vec<usize> = (0..n).step_by(stride).collect();
        let s = sample.len();
        if cfg.k > s {
            return Err(Error::InvalidParameter {
                name: "k",
                message: format!("k={} exceeds sample size {s}", cfg.k),
            });
        }

        // Nearest-neighbor-chain agglomeration on the sample.
        let mut aggs: Vec<Option<Agg>> = sample
            .iter()
            .map(|&i| Some(Agg::singleton(ds.point(i))))
            .collect();
        let mut active: Vec<usize> = (0..s).collect();
        let mut chain: Vec<usize> = Vec::new();
        while active.len() > cfg.k {
            let top = match chain.last() {
                Some(&t) if aggs[t].is_some() => t,
                _ => {
                    chain.clear();
                    chain.push(active[0]);
                    active[0]
                }
            };
            // Nearest active neighbor of `top`.
            let ta = aggs[top].as_ref().expect("top is active");
            let mut nn = usize::MAX;
            let mut nn_d = f64::INFINITY;
            for &c in &active {
                if c == top {
                    continue;
                }
                let dist = ward(ta, aggs[c].as_ref().expect("active"));
                if dist < nn_d {
                    nn_d = dist;
                    nn = c;
                }
            }
            let prev = chain.len().checked_sub(2).map(|i| chain[i]);
            if prev == Some(nn) {
                // Reciprocal nearest neighbors → merge.
                let merged = aggs[top]
                    .as_ref()
                    .expect("top active")
                    .merge(aggs[nn].as_ref().expect("nn active"));
                aggs[top] = Some(merged);
                aggs[nn] = None;
                active.retain(|&c| c != nn);
                chain.pop();
                chain.pop();
            } else {
                chain.push(nn);
            }
        }

        // Global per-axis variance (relevance baseline).
        let global = {
            let mut g = Agg::singleton(ds.point(0));
            for p in ds.iter().skip(1) {
                g = g.merge(&Agg::singleton(p));
            }
            g
        };

        // Final clusters: centroids + relevance-selected axes.
        let finals: Vec<&Agg> = active
            .iter()
            .map(|&c| aggs[c].as_ref().expect("active cluster"))
            .collect();
        let masks: Vec<AxisMask> = finals
            .iter()
            .map(|a| {
                let mut m = AxisMask::empty(d);
                for j in 0..d {
                    let gv = global.variance(j).max(1e-12);
                    let r = 1.0 - a.variance(j) / gv;
                    if r >= cfg.relevance_threshold {
                        m.insert(j);
                    }
                }
                if m.is_empty() {
                    // Degenerate: fall back to the tightest axis.
                    let j = (0..d)
                        .min_by(|&x, &y| {
                            let rx = a.variance(x) / global.variance(x).max(1e-12);
                            let ry = a.variance(y) / global.variance(y).max(1e-12);
                            rx.partial_cmp(&ry).expect("finite")
                        })
                        .expect("d >= 1");
                    m.insert(j);
                }
                m
            })
            .collect();

        // Assign the full dataset by relevance-weighted distance; remember
        // each point's fit so the known noise fraction can be released.
        let mut labels = vec![NOISE; n];
        let mut fits: Vec<(f64, usize)> = Vec::with_capacity(n);
        for (i, p) in ds.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, a) in finals.iter().enumerate() {
                let mask = &masks[c];
                let dims = mask.count().max(1) as f64;
                let dist: f64 = mask
                    .iter()
                    .map(|j| {
                        let diff = p[j] - a.mean(j);
                        diff * diff
                    })
                    .sum::<f64>()
                    / dims;
                if dist < best_d {
                    best_d = dist;
                    best = c;
                }
            }
            labels[i] = best as i32;
            fits.push((best_d, i));
        }
        let n_noise = (cfg.noise_fraction * n as f64).round() as usize;
        fits.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite distances"));
        for &(_, i) in fits.iter().take(n_noise) {
            labels[i] = NOISE;
        }

        Ok(SubspaceClustering::from_labels(&labels, &masks, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Dataset {
        let mut state = 0x4A59u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut rows = Vec::new();
        for _ in 0..200 {
            rows.push([
                0.25 + 0.02 * (next() - 0.5),
                0.30 + 0.02 * (next() - 0.5),
                next() * 0.99,
            ]);
            rows.push([
                0.75 + 0.02 * (next() - 0.5),
                next() * 0.99,
                0.70 + 0.02 * (next() - 0.5),
            ]);
        }
        for _ in 0..50 {
            rows.push([next() * 0.99, next() * 0.99, next() * 0.99]);
        }
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn separates_two_clusters() {
        let ds = blobs();
        let c = Harp::new(HarpConfig::new(2, 0.1)).fit(&ds).unwrap();
        assert_eq!(c.len(), 2);
        let labels = c.labels();
        let mut purity = 0usize;
        let even_label = labels[0];
        // Purity over the 400 cluster points only; the 50 noise rows follow.
        for (i, &l) in labels.iter().take(400).enumerate() {
            if l >= 0 && (l == even_label) == (i % 2 == 0) {
                purity += 1;
            }
        }
        let purity = purity.max(400 - purity);
        assert!(purity > 320, "purity {purity}/400");
    }

    #[test]
    fn releases_the_requested_noise_fraction() {
        let ds = blobs();
        let c = Harp::new(HarpConfig::new(2, 0.2)).fit(&ds).unwrap();
        let expected = (0.2 * ds.len() as f64).round() as usize;
        assert_eq!(c.noise().len(), expected);
    }

    #[test]
    fn relevance_selects_the_tight_axes() {
        let ds = blobs();
        let c = Harp::new(HarpConfig::new(2, 0.1)).fit(&ds).unwrap();
        let masks: Vec<AxisMask> = c.clusters().iter().map(|cl| cl.axes).collect();
        assert!(masks.iter().any(|m| m.contains(0) && m.contains(1)));
        assert!(masks.iter().any(|m| m.contains(0) && m.contains(2)));
    }

    #[test]
    fn ward_prefers_closer_clusters() {
        let a = Agg::singleton(&[0.0, 0.0]);
        let b = Agg::singleton(&[0.1, 0.0]);
        let c = Agg::singleton(&[0.9, 0.9]);
        assert!(ward(&a, &b) < ward(&a, &c));
    }

    #[test]
    fn agg_statistics_merge_correctly() {
        let a = Agg::singleton(&[0.2, 0.4]);
        let b = Agg::singleton(&[0.4, 0.8]);
        let m = a.merge(&b);
        assert_eq!(m.count, 2);
        assert!((m.mean(0) - 0.3).abs() < 1e-12);
        assert!((m.variance(1) - 0.04).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_parameters() {
        let ds = blobs();
        assert!(Harp::new(HarpConfig::new(0, 0.1)).fit(&ds).is_err());
        assert!(Harp::new(HarpConfig::new(2, 1.0)).fit(&ds).is_err());
    }
}
