//! DOC / FastDOC — Monte-Carlo projective clustering (Procopiuc et al.,
//! SIGMOD 2002), run in the multi-cluster regime of its successor
//! FPC/CFPC (Yiu & Mamoulis, TKDE 2005), which is the comparison point in
//! the MrCC paper.
//!
//! A projective cluster is defined by a pivot point `p`, a width `w` and a
//! dimension set `D`: the cluster is every point within `±w` of `p` on all
//! dimensions of `D`. One cluster is found by Monte-Carlo search: sample a
//! pivot and a small *discriminating set* `X`; `D` = the dimensions on which
//! all of `X` stays within `±w` of the pivot; score the resulting cluster
//! with the quality function `μ(a, b) = a · (1/β)^b` which trades point
//! count `a` against subspace size `b`. The best candidate over all trials
//! wins if it covers at least an `α` fraction of the data. CFPC's headline
//! improvement is finding the `k` clusters in one run — reproduced here by
//! greedily extracting clusters and removing their points.

use mrcc_common::{AxisMask, Dataset, Error, Result, SubspaceCluster, SubspaceClustering};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::SubspaceClusterer;

/// Configuration for [`Doc`].
#[derive(Debug, Clone, PartialEq)]
pub struct DocConfig {
    /// Number of clusters to extract (the paper supplies the true value).
    pub k: usize,
    /// Half-width `w` of the cluster box on its relevant dimensions
    /// (data is unit-normalized; the paper's sweep 5–35 on `[−100,100]`
    /// corresponds to 0.025–0.175 here).
    pub w: f64,
    /// Minimum cluster size as a fraction `α` of the *remaining* points.
    pub alpha: f64,
    /// Quality trade-off `β` (smaller → favour more dimensions).
    pub beta: f64,
    /// Monte-Carlo outer trials per cluster.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DocConfig {
    /// Defaults: mid-range of the paper's tuning grid.
    pub fn new(k: usize) -> Self {
        DocConfig {
            k,
            w: 0.1,
            alpha: 0.05,
            beta: 0.25,
            trials: 128,
            seed: 0xD0C,
        }
    }
}

/// The DOC/CFPC method.
#[derive(Debug, Clone)]
pub struct Doc {
    config: DocConfig,
}

impl Doc {
    /// Creates the method.
    pub fn new(config: DocConfig) -> Self {
        Doc { config }
    }

    /// One Monte-Carlo search for the best projective cluster among
    /// `active` (indices into `ds`). Returns `(members, dims, quality)`.
    fn find_one(
        &self,
        ds: &Dataset,
        active: &[usize],
        rng: &mut StdRng,
    ) -> Option<(Vec<usize>, AxisMask, f64)> {
        let d = ds.dims();
        let n = active.len();
        if n == 0 {
            return None;
        }
        // Discriminating set size r = ⌈log(2d) / log(1/2β)⌉ (DOC Lemma 1).
        let r = ((2.0 * d as f64).ln() / (1.0 / (2.0 * self.config.beta)).ln())
            .ceil()
            .max(1.0) as usize;
        let min_size = (self.config.alpha * n as f64).ceil() as usize;

        let mut best: Option<(Vec<usize>, AxisMask, f64)> = None;
        for _ in 0..self.config.trials {
            let pivot = ds.point(active[rng.gen_range(0..n)]);
            // Discriminating set.
            let mut dims = AxisMask::full(d);
            for _ in 0..r.min(n) {
                let q = ds.point(active[rng.gen_range(0..n)]);
                for j in 0..d {
                    if dims.contains(j) && (q[j] - pivot[j]).abs() > self.config.w {
                        dims.remove(j);
                    }
                }
            }
            if dims.is_empty() {
                continue;
            }
            // Cluster: every active point within ±w of the pivot on `dims`.
            let members: Vec<usize> = active
                .iter()
                .copied()
                .filter(|&i| {
                    let p = ds.point(i);
                    dims.iter()
                        .all(|j| (p[j] - pivot[j]).abs() <= self.config.w)
                })
                .collect();
            if members.len() < min_size.max(2) {
                continue;
            }
            let quality = members.len() as f64 * (1.0 / self.config.beta).powi(dims.count() as i32);
            if best.as_ref().is_none_or(|(_, _, q)| quality > *q) {
                best = Some((members, dims, quality));
            }
        }
        best
    }
}

impl SubspaceClusterer for Doc {
    fn name(&self) -> &'static str {
        "CFPC"
    }

    fn fit(&self, ds: &Dataset) -> Result<SubspaceClustering> {
        if ds.is_empty() {
            return Err(Error::EmptyDataset);
        }
        if self.config.k == 0 {
            return Err(Error::InvalidParameter {
                name: "k",
                message: "k must be positive".into(),
            });
        }
        let (w, alpha, beta) = (self.config.w, self.config.alpha, self.config.beta);
        if !(0.0 < w && w < 1.0 && 0.0 < alpha && alpha < 1.0 && 0.0 < beta && beta < 0.5) {
            return Err(Error::InvalidParameter {
                name: "w/alpha/beta",
                message: format!(
                    "w={} α={} β={} out of range",
                    self.config.w, self.config.alpha, self.config.beta
                ),
            });
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut active: Vec<usize> = (0..ds.len()).collect();
        let mut clusters = Vec::new();
        for _ in 0..self.config.k {
            let Some((members, dims, _)) = self.find_one(ds, &active, &mut rng) else {
                break;
            };
            let member_set: std::collections::HashSet<usize> = members.iter().copied().collect();
            active.retain(|i| !member_set.contains(i));
            clusters.push(SubspaceCluster::new(members, dims));
        }
        Ok(SubspaceClustering::new(ds.len(), ds.dims(), clusters))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Dataset {
        let mut state = 0xDEAD_BEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut rows = Vec::new();
        for _ in 0..200 {
            // Cluster in dims {0,1}.
            rows.push([
                0.30 + 0.03 * (next() - 0.5),
                0.40 + 0.03 * (next() - 0.5),
                next() * 0.99,
            ]);
            // Cluster in dims {1,2}.
            rows.push([
                next() * 0.99,
                0.85 + 0.03 * (next() - 0.5),
                0.15 + 0.03 * (next() - 0.5),
            ]);
        }
        for _ in 0..80 {
            rows.push([next() * 0.99, next() * 0.99, next() * 0.99]);
        }
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn finds_projective_clusters() {
        let ds = blobs();
        let c = Doc::new(DocConfig::new(2)).fit(&ds).unwrap();
        assert_eq!(c.len(), 2);
        // Each found cluster is dominated by one construction parity.
        for cl in c.clusters() {
            let even = cl.points.iter().filter(|&&i| i < 400 && i % 2 == 0).count();
            let odd = cl.points.iter().filter(|&&i| i < 400 && i % 2 == 1).count();
            let purity = even.max(odd) as f64 / (even + odd).max(1) as f64;
            assert!(purity > 0.9, "purity {purity:.3}");
        }
    }

    #[test]
    fn subspaces_match_construction() {
        let ds = blobs();
        let c = Doc::new(DocConfig::new(2)).fit(&ds).unwrap();
        let masks: Vec<AxisMask> = c.clusters().iter().map(|cl| cl.axes).collect();
        // One cluster confined on {0,1}, the other on {1,2}.
        assert!(masks
            .iter()
            .any(|m| m.contains(0) && m.contains(1) && !m.contains(2)));
        assert!(masks
            .iter()
            .any(|m| m.contains(1) && m.contains(2) && !m.contains(0)));
    }

    #[test]
    fn clusters_are_disjoint_and_leave_noise() {
        let ds = blobs();
        let c = Doc::new(DocConfig::new(2)).fit(&ds).unwrap();
        assert!(c.n_clustered() < ds.len());
        // Disjointness is enforced by SubspaceClustering::new (panics
        // otherwise), so reaching here is the assertion.
    }

    #[test]
    fn deterministic() {
        let ds = blobs();
        let a = Doc::new(DocConfig::new(2)).fit(&ds).unwrap();
        let b = Doc::new(DocConfig::new(2)).fit(&ds).unwrap();
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn rejects_bad_parameters() {
        let ds = blobs();
        assert!(Doc::new(DocConfig::new(0)).fit(&ds).is_err());
        let mut cfg = DocConfig::new(2);
        cfg.beta = 0.6;
        assert!(Doc::new(cfg).fit(&ds).is_err());
        let mut cfg = DocConfig::new(2);
        cfg.w = 0.0;
        assert!(Doc::new(cfg).fit(&ds).is_err());
    }
}
