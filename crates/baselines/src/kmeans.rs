//! Lloyd's k-means with k-means++ seeding.
//!
//! Substrate for the projected-clustering baselines (LAC is a weighted
//! k-means; PROCLUS is a k-medoid relative). Deterministic given the seed.

use mrcc_common::{Dataset, Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`kmeans`].
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansConfig {
    /// Number of centroids `k`.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence tolerance on total centroid movement.
    pub tolerance: f64,
    /// RNG seed for the k-means++ seeding.
    pub seed: u64,
}

impl KMeansConfig {
    /// Default configuration for `k` clusters.
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            max_iters: 100,
            tolerance: 1e-6,
            seed: 0x5EED,
        }
    }
}

/// Output of [`kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster index per point.
    pub assignment: Vec<usize>,
    /// Final centroids, row-major `k × d`.
    pub centroids: Vec<Vec<f64>>,
    /// Iterations executed.
    pub iterations: usize,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// k-means++ seeding: first centroid uniform, the rest proportional to the
/// squared distance to the nearest chosen centroid.
fn seed_centroids(ds: &Dataset, k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let n = ds.len();
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(ds.point(rng.gen_range(0..n)).to_vec());
    let mut dist2: Vec<f64> = (0..n)
        .map(|i| sq_dist(ds.point(i), &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = dist2.iter().sum();
        let chosen = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut pick = n - 1;
            for (i, &d) in dist2.iter().enumerate() {
                if target < d {
                    pick = i;
                    break;
                }
                target -= d;
            }
            pick
        };
        centroids.push(ds.point(chosen).to_vec());
        let c = centroids.last().expect("just pushed");
        for (slot, p) in dist2.iter_mut().zip(ds.iter()) {
            let d = sq_dist(p, c);
            if d < *slot {
                *slot = d;
            }
        }
    }
    centroids
}

/// Runs k-means.
///
/// # Errors
/// [`Error::InvalidParameter`] when `k` is 0 or exceeds the number of points;
/// [`Error::EmptyDataset`] on an empty dataset.
pub fn kmeans(ds: &Dataset, config: &KMeansConfig) -> Result<KMeansResult> {
    if ds.is_empty() {
        return Err(Error::EmptyDataset);
    }
    if config.k == 0 || config.k > ds.len() {
        return Err(Error::InvalidParameter {
            name: "k",
            message: format!("k={} invalid for {} points", config.k, ds.len()),
        });
    }
    let (n, d, k) = (ds.len(), ds.dims(), config.k);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut centroids = seed_centroids(ds, k, &mut rng);
    let mut assignment = vec![0usize; n];
    let mut iterations = 0;

    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Assign.
        for (i, p) in ds.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let dist = sq_dist(p, centroid);
                if dist < best_d {
                    best_d = dist;
                    best = c;
                }
            }
            assignment[i] = best;
        }
        // Update.
        let mut sums = vec![vec![0.0f64; d]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in ds.iter().enumerate() {
            let c = assignment[i];
            counts[c] += 1;
            for j in 0..d {
                sums[c][j] += p[j];
            }
        }
        let mut movement = 0.0f64;
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty centroid at a random point.
                centroids[c] = ds.point(rng.gen_range(0..n)).to_vec();
                movement += 1.0;
                continue;
            }
            for slot in &mut sums[c] {
                *slot /= counts[c] as f64;
            }
            movement += sq_dist(&sums[c], &centroids[c]).sqrt();
            centroids[c] = std::mem::take(&mut sums[c]);
        }
        if movement < config.tolerance {
            break;
        }
    }

    let inertia = ds
        .iter()
        .enumerate()
        .map(|(i, p)| sq_dist(p, &centroids[assignment[i]]))
        .sum();
    Ok(KMeansResult {
        assignment,
        centroids,
        iterations,
        inertia,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Dataset {
        let mut rows = Vec::new();
        for i in 0..50 {
            let t = i as f64 / 500.0;
            rows.push([0.2 + t, 0.2 - t]);
            rows.push([0.8 - t, 0.8 + t * 0.5]);
        }
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn separates_two_blobs() {
        let ds = two_blobs();
        let r = kmeans(&ds, &KMeansConfig::new(2)).unwrap();
        // All even indices together, all odd together.
        let c0 = r.assignment[0];
        let c1 = r.assignment[1];
        assert_ne!(c0, c1);
        for i in 0..ds.len() {
            assert_eq!(r.assignment[i], if i % 2 == 0 { c0 } else { c1 });
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = two_blobs();
        let a = kmeans(&ds, &KMeansConfig::new(2)).unwrap();
        let b = kmeans(&ds, &KMeansConfig::new(2)).unwrap();
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let ds = Dataset::from_rows(&[[0.1, 0.1], [0.5, 0.5], [0.9, 0.9]]).unwrap();
        let r = kmeans(&ds, &KMeansConfig::new(3)).unwrap();
        assert!(r.inertia < 1e-18);
    }

    #[test]
    fn rejects_bad_k() {
        let ds = two_blobs();
        assert!(kmeans(&ds, &KMeansConfig::new(0)).is_err());
        assert!(kmeans(&ds, &KMeansConfig::new(ds.len() + 1)).is_err());
        assert!(kmeans(&Dataset::new(2).unwrap(), &KMeansConfig::new(1)).is_err());
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let ds = two_blobs();
        let r1 = kmeans(&ds, &KMeansConfig::new(1)).unwrap();
        let r4 = kmeans(&ds, &KMeansConfig::new(4)).unwrap();
        assert!(r4.inertia <= r1.inertia);
    }
}
