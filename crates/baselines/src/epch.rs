//! EPCH — projective clustering by histograms (Ng, Fu, Wong, TKDE 2005).
//!
//! The EPC1 variant: build a histogram per axis, locate *dense regions*
//! (maximal runs of bins whose counts exceed the histogram's mean by a
//! configurable number of standard deviations), give every point a
//! *signature* — which dense region (if any) it hits on each axis — and
//! group points by signature. Signature groups are then merged when
//! compatible (they never disagree on an axis where both are confined and
//! they share at least one confined axis), the largest `max_clusters` merged
//! groups become clusters, and everything below the outlier threshold is
//! noise. A cluster's relevant axes are those where its signature is
//! confined to a dense region.
//!
//! The original tunes the histogram dimensionality 1–5 and an outlier
//! threshold in `[0, 1]`; the MrCC paper reports low settings performed
//! best, and EPC1 keeps the reimplementation transparent.

use std::collections::HashMap;

use mrcc_common::{AxisMask, Dataset, Error, Result, SubspaceCluster, SubspaceClustering};

use crate::SubspaceClusterer;

/// Configuration for [`Epch`].
#[derive(Debug, Clone, PartialEq)]
pub struct EpchConfig {
    /// Maximum number of clusters reported (the paper supplies the true
    /// count).
    pub max_clusters: usize,
    /// Bins per axis histogram.
    pub bins: usize,
    /// A bin is dense when its count exceeds `mean + dense_sigmas·σ`.
    pub dense_sigmas: f64,
    /// Groups smaller than this fraction of the dataset are outliers.
    pub outlier_threshold: f64,
}

impl EpchConfig {
    /// Defaults matching the original paper's guidance.
    pub fn new(max_clusters: usize) -> Self {
        EpchConfig {
            max_clusters,
            bins: 20,
            dense_sigmas: 1.0,
            outlier_threshold: 0.005,
        }
    }
}

/// The EPCH (EPC1) method.
#[derive(Debug, Clone)]
pub struct Epch {
    config: EpchConfig,
}

impl Epch {
    /// Creates the method.
    pub fn new(config: EpchConfig) -> Self {
        Epch { config }
    }
}

/// Dense regions of one axis: list of `(bin_lo, bin_hi)` inclusive ranges.
fn dense_regions(ds: &Dataset, axis: usize, bins: usize, sigmas: f64) -> Vec<(usize, usize)> {
    let mut hist = vec![0usize; bins];
    for p in ds.iter() {
        let b = ((p[axis] * bins as f64) as usize).min(bins - 1);
        hist[b] += 1;
    }
    let mean = ds.len() as f64 / bins as f64;
    let var = hist
        .iter()
        .map(|&c| (c as f64 - mean) * (c as f64 - mean))
        .sum::<f64>()
        / bins as f64;
    let threshold = mean + sigmas * var.sqrt();
    let mut regions = Vec::new();
    let mut run: Option<usize> = None;
    for (b, &c) in hist.iter().enumerate() {
        if c as f64 > threshold {
            run.get_or_insert(b);
        } else if let Some(start) = run.take() {
            regions.push((start, b - 1));
        }
    }
    if let Some(start) = run {
        regions.push((start, bins - 1));
    }
    regions
}

/// Signature entry per axis: `Some(region_index)` or `None` (not in any
/// dense region of that axis).
type Signature = Vec<Option<u8>>;

/// Two signatures are compatible when they never disagree on an axis where
/// both are confined, and they share at least one confined axis.
fn compatible(a: &Signature, b: &Signature) -> bool {
    let mut shared = false;
    for (x, y) in a.iter().zip(b) {
        match (x, y) {
            (Some(p), Some(q)) if p != q => return false,
            (Some(_), Some(_)) => shared = true,
            _ => {}
        }
    }
    shared
}

impl SubspaceClusterer for Epch {
    fn name(&self) -> &'static str {
        "EPCH"
    }

    fn fit(&self, ds: &Dataset) -> Result<SubspaceClustering> {
        if ds.is_empty() {
            return Err(Error::EmptyDataset);
        }
        let cfg = &self.config;
        if cfg.max_clusters == 0 || cfg.bins < 2 || !(0.0..1.0).contains(&cfg.outlier_threshold) {
            return Err(Error::InvalidParameter {
                name: "epch",
                message: format!(
                    "max_clusters={} bins={} outlier_threshold={} out of range",
                    cfg.max_clusters, cfg.bins, cfg.outlier_threshold
                ),
            });
        }
        let (n, d) = (ds.len(), ds.dims());

        // Per-axis dense regions.
        let regions: Vec<Vec<(usize, usize)>> = (0..d)
            .map(|j| dense_regions(ds, j, cfg.bins, cfg.dense_sigmas))
            .collect();

        // Point signatures.
        let mut groups: HashMap<Signature, Vec<usize>> = HashMap::new();
        for (i, p) in ds.iter().enumerate() {
            let sig: Signature = (0..d)
                .map(|j| {
                    let b = ((p[j] * cfg.bins as f64) as usize).min(cfg.bins - 1);
                    regions[j]
                        .iter()
                        .position(|&(lo, hi)| b >= lo && b <= hi)
                        .map(|r| r as u8)
                })
                .collect();
            if sig.iter().any(Option::is_some) {
                groups.entry(sig).or_default().push(i);
            }
        }

        // Merge compatible groups, largest first (greedy agglomeration of
        // the signature table).
        let mut entries: Vec<(Signature, Vec<usize>)> = groups.into_iter().collect();
        entries.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then_with(|| a.0.cmp(&b.0)));
        let mut merged: Vec<(Signature, Vec<usize>)> = Vec::new();
        'entry: for (sig, pts) in entries {
            for (msig, mpts) in &mut merged {
                if compatible(msig, &sig) {
                    // The largest group's signature stays the
                    // representative; smaller compatible groups (typically
                    // the same cluster with one axis just missing a dense
                    // region) are absorbed without eroding it.
                    mpts.extend(pts);
                    continue 'entry;
                }
            }
            merged.push((sig, pts));
        }

        // Largest groups become clusters; small groups are outliers.
        merged.sort_by_key(|(_, pts)| std::cmp::Reverse(pts.len()));
        let min_size = ((cfg.outlier_threshold * n as f64).ceil() as usize).max(2);
        let clusters: Vec<SubspaceCluster> = merged
            .into_iter()
            .take(cfg.max_clusters)
            .filter(|(sig, pts)| pts.len() >= min_size && sig.iter().any(Option::is_some))
            .map(|(sig, pts)| {
                let mask =
                    AxisMask::from_bools(&sig.iter().map(Option::is_some).collect::<Vec<_>>());
                SubspaceCluster::new(pts, mask)
            })
            .collect();
        Ok(SubspaceClustering::new(n, d, clusters))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Dataset {
        let mut state = 0xE9C4u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut rows = Vec::new();
        for _ in 0..250 {
            rows.push([
                0.20 + 0.03 * (next() - 0.5),
                next() * 0.99,
                0.70 + 0.03 * (next() - 0.5),
            ]);
            rows.push([
                0.80 + 0.03 * (next() - 0.5),
                0.30 + 0.03 * (next() - 0.5),
                next() * 0.99,
            ]);
        }
        for _ in 0..100 {
            rows.push([next() * 0.99, next() * 0.99, next() * 0.99]);
        }
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn recovers_two_projected_clusters() {
        let ds = blobs();
        let c = Epch::new(EpchConfig::new(2)).fit(&ds).unwrap();
        assert_eq!(c.len(), 2);
        for cl in c.clusters() {
            let even = cl.points.iter().filter(|&&i| i < 500 && i % 2 == 0).count();
            let odd = cl.points.iter().filter(|&&i| i < 500 && i % 2 == 1).count();
            let purity = even.max(odd) as f64 / (even + odd).max(1) as f64;
            assert!(purity > 0.9, "purity {purity}");
        }
    }

    #[test]
    fn signatures_mark_confined_axes() {
        let ds = blobs();
        let c = Epch::new(EpchConfig::new(2)).fit(&ds).unwrap();
        let masks: Vec<AxisMask> = c.clusters().iter().map(|cl| cl.axes).collect();
        assert!(masks.iter().any(|m| m.contains(0) && m.contains(2)));
        assert!(masks.iter().any(|m| m.contains(0) && m.contains(1)));
    }

    #[test]
    fn compatibility_rules() {
        let a: Signature = vec![Some(0), None, Some(1)];
        let b: Signature = vec![Some(0), Some(2), None];
        let c: Signature = vec![Some(1), None, Some(1)];
        let d: Signature = vec![None, Some(2), None];
        assert!(compatible(&a, &b)); // agree on axis 0
        assert!(!compatible(&a, &c)); // disagree on axis 0
        assert!(!compatible(&a, &d)); // no shared confined axis
    }

    #[test]
    fn max_clusters_caps_output() {
        let ds = blobs();
        let c = Epch::new(EpchConfig::new(1)).fit(&ds).unwrap();
        assert!(c.len() <= 1);
    }

    #[test]
    fn rejects_bad_parameters() {
        let ds = blobs();
        assert!(Epch::new(EpchConfig::new(0)).fit(&ds).is_err());
        let mut cfg = EpchConfig::new(2);
        cfg.bins = 1;
        assert!(Epch::new(cfg).fit(&ds).is_err());
    }
}
