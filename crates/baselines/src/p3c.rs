//! P3C — projected clustering via cluster cores (Moise, Sander, Ester,
//! KAIS 2008).
//!
//! The statistical pipeline of the original, without its final EM polish
//! (documented in DESIGN.md):
//!
//! 1. **Relevant intervals** — per axis, Sturges-binned histogram; bins are
//!    marked iteratively while the *remaining* bins fail a uniformity
//!    chi-square check (the original's support-truncation idea is captured
//!    by marking bins whose count exceeds the uniform expectation's
//!    one-sided Poisson critical value). Adjacent marked bins merge into
//!    intervals.
//! 2. **Cluster cores** — Apriori combination of intervals across axes: a
//!    `(q+1)`-signature survives when its observed support is significantly
//!    larger (one-sided Poisson test at `poisson_threshold`) than expected
//!    from the `q`-signature times the interval's marginal fraction.
//! 3. **Assignment** — every point joins the highest-dimensional core whose
//!    every interval contains it; unassigned points are noise.
//!
//! The one tuning knob is the Poisson threshold, which the MrCC paper sweeps
//! over `{1e−1 … 1e−15}`.

use mrcc_common::{AxisMask, Dataset, Error, Result, SubspaceCluster, SubspaceClustering};
use mrcc_stats::poisson::Poisson;

use crate::SubspaceClusterer;

/// Configuration for [`P3c`].
#[derive(Debug, Clone, PartialEq)]
pub struct P3cConfig {
    /// One-sided Poisson significance threshold for interval and core
    /// support tests.
    pub poisson_threshold: f64,
    /// Cap on core dimensionality (Apriori tractability guard).
    pub max_core_dim: usize,
    /// Cap on the number of candidate cores kept per Apriori level. The
    /// lattice grows combinatorially with dimensionality (the behaviour
    /// behind P3C's week-long runtimes in the MrCC paper); when a level
    /// exceeds the cap, only the highest-support cores survive.
    pub max_cores_per_level: usize,
}

impl Default for P3cConfig {
    fn default() -> Self {
        P3cConfig {
            poisson_threshold: 1e-4,
            max_core_dim: 8,
            max_cores_per_level: 10_000,
        }
    }
}

/// The P3C method.
#[derive(Debug, Clone, Default)]
pub struct P3c {
    config: P3cConfig,
}

impl P3c {
    /// Creates the method.
    pub fn new(config: P3cConfig) -> Self {
        P3c { config }
    }
}

/// A relevant interval on one axis, in normalized coordinates.
#[derive(Debug, Clone, PartialEq)]
struct Interval {
    axis: usize,
    lo: f64,
    hi: f64, // exclusive
}

impl Interval {
    fn contains(&self, p: &[f64]) -> bool {
        p[self.axis] >= self.lo && p[self.axis] < self.hi
    }
}

/// Sturges bin count.
fn sturges(n: usize) -> usize {
    (1.0 + (n as f64).log2()).ceil() as usize
}

/// Marks significantly dense bins of one axis and merges runs into
/// intervals.
fn relevant_intervals(ds: &Dataset, axis: usize, threshold: f64) -> Vec<Interval> {
    let n = ds.len();
    let bins = sturges(n).max(2);
    let mut hist = vec![0usize; bins];
    for p in ds.iter() {
        let b = ((p[axis] * bins as f64) as usize).min(bins - 1);
        hist[b] += 1;
    }
    let expected = n as f64 / bins as f64;
    let dist = Poisson::new(expected);
    // A bin is marked when observing its count (or more) under the uniform
    // expectation is rarer than the threshold.
    let marked: Vec<bool> = hist
        .iter()
        .map(|&c| dist.sf(c as u64) < threshold)
        .collect();
    let width = 1.0 / bins as f64;
    let mut intervals = Vec::new();
    let mut run: Option<usize> = None;
    for (b, &m) in marked.iter().enumerate() {
        if m {
            run.get_or_insert(b);
        } else if let Some(start) = run.take() {
            intervals.push(Interval {
                axis,
                lo: start as f64 * width,
                hi: b as f64 * width,
            });
        }
    }
    if let Some(start) = run {
        intervals.push(Interval {
            axis,
            lo: start as f64 * width,
            hi: 1.0 + 1e-12,
        });
    }
    intervals
}

/// A cluster core: one interval on each of a set of axes.
#[derive(Debug, Clone)]
struct Core {
    intervals: Vec<Interval>,
    support: Vec<usize>,
}

impl SubspaceClusterer for P3c {
    fn name(&self) -> &'static str {
        "P3C"
    }

    fn fit(&self, ds: &Dataset) -> Result<SubspaceClustering> {
        if ds.is_empty() {
            return Err(Error::EmptyDataset);
        }
        let cfg = &self.config;
        if !(cfg.poisson_threshold > 0.0 && cfg.poisson_threshold < 1.0) {
            return Err(Error::InvalidParameter {
                name: "poisson_threshold",
                message: format!("must be in (0,1), got {}", cfg.poisson_threshold),
            });
        }
        let (n, d) = (ds.len(), ds.dims());

        // Phase 1: relevant intervals per axis + marginal fractions.
        let mut all_intervals: Vec<Interval> = Vec::new();
        for j in 0..d {
            all_intervals.extend(relevant_intervals(ds, j, cfg.poisson_threshold));
        }
        if all_intervals.is_empty() {
            return Ok(SubspaceClustering::empty(n, d));
        }
        let fraction: Vec<f64> = all_intervals
            .iter()
            .map(|iv| ds.iter().filter(|p| iv.contains(p)).count() as f64 / n as f64)
            .collect();

        // Phase 2: Apriori growth of cores. Level 1 = single intervals.
        let mut cores: Vec<Core> = all_intervals
            .iter()
            .map(|iv| Core {
                intervals: vec![iv.clone()],
                support: (0..n).filter(|&i| iv.contains(ds.point(i))).collect(),
            })
            .collect();
        let mut frontier: Vec<Core> = cores.clone();
        let mut level = 1usize;
        while !frontier.is_empty() && level < cfg.max_core_dim.min(d) {
            level += 1;
            let mut next: Vec<Core> = Vec::new();
            for core in &frontier {
                let max_axis = core.intervals.last().expect("cores are non-empty").axis;
                for (iv, &frac) in all_intervals.iter().zip(&fraction) {
                    if iv.axis <= max_axis {
                        continue; // grow in axis order → no duplicates
                    }
                    let support: Vec<usize> = core
                        .support
                        .iter()
                        .copied()
                        .filter(|&i| iv.contains(ds.point(i)))
                        .collect();
                    if support.len() < 2 {
                        continue;
                    }
                    // Expected support if the interval were independent of
                    // the core; reject independence one-sided.
                    let expected = core.support.len() as f64 * frac;
                    if expected <= 0.0 {
                        continue;
                    }
                    let sig = Poisson::new(expected).sf(support.len() as u64);
                    if sig < cfg.poisson_threshold {
                        let mut intervals = core.intervals.clone();
                        intervals.push(iv.clone());
                        next.push(Core { intervals, support });
                    }
                }
            }
            if next.len() > cfg.max_cores_per_level {
                next.sort_by_key(|core| std::cmp::Reverse(core.support.len()));
                next.truncate(cfg.max_cores_per_level);
            }
            cores.extend(next.iter().cloned());
            frontier = next;
        }

        // Phase 3: assign each point to the highest-dimensional core that
        // contains it (ties: larger support), as a disjoint partition.
        cores.sort_by(|a, b| {
            b.intervals
                .len()
                .cmp(&a.intervals.len())
                .then(b.support.len().cmp(&a.support.len()))
        });
        let mut taken = vec![false; n];
        let mut clusters = Vec::new();
        for core in &cores {
            if core.intervals.len() < 2 {
                continue; // 1-d cores are too weak to report as clusters
            }
            let members: Vec<usize> = core
                .support
                .iter()
                .copied()
                .filter(|&i| !taken[i])
                .collect();
            if members.len() < 8 {
                continue;
            }
            for &i in &members {
                taken[i] = true;
            }
            let mask = AxisMask::from_axes(d, core.intervals.iter().map(|iv| iv.axis));
            clusters.push(SubspaceCluster::new(members, mask));
        }
        Ok(SubspaceClustering::new(n, d, clusters))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Dataset {
        let mut state = 0x93Cu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut rows = Vec::new();
        for _ in 0..400 {
            rows.push([
                0.25 + 0.03 * (next() - 0.5),
                0.65 + 0.03 * (next() - 0.5),
                next() * 0.99,
                next() * 0.99,
            ]);
        }
        for _ in 0..150 {
            rows.push([next() * 0.99, next() * 0.99, next() * 0.99, next() * 0.99]);
        }
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn finds_the_core() {
        let ds = blobs();
        let c = P3c::default().fit(&ds).unwrap();
        assert!(!c.is_empty());
        let big = c.clusters().iter().max_by_key(|cl| cl.len()).unwrap();
        assert!(big.axes.contains(0) && big.axes.contains(1));
        assert!(!big.axes.contains(2) && !big.axes.contains(3));
        let blob = big.points.iter().filter(|&&i| i < 400).count();
        assert!(blob > 320, "only {blob} blob members");
    }

    #[test]
    fn uniform_data_has_no_cores() {
        let mut rows = Vec::new();
        for i in 0..40 {
            for j in 0..40 {
                rows.push([i as f64 / 40.0, j as f64 / 40.0]);
            }
        }
        let ds = Dataset::from_rows(&rows).unwrap();
        let c = P3c::default().fit(&ds).unwrap();
        assert!(c.is_empty());
    }

    #[test]
    fn sturges_grows_logarithmically() {
        assert_eq!(sturges(1), 1);
        assert_eq!(sturges(1024), 11);
        assert!(sturges(100_000) <= 19);
    }

    #[test]
    fn interval_contains_respects_bounds() {
        let iv = Interval {
            axis: 1,
            lo: 0.2,
            hi: 0.4,
        };
        assert!(iv.contains(&[0.0, 0.2]));
        assert!(iv.contains(&[0.9, 0.39]));
        assert!(!iv.contains(&[0.0, 0.4]));
    }

    #[test]
    fn rejects_bad_threshold() {
        let ds = blobs();
        let c = P3c::new(P3cConfig {
            poisson_threshold: 0.0,
            ..Default::default()
        });
        assert!(c.fit(&ds).is_err());
    }

    #[test]
    fn deterministic() {
        let ds = blobs();
        let a = P3c::default().fit(&ds).unwrap();
        let b = P3c::default().fit(&ds).unwrap();
        assert_eq!(a.labels(), b.labels());
    }
}
