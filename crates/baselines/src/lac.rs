//! LAC — Locally Adaptive Clustering (Domeniconi et al., DMKD 2007).
//!
//! A weighted k-means: every cluster carries a per-axis weight vector, and
//! points are assigned by the weighted L2 distance. Weights follow the
//! exponential scheme `w_kj ∝ exp(−X_kj / h)`, where `X_kj` is the average
//! squared deviation of cluster `k`'s members along axis `e_j` — axes where
//! the cluster is tight get large weights. The inverse bandwidth `1/h` is
//! the method's parameter (the MrCC paper tunes it over integers 1–11).
//!
//! LAC partitions *all* points (no noise) and does not output relevant-axis
//! sets — the paper notes it only "sorts the axes by their importance" and
//! excludes it from the Subspaces Quality figure. To fit the shared output
//! type we mark axes whose weight exceeds the uniform share `1/d`; the
//! harness likewise excludes LAC from subspace scoring.

use crate::kmeans::KMeansConfig;
use crate::SubspaceClusterer;
use mrcc_common::{AxisMask, Dataset, Error, Result, SubspaceCluster, SubspaceClustering};

/// Configuration for [`Lac`].
#[derive(Debug, Clone, PartialEq)]
pub struct LacConfig {
    /// Number of clusters `k` (the paper supplies the true value).
    pub k: usize,
    /// Inverse bandwidth `1/h` of the exponential weighting.
    pub inv_h: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Convergence tolerance on centroid movement.
    pub tolerance: f64,
    /// RNG seed (initial centroids via k-means++).
    pub seed: u64,
    /// Independent restarts; the run with the lowest weighted dispersion
    /// wins (LAC's objective is non-convex and sensitive to seeding).
    pub restarts: usize,
}

impl LacConfig {
    /// Defaults: `1/h = 4`, the midpoint of the paper's sweep.
    pub fn new(k: usize) -> Self {
        LacConfig {
            k,
            inv_h: 4.0,
            max_iters: 60,
            tolerance: 1e-6,
            seed: 0x1AC,
            restarts: 4,
        }
    }
}

/// The LAC method.
#[derive(Debug, Clone)]
pub struct Lac {
    config: LacConfig,
}

impl Lac {
    /// Creates the method.
    pub fn new(config: LacConfig) -> Self {
        Lac { config }
    }
}

fn weighted_sq_dist(p: &[f64], c: &[f64], w: &[f64]) -> f64 {
    p.iter()
        .zip(c.iter().zip(w))
        .map(|(&x, (&m, &wj))| wj * (x - m) * (x - m))
        .sum()
}

struct LacRun {
    assignment: Vec<usize>,
    weights: Vec<Vec<f64>>,
    objective: f64,
}

impl Lac {
    /// One LAC optimization from a k-means++ seeding.
    fn run_once(&self, ds: &Dataset, seed: u64) -> Result<LacRun> {
        let (n, d, k) = (ds.len(), ds.dims(), self.config.k);
        // Seed centroids with k-means++ (shared substrate), uniform weights.
        let seeded = crate::kmeans::kmeans(
            ds,
            &KMeansConfig {
                k,
                max_iters: 1,
                tolerance: 0.0,
                seed,
            },
        )?;
        let mut centroids = seeded.centroids;
        let mut weights = vec![vec![1.0 / d as f64; d]; k];
        let mut assignment = vec![0usize; n];

        for _ in 0..self.config.max_iters {
            // Assignment step under the current weights.
            for (i, p) in ds.iter().enumerate() {
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for c in 0..k {
                    let dist = weighted_sq_dist(p, &centroids[c], &weights[c]);
                    if dist < best_d {
                        best_d = dist;
                        best = c;
                    }
                }
                assignment[i] = best;
            }
            // Per-cluster, per-axis average squared deviation X_kj.
            let mut x = vec![vec![0.0f64; d]; k];
            let mut counts = vec![0usize; k];
            for (i, p) in ds.iter().enumerate() {
                let c = assignment[i];
                counts[c] += 1;
                for j in 0..d {
                    let dev = p[j] - centroids[c][j];
                    x[c][j] += dev * dev;
                }
            }
            // Weight update: w_kj ∝ exp(−X_kj/h), normalized to sum 1.
            for c in 0..k {
                if counts[c] == 0 {
                    weights[c] = vec![1.0 / d as f64; d];
                    continue;
                }
                // Subtract the minimum exponent for numerical stability.
                let xs: Vec<f64> = x[c].iter().map(|&v| v / counts[c] as f64).collect();
                let min_x = xs.iter().copied().fold(f64::INFINITY, f64::min);
                let expw: Vec<f64> = xs
                    .iter()
                    .map(|&v| (-(v - min_x) * self.config.inv_h).exp())
                    .collect();
                let total: f64 = expw.iter().sum();
                for j in 0..d {
                    weights[c][j] = expw[j] / total;
                }
            }
            // Centroid update.
            let mut sums = vec![vec![0.0f64; d]; k];
            for (i, p) in ds.iter().enumerate() {
                let c = assignment[i];
                for j in 0..d {
                    sums[c][j] += p[j];
                }
            }
            let mut movement = 0.0f64;
            for c in 0..k {
                if counts[c] == 0 {
                    continue;
                }
                for j in 0..d {
                    sums[c][j] /= counts[c] as f64;
                    movement += (sums[c][j] - centroids[c][j]).abs();
                }
                centroids[c] = std::mem::take(&mut sums[c]);
            }
            if movement < self.config.tolerance {
                break;
            }
        }

        let objective: f64 = ds
            .iter()
            .enumerate()
            .map(|(i, p)| weighted_sq_dist(p, &centroids[assignment[i]], &weights[assignment[i]]))
            .sum();
        Ok(LacRun {
            assignment,
            weights,
            objective,
        })
    }
}

impl SubspaceClusterer for Lac {
    fn name(&self) -> &'static str {
        "LAC"
    }

    fn fit(&self, ds: &Dataset) -> Result<SubspaceClustering> {
        if ds.is_empty() {
            return Err(Error::EmptyDataset);
        }
        let (n, d, k) = (ds.len(), ds.dims(), self.config.k);
        if k == 0 || k > n {
            return Err(Error::InvalidParameter {
                name: "k",
                message: format!("k={k} invalid for {n} points"),
            });
        }
        if self.config.inv_h <= 0.0 {
            return Err(Error::InvalidParameter {
                name: "inv_h",
                message: format!("1/h must be positive, got {}", self.config.inv_h),
            });
        }
        let mut best: Option<LacRun> = None;
        for r in 0..self.config.restarts.max(1) as u64 {
            let run = self.run_once(ds, self.config.seed.wrapping_add(r))?;
            if best.as_ref().is_none_or(|b| run.objective < b.objective) {
                best = Some(run);
            }
        }
        let LacRun {
            assignment,
            weights,
            ..
        } = best.expect("at least one restart ran");

        // Shared output type: every point assigned; axes = above-uniform
        // weight (informational only — the harness excludes LAC from the
        // Subspaces Quality metric, as the paper does).
        let uniform = 1.0 / d as f64;
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, &c) in assignment.iter().enumerate() {
            members[c].push(i);
        }
        let clusters: Vec<SubspaceCluster> = members
            .into_iter()
            .enumerate()
            .filter(|(_, pts)| !pts.is_empty())
            .map(|(c, pts)| {
                let mask = AxisMask::from_bools(
                    &weights[c].iter().map(|&w| w > uniform).collect::<Vec<_>>(),
                );
                SubspaceCluster::new(pts, mask)
            })
            .collect();
        Ok(SubspaceClustering::new(n, d, clusters))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two clusters living in different single-axis subspaces.
    fn subspace_blobs() -> Dataset {
        let mut rows = Vec::new();
        for i in 0..120 {
            let t = i as f64 / 120.0;
            // Cluster A: tight on axis 0 (≈0.2), spread on axis 1.
            rows.push([0.2 + 0.01 * (t - 0.5), t * 0.99]);
            // Cluster B: tight on axis 1 (≈0.8), spread on axis 0.
            rows.push([t * 0.99, 0.8 + 0.01 * (t - 0.5)]);
        }
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn separates_subspace_blobs() {
        let ds = subspace_blobs();
        let c = Lac::new(LacConfig::new(2)).fit(&ds).unwrap();
        assert_eq!(c.len(), 2);
        // All points are assigned (LAC finds no noise).
        assert_eq!(c.n_clustered(), ds.len());
        // Each cluster is dominated by one parity.
        let labels = c.labels();
        let even_label = labels[0];
        let agree = (0..ds.len())
            .filter(|&i| (labels[i] == even_label) == (i % 2 == 0))
            .count();
        let agree = agree.max(ds.len() - agree);
        // The two subspace clusters cross (each runs through the other's
        // slab), so the crossing region is genuinely ambiguous for a
        // centroid-based method; ~80 % agreement is the expected outcome.
        assert!(agree as f64 > 0.75 * ds.len() as f64, "agreement {agree}");
    }

    #[test]
    fn weights_favor_the_tight_axis() {
        let ds = subspace_blobs();
        let c = Lac::new(LacConfig::new(2)).fit(&ds).unwrap();
        // Each cluster's mask should single out its tight axis.
        let masks: Vec<_> = c.clusters().iter().map(|cl| cl.axes).collect();
        let tight_axes: Vec<usize> = masks
            .iter()
            .map(|m| m.iter().collect::<Vec<_>>()[0])
            .collect();
        assert_eq!(masks[0].count(), 1);
        assert_eq!(masks[1].count(), 1);
        assert_ne!(tight_axes[0], tight_axes[1]);
    }

    #[test]
    fn deterministic() {
        let ds = subspace_blobs();
        let a = Lac::new(LacConfig::new(2)).fit(&ds).unwrap();
        let b = Lac::new(LacConfig::new(2)).fit(&ds).unwrap();
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn rejects_bad_config() {
        let ds = subspace_blobs();
        assert!(Lac::new(LacConfig::new(0)).fit(&ds).is_err());
        let mut cfg = LacConfig::new(2);
        cfg.inv_h = 0.0;
        assert!(Lac::new(cfg).fit(&ds).is_err());
    }
}
