//! STING — STatistical INformation Grid (Wang, Yang, Muntz, VLDB 1997).
//!
//! The method the MrCC paper names as "a basis to our work": a hierarchical
//! grid whose cells store statistical summaries (count, per-axis mean /
//! min / max), processed top-down. STING was designed for 2-dimensional GIS
//! data; in clustering mode the bottom-level cells whose density exceeds a
//! threshold are marked relevant and connected components of relevant cells
//! become clusters (all axes relevant — STING has no subspace notion).
//!
//! Included in the extended comparison precisely because of what it lacks:
//! as dimensionality grows, a fixed-resolution full-space grid starves
//! (every cell's count approaches 0 or 1) — the failure mode MrCC's
//! multi-resolution, statistically-tested search is built to avoid.

use std::collections::HashMap;

use mrcc_common::{AxisMask, Dataset, Error, Result, SubspaceCluster, SubspaceClustering};

use crate::SubspaceClusterer;

/// Configuration for [`Sting`].
#[derive(Debug, Clone, PartialEq)]
pub struct StingConfig {
    /// Hierarchy depth: the bottom level splits each axis into `2^depth`
    /// intervals (STING's default hierarchy bottoms out near 2^6 cells per
    /// axis on GIS data; high-dimensional data needs it far coarser).
    pub depth: u32,
    /// A bottom-level cell is *relevant* when its count is at least
    /// `density_factor` times the expected count under uniformity.
    pub density_factor: f64,
    /// Minimum points for a reported cluster.
    pub min_cluster_size: usize,
}

impl Default for StingConfig {
    fn default() -> Self {
        StingConfig {
            depth: 3,
            density_factor: 2.0,
            min_cluster_size: 8,
        }
    }
}

/// Statistical summary of one grid cell (STING's per-cell parameters).
#[derive(Debug, Clone)]
pub struct CellSummary {
    /// Point count.
    pub count: usize,
    /// Per-axis running sum (for the mean).
    sum: Vec<f64>,
    /// Per-axis minimum.
    pub min: Vec<f64>,
    /// Per-axis maximum.
    pub max: Vec<f64>,
}

impl CellSummary {
    fn new(d: usize) -> Self {
        CellSummary {
            count: 0,
            sum: vec![0.0; d],
            min: vec![f64::INFINITY; d],
            max: vec![f64::NEG_INFINITY; d],
        }
    }

    fn add(&mut self, p: &[f64]) {
        self.count += 1;
        for (j, &v) in p.iter().enumerate() {
            self.sum[j] += v;
            if v < self.min[j] {
                self.min[j] = v;
            }
            if v > self.max[j] {
                self.max[j] = v;
            }
        }
    }

    /// Per-axis mean of the cell's points.
    pub fn mean(&self, j: usize) -> f64 {
        self.sum[j] / self.count.max(1) as f64
    }
}

/// The STING method (clustering mode).
#[derive(Debug, Clone, Default)]
pub struct Sting {
    config: StingConfig,
}

impl Sting {
    /// Creates the method.
    pub fn new(config: StingConfig) -> Self {
        Sting { config }
    }
}

impl SubspaceClusterer for Sting {
    fn name(&self) -> &'static str {
        "STING"
    }

    fn fit(&self, ds: &Dataset) -> Result<SubspaceClustering> {
        if ds.is_empty() {
            return Err(Error::EmptyDataset);
        }
        let cfg = &self.config;
        if cfg.depth == 0 || cfg.depth > 16 {
            return Err(Error::InvalidParameter {
                name: "depth",
                message: format!("depth must be in [1,16], got {}", cfg.depth),
            });
        }
        if cfg.density_factor <= 0.0 {
            return Err(Error::InvalidParameter {
                name: "density_factor",
                message: format!("must be positive, got {}", cfg.density_factor),
            });
        }
        let (n, d) = (ds.len(), ds.dims());
        let bins = 1u64 << cfg.depth;

        // Bottom-level summaries (upper levels of STING's hierarchy are
        // aggregations of these; clustering only consults the bottom).
        let mut cells: HashMap<Vec<u64>, CellSummary> = HashMap::new();
        let mut members: HashMap<Vec<u64>, Vec<usize>> = HashMap::new();
        let mut key = vec![0u64; d];
        for (i, p) in ds.iter().enumerate() {
            for (slot, &v) in key.iter_mut().zip(p) {
                *slot = ((v * bins as f64) as u64).min(bins - 1);
            }
            cells
                .entry(key.clone())
                .or_insert_with(|| CellSummary::new(d))
                .add(p);
            members.entry(key.clone()).or_default().push(i);
        }

        // Relevance: count ≥ density_factor × uniform expectation. The
        // expectation uses materialized-cell granularity capped at the full
        // grid (in high d the full grid dwarfs η and every cell "passes"
        // with expectation < 1 — STING's curse-of-dimensionality failure,
        // kept observable by flooring the expectation at 1).
        let total_cells = (bins as f64).powi(d as i32).min(1e18);
        let expectation = (n as f64 / total_cells).max(1.0);
        let threshold = cfg.density_factor * expectation;
        let relevant: Vec<&Vec<u64>> = cells
            .iter()
            .filter(|(_, s)| s.count as f64 >= threshold)
            .map(|(k, _)| k)
            .collect();

        // Connected components of relevant cells (face adjacency).
        let mut sorted: Vec<&Vec<u64>> = relevant.clone();
        sorted.sort();
        let index: HashMap<&Vec<u64>, usize> =
            sorted.iter().enumerate().map(|(i, &k)| (k, i)).collect();
        let mut seen = vec![false; sorted.len()];
        let mut clusters: Vec<SubspaceCluster> = Vec::new();
        for start in 0..sorted.len() {
            if seen[start] {
                continue;
            }
            seen[start] = true;
            let mut stack = vec![start];
            let mut pts: Vec<usize> = Vec::new();
            while let Some(u) = stack.pop() {
                pts.extend(&members[sorted[u]]);
                let base = sorted[u];
                for j in 0..d {
                    for delta in [-1i64, 1] {
                        let nb = base[j] as i64 + delta;
                        if nb < 0 || nb as u64 >= bins {
                            continue;
                        }
                        let mut neighbor = base.clone();
                        neighbor[j] = nb as u64;
                        if let Some(&ni) = index.get(&neighbor) {
                            if !seen[ni] {
                                seen[ni] = true;
                                stack.push(ni);
                            }
                        }
                    }
                }
            }
            if pts.len() >= cfg.min_cluster_size {
                clusters.push(SubspaceCluster::new(pts, AxisMask::full(d)));
            }
        }
        // Deterministic ordering: largest first.
        clusters.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.points.cmp(&b.points)));
        Ok(SubspaceClustering::new(n, d, clusters))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs_2d() -> Dataset {
        let mut state = 0x5714u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut rows = Vec::new();
        for _ in 0..300 {
            rows.push([0.20 + 0.04 * (next() - 0.5), 0.30 + 0.04 * (next() - 0.5)]);
            rows.push([0.75 + 0.04 * (next() - 0.5), 0.80 + 0.04 * (next() - 0.5)]);
        }
        for _ in 0..100 {
            rows.push([next() * 0.99, next() * 0.99]);
        }
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn separates_low_dimensional_blobs() {
        // STING's home turf: 2-d GIS-like data.
        let ds = blobs_2d();
        let c = Sting::default().fit(&ds).unwrap();
        assert_eq!(c.len(), 2, "expected both blobs");
        for cl in c.clusters() {
            let even = cl.points.iter().filter(|&&i| i < 600 && i % 2 == 0).count();
            let odd = cl.points.iter().filter(|&&i| i < 600 && i % 2 == 1).count();
            let purity = even.max(odd) as f64 / (even + odd).max(1) as f64;
            assert!(purity > 0.95, "purity {purity}");
        }
    }

    #[test]
    fn all_axes_are_marked_relevant() {
        // STING has no subspace concept.
        let ds = blobs_2d();
        let c = Sting::default().fit(&ds).unwrap();
        for cl in c.clusters() {
            assert_eq!(cl.axes.count(), 2);
        }
    }

    #[test]
    fn starves_in_high_dimensions() {
        // A 5-of-10-dimensional subspace cluster: the full-space grid cannot
        // concentrate it, so STING misses it — the exact failure mode the
        // MrCC paper builds against.
        use mrcc_datagen::{generate, SyntheticSpec};
        let synth = generate(&SyntheticSpec::new("hi-d", 10, 3_000, 1, 0.2, 3));
        let c = Sting::default().fit(&synth.dataset).unwrap();
        let coverage = c.n_clustered() as f64 / synth.dataset.len() as f64;
        // Either it finds nothing or it floods (everything one cluster);
        // what it cannot do is isolate the cluster with precision.
        if !c.is_empty() {
            use mrcc_eval::quality;
            let q = quality(&c, &synth.ground_truth);
            assert!(
                q.quality < 0.8,
                "STING unexpectedly solved a subspace problem: {} (coverage {coverage})",
                q.quality
            );
        }
    }

    #[test]
    fn summary_statistics_accumulate() {
        let mut s = CellSummary::new(2);
        s.add(&[0.2, 0.8]);
        s.add(&[0.4, 0.6]);
        assert_eq!(s.count, 2);
        assert!((s.mean(0) - 0.3).abs() < 1e-12);
        assert_eq!(s.min[1], 0.6);
        assert_eq!(s.max[1], 0.8);
    }

    #[test]
    fn rejects_bad_parameters() {
        let ds = blobs_2d();
        assert!(Sting::new(StingConfig {
            depth: 0,
            ..Default::default()
        })
        .fit(&ds)
        .is_err());
        assert!(Sting::new(StingConfig {
            density_factor: 0.0,
            ..Default::default()
        })
        .fit(&ds)
        .is_err());
    }

    #[test]
    fn deterministic() {
        let ds = blobs_2d();
        let a = Sting::default().fit(&ds).unwrap();
        let b = Sting::default().fit(&ds).unwrap();
        assert_eq!(a.labels(), b.labels());
    }
}
